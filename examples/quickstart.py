"""Quickstart: train MTMLF-QO on a small synthetic database.

Runs the full pipeline end-to-end in under a minute:

1. generate a synthetic database (the paper's Section 6.2 pipeline);
2. generate + label a JOB-like workload (true cards, costs, optimal
   join orders from the exact optimizer);
3. train the per-table encoders (F), then the shared representation and
   task heads (S, T) jointly on CardEst + CostEst + JoinSel;
4. compare predictions against ground truth and PostgreSQL-style
   estimates on held-out queries;
5. serve concurrent single-query traffic through the micro-batching
   optimizer service (``repro.serve``);
6. checkpoint the full model to disk, restore it bit-exactly, and
   warm-start further training from the saved optimizer moments;
7. close the loop — collect execution feedback from served orders and
   adapt the live model online behind a regression gate;
8. run a federated fleet — two tenants serving locally while a
   coordinator merges their shared-(S)/(T) updates, then onboard a
   third tenant zero-shot (its featurizer is the only thing trained);
9. observe it all — re-serve with a ``Telemetry`` handle, trace one
   request through queue -> batch -> decode -> cache, and write a
   snapshot for ``python -m repro.obs``.

Run:  python examples/quickstart.py
"""

import os
import tempfile
import threading

import numpy as np

from repro.baselines import PostgresBaseline
from repro.core import (
    DatabaseFeaturizer,
    JointTrainer,
    ModelConfig,
    MTMLFQO,
    load_checkpoint,
)
from repro.datagen import generate_database
from repro.eval import format_serving_report
from repro.serve import OptimizerService, ServeConfig
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator, split_dataset


def main() -> None:
    print("=== 1. Generate a synthetic database (Section 6.2 pipeline) ===")
    db = generate_database(seed=7, num_tables=6, row_range=(200, 1000), attr_range=(2, 4))
    print(f"database {db.name!r}: tables {db.table_names}, {db.total_rows()} total rows")

    print("\n=== 2. Generate and label a JOB-like workload ===")
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=4, seed=0))
    labeled = QueryLabeler(db).label_many(generator.generate(120), with_optimal_order=True)
    train, test = split_dataset(labeled, (0.85, 0.15), seed=0)
    print(f"labeled {len(labeled)} queries ({len(train)} train / {len(test)} test)")
    example = test[0]
    print(f"example query: {example.query.to_sql()}")
    print(f"  true cardinality {example.cardinality}, simulated latency {example.cost:.2f} ms")
    print(f"  optimal join order: {example.optimal_order}")

    print("\n=== 3. Train MTMLF-QO ===")
    config = ModelConfig(d_model=48, shared_layers=2, decoder_layers=2)
    featurizer = DatabaseFeaturizer(db, config)
    print("training per-table encoders Enc_i (single-table CardEst)...")
    featurizer.train_encoders(queries_per_table=15, epochs=8)
    model = MTMLFQO(config)
    model.attach_featurizer(db.name, featurizer)
    trainer = JointTrainer(model)
    print("joint multi-task training of (S) + (T)...")
    result = trainer.train([(db.name, item) for item in train], epochs=25, batch_size=16)
    print(f"loss: {result.epoch_losses[0]:.3f} -> {result.final_loss:.3f}")

    print("\n=== 4. Evaluate on held-out queries ===")
    postgres = PostgresBaseline(db)

    def qerr(pred, true):
        pred, true = max(pred, 1.0), max(true, 1.0)
        return max(pred / true, true / pred)

    mtmlf_errors, pg_errors = [], []
    for item in test:
        preds = model.predict_cardinalities(db.name, [item])[0]
        pg_preds = postgres.predict_cards(item)
        for p, g, t in zip(preds, pg_preds, item.node_cardinalities):
            mtmlf_errors.append(qerr(p, t))
            pg_errors.append(qerr(g, t))
    print(f"cardinality q-error (median): MTMLF-QO {np.median(mtmlf_errors):.2f}  "
          f"PostgreSQL {np.median(pg_errors):.2f}")

    jo_items = [item for item in test if item.optimal_order is not None]
    # One batched call: Trans_Share encodes all queries together and the
    # beam searches advance in lockstep off shared decoder forwards.
    orders = model.predict_join_orders(db.name, jo_items)
    hits = sum(order == item.optimal_order for item, order in zip(jo_items, orders))
    if jo_items:
        print(f"join order: predicted THE optimal order on {hits}/{len(jo_items)} test queries")

    print("\n=== 5. Serve concurrent traffic (micro-batching service) ===")
    # Callers submit ONE query at a time from many threads; the service
    # coalesces them into the batched decode path and caches plans by
    # structural signature.  Orders are identical to direct calls.
    # Decodes run on the no-tape fast path (raw-ndarray kernels, encoder
    # K/V cached once per decode, per-session scratch buffers — DESIGN.md
    # section 11); it is bit-identical to the tape path, so none of the
    # parity claims below depend on which mode runs.
    # To scale decoding across cores, pass ServeConfig(num_replicas=N):
    # the service then keeps N read-only model replicas (bit-identical
    # state-dict clones) with one drain worker each, so batches decode
    # concurrently instead of serializing on one inference lock.
    served: dict[int, list[str]] = {}
    with OptimizerService(model, db.name, ServeConfig(max_batch_size=8, max_wait_ms=3.0)) as service:
        def client(index, item):
            served[index] = service.optimize(item)

        threads = [threading.Thread(target=client, args=(i, item)) for i, item in enumerate(jo_items)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        print(format_serving_report(service.report()))
    matches = sum(served[i] == order for i, order in enumerate(orders))
    print(f"served orders identical to direct batched calls: {matches}/{len(jo_items)}")

    print("\n=== 6. Checkpoint: save, restore, warm-start (MLA shipping) ===")
    # The paper's MLA workflow ships pre-trained modules; save_checkpoint
    # persists the *complete* model — config, (S)/(T) weights, the
    # per-database featurizer, model version — plus the trainer's Adam
    # moments, in one atomic .npz file.
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        path = trainer.save_checkpoint(os.path.join(checkpoint_dir, "mtmlf_qo"))
        print(f"checkpoint written: {os.path.basename(path)} "
              f"({os.path.getsize(path) / 1e6:.1f} MB)")

        # Restore is bit-exact: the loaded model decodes identical orders.
        restored = load_checkpoint(path, databases=db)
        restored_orders = restored.predict_join_orders(db.name, jo_items)
        print(f"restored model reproduces direct orders: "
              f"{sum(a == b for a, b in zip(orders, restored_orders))}/{len(jo_items)}")

        # Warm start: a fresh trainer resumes with the saved Adam moments
        # (keyed by parameter name, so a mismatched model fails loudly
        # instead of silently misaligning).
        warm = JointTrainer.warm_start(path, databases=db)
        more = warm.train([(db.name, item) for item in train], epochs=2, batch_size=16)
        print(f"warm-started training continues: loss {result.final_loss:.3f} "
              f"-> {more.final_loss:.3f}")

    print("\n=== 7. Adapt while serving (execution feedback + gated retrain) ===")
    # The paper's training data is harvested from *executed* plans — and
    # a serving optimizer executes plans all day.  The feedback path
    # turns served orders into labeled experience in the background; an
    # AdaptationWorker warm-starts the trainer from the latest
    # checkpoint, fine-tunes on that experience, and hot-swaps the live
    # model only if join-order regret on a held-out slice does not
    # worsen.  Here the workload drifts to bigger queries mid-serve.
    from repro.serve import AdaptationConfig, AdaptationWorker, FeedbackCollector, FeedbackConfig

    drifted_gen = WorkloadGenerator(
        db, WorkloadConfig(min_tables=4, max_tables=6, seed=99, like_probability=0.6)
    )
    drifted = [item for item in QueryLabeler(db).label_many(
        drifted_gen.generate(24), with_optimal_order=True) if item.optimal_order is not None][:12]
    collector = FeedbackCollector(db, FeedbackConfig(buffer_capacity=64))
    with OptimizerService(model, db.name) as service, collector:
        service.attach_feedback(collector)
        before = [service.optimize(item) for item in drifted]   # feedback flows
        collector.drain(timeout=120)
        worker = AdaptationWorker(
            service, db, collector.buffer,
            AdaptationConfig(min_new_experience=8, fine_tune_epochs=12),
        )
        swapped = worker.run_once()   # or worker.start() for the background loop
        gate = worker.last_gate
        print(f"collected {len(collector.buffer)} experiences from served orders")
        if gate is None:
            print("no gateable experience collected (all executions rejected): "
                  f"{collector.rejection_reasons()}")
        else:
            print(f"regression gate: candidate {gate.candidate_ms:.2f} ms vs live "
                  f"{gate.live_ms:.2f} ms on {gate.validation_count} held-out queries "
                  f"-> {'swapped' if swapped else 'kept live model'}")
        after = [service.optimize(item) for item in drifted]
        report = service.report()
        worker.stop()
    changed = sum(a != b for a, b in zip(before, after))
    print(f"post-adaptation orders changed on {changed}/{len(drifted)} drifted queries")
    print(f"counters: {report.retrains} retrains, {report.swaps_accepted} accepted, "
          f"{report.swaps_rejected} gate-rejected")

    print("\n=== 8. Federated fleet: two tenants + zero-shot onboarding ===")
    # The paper's cloud deployment (Section 7) as a running system
    # (``repro.federation``): every tenant serves its own database and
    # contributes only shared-(S)/(T) weight updates — featurizers and
    # raw experience never leave a node — while a FleetCoordinator
    # merges updates example-weighted, checkpoints each global round,
    # and pushes the merged model back through each tenant's regression
    # gate.  A new tenant onboards by training only its featurizer (F):
    # the global (S)/(T) is deployed zero-shot.
    from repro.core import shared_state_dict
    from repro.datagen import generate_databases
    from repro.eval import format_fleet_report
    from repro.federation import FleetConfig, FleetCoordinator, TenantNode

    fleet_dbs = generate_databases(3, base_seed=500, row_range=(100, 400), attr_range=(2, 3))
    fleet_config = FleetConfig(
        fine_tune_epochs=4, min_new_experience=6,
        encoder_queries_per_table=6, encoder_epochs=2,
    )
    with FleetCoordinator(config, fleet_config) as fleet:
        # Seed the global (S)/(T) with the model trained above — the
        # provider's pre-trained weights (only shared parameters move).
        fleet.global_model.load_state_dict(shared_state_dict(model))
        nodes = []
        for tenant_db in fleet_dbs[:2]:
            tenant = fleet.onboard(tenant_db)   # trains (F) only
            tenant.start()
            nodes.append(tenant)
            generator = WorkloadGenerator(
                tenant_db, WorkloadConfig(min_tables=2, max_tables=3, seed=3)
            )
            pool = [item for item in QueryLabeler(tenant_db).label_many(
                generator.generate(10), with_optimal_order=True)
                if item.optimal_order is not None]
            for item in pool:                   # traffic -> private experience
                tenant.optimize(item)
            tenant.collector.drain(timeout=120)
        round_ = fleet.run_round()
        print(f"round 1: participants {[name for name, _ in round_.participants]}, "
              f"accepted {round_.accepted}, rejected {round_.rejected}")
        print(f"global round checkpointed at {os.path.basename(round_.checkpoint_path)}"
              if round_.checkpoint_path else "no merge (not enough fresh experience)")

        # Zero-shot onboarding: the third tenant gets the current
        # global (S)/(T) untouched; only its featurizer is trained.
        newcomer = fleet.onboard(fleet_dbs[2])
        with newcomer:
            probe_gen = WorkloadGenerator(
                fleet_dbs[2], WorkloadConfig(min_tables=2, max_tables=3, seed=9)
            )
            probe = [item for item in QueryLabeler(fleet_dbs[2]).label_many(
                probe_gen.generate(4), with_optimal_order=True)][:3]
            orders = [newcomer.optimize(item) for item in probe]
        print(f"onboarded {newcomer.name!r} zero-shot; serves join orders "
              f"immediately: {orders[0]}")
        print()
        print(format_fleet_report(fleet.report()))
        for tenant in nodes:
            tenant.stop()

    print("\n=== 9. Observability: trace a request, snapshot the telemetry ===")
    # One Telemetry handle (metrics registry + trace spans + per-tenant
    # SLOs) threads through the serving stack (DESIGN.md section 13).
    # Trace IDs are minted per request and travel across threads, so the
    # spans below were recorded by client, drain-worker, and feedback
    # threads yet line up on one trace.
    from repro.obs import Telemetry, write_snapshot

    telemetry = Telemetry()

    def serve_concurrently(service, items):
        workers = [
            threading.Thread(target=service.optimize, args=(item,)) for item in items
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

    with OptimizerService(model, db.name, ServeConfig(max_batch_size=8),
                          telemetry=telemetry) as service:
        serve_concurrently(service, jo_items)
        serve_concurrently(service, jo_items)  # second pass hits the plan cache
    complete = telemetry.tracer.complete_traces({"queue_wait", "batch", "decode"})
    spans = telemetry.tracer.trace(complete[0])
    t0 = min(s.start_s for s in spans)
    print(f"one request's life (trace {complete[0]}, {len(spans)} spans):")
    for span in spans:
        print(f"  +{1000 * (span.start_s - t0):7.2f}ms  {span.name:<12}"
              f"{1000 * span.duration_s:8.3f}ms  [{span.thread}]")
    status = telemetry.slo.status(db.name)
    print(f"SLO: {status.window} requests in window, {status.violations} violations, "
          f"burn {status.burn_rate:.2f}x of budget")
    snapshot_path = os.path.join(tempfile.gettempdir(), "quickstart_telemetry.json")
    write_snapshot(snapshot_path, telemetry.snapshot())
    print(f"snapshot written: {snapshot_path}")
    print(f"  render it with: PYTHONPATH=src python -m repro.obs {snapshot_path}")

    print("\ndone — see examples/single_db_study.py for the full Table 1/2 reproduction,"
          "\n       examples/serve_demo.py for serving + live model hot-swap,"
          "\n       examples/fleet_demo.py for the federated fleet, and"
          "\n       benchmarks/bench_federated_fleet.py for the fleet benchmark")


if __name__ == "__main__":
    main()
