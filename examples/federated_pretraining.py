"""Federated MLA: privacy-preserving cross-DB pre-training (Section 7).

The paper's cloud workflow proposes federated learning so the provider
can distill database-agnostic knowledge without ever seeing user data.
This example runs FedAvg over three "user" databases — each client
trains the shared (S)/(T) modules locally on its private workload and
ships only parameter updates — then transfers the federated model to a
fourth, unseen database.

Run:  python examples/federated_pretraining.py
"""

import numpy as np

from repro.core import (
    FederatedClient,
    FederatedConfig,
    FederatedTrainer,
    ModelConfig,
    joeu,
)
from repro.datagen import generate_databases
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator


def build_client(db, seed: int, num_queries: int = 40) -> FederatedClient:
    generator = WorkloadGenerator(
        db, WorkloadConfig(min_tables=2, max_tables=4, seed=seed, max_filters_per_table=1)
    )
    workload = QueryLabeler(db).label_many(generator.generate(num_queries), with_optimal_order=True)
    return FederatedClient(db=db, workload=workload)


def main() -> None:
    print("generating 4 synthetic databases (3 federated clients + 1 unseen)...")
    dbs = generate_databases(4, base_seed=200, row_range=(150, 600), attr_range=(2, 4),
                             fk_skew=1.2, fk_correlation=0.7)
    clients = [build_client(db, seed=i) for i, db in enumerate(dbs[:3])]
    for client in clients:
        print(f"  client {client.db.name}: {client.num_examples} private labeled queries")

    print("\nrunning FedAvg over the shared (S)/(T) modules...")
    trainer = FederatedTrainer(
        ModelConfig(d_model=32, num_heads=4, encoder_layers=1, shared_layers=2, decoder_layers=2),
        FederatedConfig(rounds=4, local_epochs=3, encoder_queries_per_table=10, encoder_epochs=5,
                        verbose=True),
    )
    trainer.train(clients)
    print(f"round losses: {[round(l, 3) for l in trainer.round_losses]}")

    print("\ntransferring to the unseen database (only its featurizer is trained)...")
    test_client = build_client(dbs[3], seed=9)
    trainer.transfer(test_client.db)

    jo_items = [i for i in test_client.workload if i.optimal_order and i.query.num_tables >= 2]
    orders = trainer.server_model.predict_join_orders(test_client.db.name, jo_items)
    scores = [joeu(order, item.optimal_order) for item, order in zip(jo_items, orders)]
    hits = sum(order == item.optimal_order for item, order in zip(jo_items, orders))
    print(f"unseen DB join-order quality: mean JOEU {np.mean(scores):.3f}, "
          f"exactly optimal on {hits}/{len(jo_items)} queries")
    print("\nno raw tuples or queries ever left a client — only (S)/(T) parameters.")


if __name__ == "__main__":
    main()
