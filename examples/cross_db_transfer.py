"""Cross-DB transfer: reproduce the paper's Table 3 (Section 6.3).

Generates a fleet of synthetic databases with the Section 6.2 pipeline,
pre-trains MTMLF-QO's shared (S) and task (T) modules on all but the
last database via the meta-learning algorithm (MLA, Algorithm 1), then
transfers to the held-out database by training only its featurization
module — demonstrating that the distilled knowledge is
database-agnostic.

Run:  python examples/cross_db_transfer.py [--databases N]
"""

import argparse

from repro.core import MLAConfig, ModelConfig
from repro.datagen import generate_databases
from repro.engine.timing import Stopwatch
from repro.eval import format_table3, run_table3


def main(num_databases: int = 4) -> None:
    watch = Stopwatch()
    print(f"generating {num_databases} synthetic databases (Section 6.2 pipeline)...")
    databases = generate_databases(
        num_databases, base_seed=100, row_range=(200, 900), attr_range=(2, 4),
        fk_skew=1.3, fk_correlation=0.8,
    )
    for db in databases:
        print(f"  {db.name}: {len(db.table_names)} tables, {db.total_rows()} rows")
    print(f"\ntrain DBs: {[d.name for d in databases[:-1]]}; held-out test DB: {databases[-1].name}")

    print("running MLA pre-training + transfer (this takes a few minutes)...\n")
    rows = run_table3(
        databases,
        num_queries=70,
        max_tables=4,
        mla_config=MLAConfig(
            encoder_queries_per_table=12,
            encoder_epochs=6,
            joint_epochs=15,
            fine_tune_epochs=5,
        ),
        model_config=ModelConfig(d_model=32, num_heads=4, encoder_layers=1,
                                 shared_layers=2, decoder_layers=2),
    )
    print(format_table3(rows, title="Table 3: Execution time on the unseen database"))
    print(f"\ntotal wall time: {watch.elapsed_s:.0f}s")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--databases", type=int, default=4, help="fleet size (paper: 11)")
    main(parser.parse_args().databases)
