"""Single-DB case study: reproduce the paper's Tables 1 and 2.

Trains MTMLF-QO, the Tree-LSTM baseline and the PostgreSQL-style
estimator on a JOB-like workload over the synthetic IMDB-like database
(21 tables, skewed + correlated), then prints both tables in the
paper's layout — including the single-task ablations (MTMLF-CardEst,
MTMLF-CostEst, MTMLF-JoinSel) that quantify the multi-task benefit.

Run:  python examples/single_db_study.py [--fast]
"""

import argparse

from repro.core import ModelConfig
from repro.datagen import imdb_like
from repro.engine.timing import Stopwatch
from repro.eval import SingleDBStudy, StudyConfig, format_table1, format_table2


def main(fast: bool = False) -> None:
    watch = Stopwatch()
    print("building the IMDB-like database (21 tables)...")
    db = imdb_like(seed=0, scale=0.25 if fast else 0.5, fk_skew=1.3, fk_correlation=0.8)
    print(f"  {len(db.table_names)} tables, {db.total_rows()} rows")

    config = StudyConfig(
        num_queries=150 if fast else 300,
        min_tables=3,
        max_tables=5 if fast else 6,
        model=ModelConfig(d_model=32 if fast else 48, num_heads=4,
                          encoder_layers=1, shared_layers=2, decoder_layers=2),
        encoder_queries_per_table=10 if fast else 20,
        encoder_epochs=5 if fast else 8,
        joint_epochs=15 if fast else 30,
        treelstm_epochs=8 if fast else 15,
    )
    study = SingleDBStudy(db, config)
    print("generating + labeling the workload (true cards, costs, optimal orders)...")
    study.prepare()
    print(f"  {len(study.train)} train / {len(study.test)} test queries")

    print("training all methods and evaluating (this takes a few minutes)...\n")
    rows1 = study.table1(with_ablations=not fast)
    print(format_table1(rows1, title="Table 1: Q-errors on the JOB-like workload"))
    print()
    rows2 = study.table2(with_ablation=not fast)
    print(format_table2(rows2))
    print(f"\ntotal wall time: {watch.elapsed_s:.0f}s")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller scale, skip ablations")
    main(parser.parse_args().fast)
