"""Demo: serving concurrent optimizer traffic with micro-batching.

Spins up the always-on serving layer (``repro.serve``) over a trained
MTMLF-QO model — as a **replica pool** (``num_replicas=2``: two
read-only model replicas, two drain workers, no shared inference
lock) — and fires a production-shaped request stream at it from 16
concurrent clients: queries repeat (hot queries hit the LRU plan
cache), concurrent distinct queries coalesce into batched
``predict_join_orders`` calls, and a sprinkle of malformed requests
shows per-request error isolation.  Midway, the serving model is
hot-swapped from a checkpoint while traffic keeps flowing (a rolling
update that atomically flips the whole replica set, with no restart
and no lost request).  Ends with the serving report — throughput,
latency percentiles, batch sizes, per-replica utilization, cache hit
rate, swap count — and a parity spot-check against direct calls.

The whole run is observed: a ``repro.obs.Telemetry`` handle records
request traces (queue -> batch -> decode -> cache), per-replica
histograms, and the tenant's SLO burn rate, and the demo writes the
snapshot to ``serve_demo_telemetry.json`` — render it afterwards with
``PYTHONPATH=src python -m repro.obs serve_demo_telemetry.json``.

Run:  PYTHONPATH=src python examples/serve_demo.py
"""

import os
import random
import tempfile
import threading

from repro.core import (
    DatabaseFeaturizer,
    JointTrainer,
    ModelConfig,
    MTMLFQO,
    save_checkpoint,
)
from repro.datagen import generate_database
from repro.engine.plan import scan_node
from repro.eval import format_serving_report
from repro.obs import Telemetry, write_snapshot
from repro.serve import OptimizerService, ServeConfig
from repro.sql import Query
from repro.workload import LabeledQuery, QueryLabeler, WorkloadConfig, WorkloadGenerator

CONCURRENCY = 16
REQUESTS_PER_CLIENT = 12
SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__), "..", "serve_demo_telemetry.json")


def main() -> None:
    print("=== 1. Build a database, workload and model ===")
    db = generate_database(seed=3, num_tables=6, row_range=(100, 400), attr_range=(2, 3))
    config = ModelConfig(d_model=48, shared_layers=2, decoder_layers=2)
    featurizer = DatabaseFeaturizer(db, config)
    featurizer.train_encoders(queries_per_table=6, epochs=3)
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=3, max_tables=5, seed=1))
    pool = QueryLabeler(db).label_many(generator.generate(32), with_optimal_order=False)
    model = MTMLFQO(config)
    model.attach_featurizer(db.name, featurizer)
    print(f"database {db.name!r}, {len(pool)} distinct queries in the request pool")

    print("\n=== 2. Start the micro-batching optimizer service (replica pool) ===")
    serve_config = ServeConfig(
        num_replicas=2, max_batch_size=CONCURRENCY, max_wait_ms=3.0, plan_cache_size=256
    )
    print(f"replica pool: {serve_config.num_replicas} read-only replicas, one drain worker each")
    print(f"batching: up to {serve_config.max_batch_size} requests / "
          f"{serve_config.max_wait_ms} ms window; plan cache {serve_config.plan_cache_size} entries")

    # A request no optimizer can serve: a disconnected join graph.
    poison = LabeledQuery(
        query=Query(tables=["alpha", "beta"], joins=[], filters={}),
        plan=scan_node("alpha"),
        node_cardinalities=[1],
        node_costs=[1.0],
        total_time_ms=0.0,
    )

    answered: dict[int, list[str]] = {}
    isolated_errors: list[str] = []
    lock = threading.Lock()

    def client(slot: int, service: OptimizerService) -> None:
        rng = random.Random(slot)
        for step in range(REQUESTS_PER_CLIENT):
            if slot == 0 and step == 5:  # one client misbehaves once
                try:
                    service.optimize(poison)
                except ValueError as error:
                    with lock:
                        isolated_errors.append(str(error))
                continue
            index = rng.randrange(len(pool))
            order = service.optimize(pool[index])
            with lock:
                answered[index] = order

    telemetry = Telemetry()
    with OptimizerService(model, db.name, serve_config, telemetry=telemetry) as service:
        threads = [threading.Thread(target=client, args=(slot, service)) for slot in range(CONCURRENCY)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        print(f"served {service.report().completed} requests from "
              f"{CONCURRENCY} concurrent clients")
        print(f"rejected poison request with: {isolated_errors[0][:72]}...")

        print("\n=== 3. Live model hot-swap (rolling update, no restart) ===")
        # Retrain offline, checkpoint, and swap the running service onto
        # the new weights: in-flight requests finish on the old model,
        # the plan cache invalidates, and no request is lost.
        retrained = MTMLFQO(config)
        retrained.attach_featurizer(db.name, featurizer)
        JointTrainer(retrained).train(
            [(db.name, item) for item in pool], epochs=3, batch_size=8
        )
        with tempfile.TemporaryDirectory() as checkpoint_dir:
            path = save_checkpoint(retrained, os.path.join(checkpoint_dir, "v2"))
            swap_threads = [
                threading.Thread(target=client, args=(slot, service))
                for slot in range(1, CONCURRENCY)  # traffic keeps flowing...
            ]
            for thread in swap_threads:
                thread.start()
            service.swap_model(path)               # ...while the model swaps
            for thread in swap_threads:
                thread.join()
        post_swap = service.optimize(pool[0])
        expected = retrained.predict_join_orders(db.name, [pool[0]])[0]
        print(f"swapped under load; post-swap order served by the new model: "
              f"{post_swap == expected}")

        # One more clean round: everything below is post-swap traffic.
        answered.clear()
        final_threads = [
            threading.Thread(target=client, args=(slot, service))
            for slot in range(1, CONCURRENCY)
        ]
        for thread in final_threads:
            thread.start()
        for thread in final_threads:
            thread.join()
        report = service.report()

    print("\n=== 4. Serving report ===")
    print(format_serving_report(report))

    print("\n=== 5. Parity spot-check against direct model calls ===")
    indices = sorted(answered)[:8]
    direct = retrained.predict_join_orders(db.name, [pool[i] for i in indices])
    agreement = sum(answered[i] == order for i, order in zip(indices, direct))
    print(f"post-swap served orders identical to direct calls: {agreement}/{len(indices)}")

    print("\n=== 6. Telemetry snapshot ===")
    complete = telemetry.tracer.complete_traces({"queue_wait", "batch", "decode"})
    status = telemetry.slo.status(db.name)
    print(f"{len(telemetry.tracer.spans())} spans in the trace ring, "
          f"{len(complete)} complete request traces")
    print(f"SLO: {status.window} requests in window, {status.violations} violations, "
          f"burn {status.burn_rate:.2f}x of budget")
    snapshot_path = write_snapshot(SNAPSHOT_PATH, telemetry.snapshot())
    print(f"snapshot written: {os.path.abspath(snapshot_path)}")
    print("  render it with: PYTHONPATH=src python -m repro.obs "
          f"{os.path.relpath(snapshot_path)}")
    print("\ndone — see DESIGN.md 'Serving architecture', 'Model lifecycle'"
          " and 'Observability'")


if __name__ == "__main__":
    main()
