"""SQL playground: drive the database substrate directly.

Shows the building blocks beneath MTMLF-QO: parse SQL, look at
ANALYZE statistics, compare the classical optimizer's plan against the
true-cardinality optimal plan, and execute both with the vectorized
engine — printing EXPLAIN-style trees with true per-node cardinalities.

Run:  python examples/sql_playground.py
"""

from repro.datagen import imdb_like
from repro.engine import execute_plan
from repro.optimizer import (
    HistogramEstimator,
    PostgresStylePlanner,
    TrueCardinalityOracle,
    optimal_plan,
)
from repro.sql import parse_query


def main() -> None:
    print("building the IMDB-like database...")
    db = imdb_like(seed=0, scale=0.3)

    sql = (
        "SELECT COUNT(*) FROM title, movie_info, movie_keyword, keyword "
        "WHERE movie_info.movie_id = title.id "
        "AND movie_keyword.movie_id = title.id "
        "AND movie_keyword.keyword_id = keyword.id "
        "AND title.production_year <= 30 "
        "AND movie_info.info LIKE '%an%'"
    )
    print(f"\nSQL:\n  {sql}\n")
    query = parse_query(sql)
    print(f"touched tables: {query.tables}")
    print(f"join graph connected: {query.is_connected()}")

    # --- statistics -----------------------------------------------------
    stats = db.statistics("title").column("production_year")
    print(f"\nANALYZE title.production_year: {stats.num_rows} rows, "
          f"{stats.n_distinct} distinct, histogram "
          f"[{stats.histogram.min_value:.0f} .. {stats.histogram.max_value:.0f}]")

    # --- classical planning ----------------------------------------------
    planner = PostgresStylePlanner(db)
    estimator = HistogramEstimator(db)
    planned = planner.plan(query)
    print(f"\nPostgreSQL-style estimate: {planner.estimate_cardinality(query):.0f} rows")
    print(f"chosen join order: {planned.join_order} (estimated cost {planned.cost:.1f})")

    result = execute_plan(planned.plan, db)
    print(f"\nEXPLAIN ANALYZE (classical plan, {result.simulated_ms:.2f} sim-ms):")
    print(planned.plan.pretty())

    # --- optimal planning (true cardinalities) ----------------------------
    oracle = TrueCardinalityOracle(db)
    best = optimal_plan(query, db, oracle=oracle)
    best_result = execute_plan(best.plan, db)
    print(f"\noptimal join order (exact, true cardinalities): {best.join_order}")
    print(f"EXPLAIN ANALYZE (optimal plan, {best_result.simulated_ms:.2f} sim-ms):")
    print(best.plan.pretty())

    print(f"\ntrue result cardinality: {result.cardinality}")
    speedup = result.simulated_ms / max(best_result.simulated_ms, 1e-9)
    print(f"classical plan is {speedup:.2f}x the optimal plan's simulated time")


if __name__ == "__main__":
    main()
