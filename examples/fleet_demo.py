"""Federated multi-tenant serving fleet (Section 7's cloud story, live).

Three "customer" databases serve traffic through their own
micro-batching optimizer services while a :class:`FleetCoordinator`
runs FedAvg rounds over them:

1. every tenant accumulates private execution-labeled experience from
   its own served orders (feedback collector);
2. a federated round harvests shared-(S)/(T)-only weight updates from
   tenants with fresh traffic — featurizers (F) and raw experience
   never leave a node — merges them example-weighted, and checkpoints
   the global round;
3. the merged model is pushed back through every tenant's join-order
   regret gate: a tenant hot-swaps it only if its own measured latency
   does not worsen;
4. a fourth tenant is onboarded *zero-shot*: only its featurizer is
   trained, the global (S)/(T) serves immediately.

Run:  python examples/fleet_demo.py
"""

from repro.core import JointTrainer, MTMLFQO, ModelConfig, shared_state_dict
from repro.datagen import generate_databases
from repro.eval import format_fleet_report
from repro.federation import FleetConfig, FleetCoordinator
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator, traffic_stream

MODEL = ModelConfig(d_model=32, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1)


def tenant_pool(db, seed: int, count: int = 14):
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=4, seed=seed))
    labeled = QueryLabeler(db).label_many(generator.generate(count), with_optimal_order=True)
    return [item for item in labeled if item.optimal_order is not None]


def main() -> None:
    print("generating 4 tenant databases (3 founding + 1 onboarding)...")
    dbs = generate_databases(4, base_seed=640, row_range=(120, 450), attr_range=(2, 3))
    config = FleetConfig(
        fine_tune_epochs=6, min_new_experience=6, validation_fraction=0.3,
        encoder_queries_per_table=6, encoder_epochs=3,
    )

    with FleetCoordinator(MODEL, config) as fleet:
        print("\nonboarding the founding tenants (each trains only its (F) module)...")
        tenants = [fleet.onboard(db) for db in dbs[:3]]
        pools = [tenant_pool(db, seed=11 + i) for i, db in enumerate(dbs[:3])]

        # Give the pristine global (S)/(T) a head start on tenant 0's
        # labeled traffic — the provider's pre-trained weights.
        warmup = MTMLFQO(MODEL)
        warmup.attach_featurizer(dbs[0].name, tenants[0].live_model.featurizer_for(dbs[0].name))
        warmup.load_state_dict(fleet.global_state())
        JointTrainer(warmup).train(
            [(dbs[0].name, item) for item in pools[0]], epochs=6, batch_size=8
        )
        fleet.global_model.load_state_dict(shared_state_dict(warmup))

        print("serving tenant traffic (orders are executed into experience)...")
        for tenant, pool in zip(tenants, pools):
            tenant.start()
            for _, item in traffic_stream(pool, occurrences=2, seed=5):
                tenant.optimize(item)
            tenant.collector.drain(timeout=180)
            print(f"  {tenant.name}: {len(tenant.buffer)} experiences buffered, "
                  f"{tenant.pending_experience()} fresh")

        print("\nrunning federated rounds (merge -> checkpoint -> gated push)...")
        for _ in range(2):
            round_ = fleet.run_round()
            print(f"  round {round_.index}: participants "
                  f"{[name for name, _ in round_.participants]}, "
                  f"accepted {round_.accepted}, rejected {round_.rejected}, "
                  f"skipped {round_.skipped}")

        print("\nonboarding a new tenant zero-shot (global (S)/(T), fresh (F))...")
        newcomer = fleet.onboard(dbs[3])
        probe = tenant_pool(dbs[3], seed=77, count=6)[:4]
        with newcomer:
            orders = [newcomer.optimize(item) for item in probe]
        print(f"  {newcomer.name} serves immediately; first order: {orders[0]}")

        print()
        print(format_fleet_report(fleet.report()))
        for tenant in tenants:
            tenant.stop()


if __name__ == "__main__":
    main()
