"""Legacy setup shim.

The reproduction environment is offline and has setuptools without the
``wheel`` package, so PEP 660 editable installs (``pip install -e .``)
cannot build a wheel.  ``python setup.py develop`` installs an egg-link
instead, which needs nothing but setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
)
