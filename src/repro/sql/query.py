"""The query model: Q = (T_Q, j_Q, f_Q).

Following Section 3.2 of the paper, a query is the set of tables it
touches, the equi-join predicates connecting them, and a per-table
conjunction of filter predicates.  All queries are COUNT(*) join
queries (the paper omits other physical operations, focusing on
scan/join planning).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..storage.schema import JoinRelation
from .predicates import Conjunction, Predicate

__all__ = ["Query"]


@dataclass
class Query:
    """A COUNT(*) select-project-join query.

    Attributes
    ----------
    tables:
        Names of the touched tables ``T_Q`` (order is canonical: the
        order in which the workload generator emitted them).
    joins:
        Equi-join predicates ``j_Q`` as :class:`JoinRelation`.
    filters:
        Mapping table name -> :class:`Conjunction` of filter predicates
        ``f_Q`` (tables may be absent = unfiltered).
    """

    tables: list[str]
    joins: list[JoinRelation] = field(default_factory=list)
    filters: dict[str, Conjunction] = field(default_factory=dict)

    def __post_init__(self):
        touched = set(self.tables)
        for join in self.joins:
            if join.left not in touched or join.right not in touched:
                raise ValueError(f"join {join} references a table outside {sorted(touched)}")
        for table, conj in self.filters.items():
            if table not in touched:
                raise ValueError(f"filter on {table!r} but query touches {sorted(touched)}")
            if conj.table != table:
                raise ValueError(f"filter conjunction table mismatch: {conj.table!r} != {table!r}")

    # ------------------------------------------------------------------
    @property
    def num_tables(self) -> int:
        return len(self.tables)

    def filter_for(self, table: str) -> Conjunction:
        """The filter conjunction on ``table`` (empty if unfiltered)."""
        return self.filters.get(table, Conjunction(table=table, predicates=()))

    def joins_between(self, group_a: set[str], group_b: set[str]) -> list[JoinRelation]:
        """All join predicates with one side in each group."""
        out = []
        for join in self.joins:
            if join.left in group_a and join.right in group_b:
                out.append(join)
            elif join.left in group_b and join.right in group_a:
                out.append(join.reversed())
        return out

    def adjacency_matrix(self) -> np.ndarray:
        """Boolean adjacency among ``self.tables`` from the join predicates.

        This is the per-query matrix used by the legality beam search
        (Section 4.3): ``adj[i, j]`` is True iff a join predicate links
        ``tables[i]`` and ``tables[j]``.
        """
        index = {name: i for i, name in enumerate(self.tables)}
        adj = np.zeros((self.num_tables, self.num_tables), dtype=bool)
        for join in self.joins:
            i, j = index[join.left], index[join.right]
            adj[i, j] = adj[j, i] = True
        return adj

    def is_connected(self) -> bool:
        """True if the join predicates connect all touched tables."""
        if self.num_tables == 1:
            return True
        adj = self.adjacency_matrix()
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for other in np.flatnonzero(adj[node]):
                if other not in seen:
                    seen.add(int(other))
                    frontier.append(int(other))
        return len(seen) == self.num_tables

    def to_sql(self) -> str:
        """Render as SQL text (the paper's Figure 2 input format)."""
        clauses = [str(j) for j in self.joins]
        clauses.extend(str(c) for c in self.filters.values() if len(c))
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return f"SELECT COUNT(*) FROM {', '.join(self.tables)}{where};"

    def __str__(self) -> str:
        return self.to_sql()
