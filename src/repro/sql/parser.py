"""A small SQL parser for the supported query dialect.

Accepts the COUNT(*) select-project-join subset used throughout the
paper (Figure 2's input format)::

    SELECT COUNT(*) FROM t1, t2, t3
    WHERE t1.id = t2.t1_id AND t2.x > 5 AND t3.name LIKE '%abc%' ...

Join predicates are ``table.col = table.col``; filter predicates are
comparisons against literals, BETWEEN, IN lists and (NOT) LIKE.
The parser produces a :class:`repro.sql.Query`.
"""

from __future__ import annotations

import re

from ..storage.schema import JoinRelation
from .predicates import (
    BetweenPredicate,
    Comparison,
    CompareOp,
    Conjunction,
    InPredicate,
    LikePredicate,
)
from .query import Query

__all__ = ["parse_query", "SQLSyntaxError"]


class SQLSyntaxError(ValueError):
    """Raised when the input is not in the supported SQL subset."""


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<ident>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),;*])
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(text, pos)
        if not match or match.start() != pos:
            raise SQLSyntaxError(f"unexpected character at offset {pos}: {text[pos]!r}")
        tokens.append(match.group().strip())
        pos = match.end()
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, expected: str) -> None:
        token = self.next()
        if token.upper() != expected.upper():
            raise SQLSyntaxError(f"expected {expected!r}, got {token!r}")

    def accept(self, candidate: str) -> bool:
        token = self.peek()
        if token is not None and token.upper() == candidate.upper():
            self.pos += 1
            return True
        return False


def _unquote(token: str) -> str:
    return token[1:-1].replace("''", "'")


def _parse_value(token: str):
    if token.startswith("'"):
        return _unquote(token)
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    return float(token)


def _split_column_ref(token: str) -> tuple[str, str]:
    if "." not in token:
        raise SQLSyntaxError(f"column references must be table-qualified: {token!r}")
    table, column = token.split(".", 1)
    return table, column


def parse_query(sql: str) -> Query:
    """Parse a COUNT(*) SPJ query into a :class:`Query`."""
    stream = _TokenStream(_tokenize(sql))
    stream.expect("SELECT")
    stream.expect("COUNT")
    stream.expect("(")
    stream.expect("*")
    stream.expect(")")
    stream.expect("FROM")

    tables: list[str] = []
    while True:
        token = stream.next()
        if "." in token or not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
            raise SQLSyntaxError(f"bad table name {token!r}")
        tables.append(token)
        if not stream.accept(","):
            break

    joins: list[JoinRelation] = []
    filters: dict[str, list] = {}

    if stream.accept("WHERE"):
        while True:
            _parse_condition(stream, joins, filters)
            if not stream.accept("AND"):
                break

    token = stream.peek()
    if token == ";":
        stream.next()
        token = stream.peek()
    if token is not None:
        raise SQLSyntaxError(f"trailing tokens starting at {token!r}")

    for join in joins:
        if join.left not in tables or join.right not in tables:
            raise SQLSyntaxError(f"join {join} references a table not in FROM")
    for table in filters:
        if table not in tables:
            raise SQLSyntaxError(f"filter on {table!r} but FROM lists {tables}")
    conjunctions = {
        table: Conjunction(table=table, predicates=tuple(preds))
        for table, preds in filters.items()
    }
    return Query(tables=tables, joins=joins, filters=conjunctions)


def _parse_condition(stream: _TokenStream, joins: list, filters: dict) -> None:
    left = stream.next()
    table, column = _split_column_ref(left)

    if stream.accept("NOT"):
        stream.expect("LIKE")
        pattern = stream.next()
        filters.setdefault(table, []).append(
            LikePredicate(table=table, column=column, pattern=_unquote(pattern), negated=True)
        )
        return
    if stream.accept("LIKE"):
        pattern = stream.next()
        filters.setdefault(table, []).append(
            LikePredicate(table=table, column=column, pattern=_unquote(pattern))
        )
        return
    if stream.accept("BETWEEN"):
        low = _parse_value(stream.next())
        stream.expect("AND")
        high = _parse_value(stream.next())
        filters.setdefault(table, []).append(
            BetweenPredicate(table=table, column=column, low=float(low), high=float(high))
        )
        return
    if stream.accept("IN"):
        stream.expect("(")
        values = []
        while True:
            values.append(_parse_value(stream.next()))
            if not stream.accept(","):
                break
        stream.expect(")")
        filters.setdefault(table, []).append(
            InPredicate(table=table, column=column, values=tuple(values))
        )
        return

    op_token = stream.next()
    if op_token == "<>":
        op_token = "!="
    try:
        op = CompareOp(op_token)
    except ValueError:
        raise SQLSyntaxError(f"unsupported operator {op_token!r}") from None

    right = stream.next()
    is_column = (
        right[0].isalpha() or right[0] == "_"
    ) and "." in right and not right.startswith("'")
    if is_column and op is CompareOp.EQ:
        rtable, rcolumn = _split_column_ref(right)
        joins.append(JoinRelation(table, column, rtable, rcolumn))
        return
    if is_column:
        raise SQLSyntaxError("column-to-column predicates other than equi-join are unsupported")
    filters.setdefault(table, []).append(
        Comparison(table=table, column=column, op=op, value=_parse_value(right))
    )
