"""``repro.sql`` — query model (Q = T_Q, j_Q, f_Q) and SQL parsing."""

from .parser import SQLSyntaxError, parse_query
from .predicates import (
    BetweenPredicate,
    Comparison,
    CompareOp,
    Conjunction,
    InPredicate,
    LikePredicate,
    Predicate,
    like_to_regex,
)
from .query import Query

__all__ = [
    "Query",
    "parse_query",
    "SQLSyntaxError",
    "Predicate",
    "Comparison",
    "CompareOp",
    "BetweenPredicate",
    "InPredicate",
    "LikePredicate",
    "Conjunction",
    "like_to_regex",
]
