"""Filter predicates: comparison operators, BETWEEN, IN and LIKE.

Predicates evaluate vectorized over a :class:`repro.storage.Table`,
returning a boolean row mask.  LIKE follows SQL semantics (``%`` = any
run, ``_`` = any single char) and — matching the paper's JOB setup — is
the predicate family that rules out the unsupervised CardEst baselines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..storage.table import Table

__all__ = ["CompareOp", "Comparison", "BetweenPredicate", "InPredicate", "LikePredicate", "Conjunction", "Predicate", "like_to_regex"]


class CompareOp(Enum):
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


_OP_FUNCS = {
    CompareOp.EQ: np.equal,
    CompareOp.NE: np.not_equal,
    CompareOp.LT: np.less,
    CompareOp.LE: np.less_equal,
    CompareOp.GT: np.greater,
    CompareOp.GE: np.greater_equal,
}


class Predicate:
    """Base class; subclasses implement ``evaluate`` and ``column_names``."""

    table: str

    def evaluate(self, table: Table) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def column_names(self) -> list[str]:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class Comparison(Predicate):
    """``table.column <op> value``."""

    table: str
    column: str
    op: CompareOp
    value: object

    def evaluate(self, table: Table) -> np.ndarray:
        column = table.column(self.column)
        if column.is_numeric:
            return _OP_FUNCS[self.op](column.numeric_values(), float(self.value))
        values = column.values.astype(str)
        if self.op in (CompareOp.EQ, CompareOp.NE):
            mask = values == str(self.value)
            return mask if self.op is CompareOp.EQ else ~mask
        # Lexicographic comparison for string ranges.
        return _OP_FUNCS[self.op](values, str(self.value))

    def column_names(self) -> list[str]:
        return [self.column]

    def __str__(self) -> str:
        value = f"'{self.value}'" if isinstance(self.value, str) else self.value
        return f"{self.table}.{self.column} {self.op.value} {value}"


@dataclass(frozen=True)
class BetweenPredicate(Predicate):
    """``table.column BETWEEN low AND high`` (inclusive)."""

    table: str
    column: str
    low: float
    high: float

    def evaluate(self, table: Table) -> np.ndarray:
        values = table.column(self.column).numeric_values()
        return (values >= self.low) & (values <= self.high)

    def column_names(self) -> list[str]:
        return [self.column]

    def __str__(self) -> str:
        return f"{self.table}.{self.column} BETWEEN {self.low} AND {self.high}"


@dataclass(frozen=True)
class InPredicate(Predicate):
    """``table.column IN (v1, v2, ...)``."""

    table: str
    column: str
    values: tuple

    def evaluate(self, table: Table) -> np.ndarray:
        column = table.column(self.column)
        if column.is_numeric:
            pool = np.asarray([float(v) for v in self.values])
            return np.isin(column.numeric_values(), pool)
        return np.isin(column.values.astype(str), np.asarray([str(v) for v in self.values]))

    def column_names(self) -> list[str]:
        return [self.column]

    def __str__(self) -> str:
        inner = ", ".join(f"'{v}'" if isinstance(v, str) else str(v) for v in self.values)
        return f"{self.table}.{self.column} IN ({inner})"


def like_to_regex(pattern: str) -> re.Pattern:
    """Compile a SQL LIKE pattern to an anchored regular expression."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$")


@dataclass(frozen=True)
class LikePredicate(Predicate):
    """``table.column LIKE pattern`` (or NOT LIKE with negated=True)."""

    table: str
    column: str
    pattern: str
    negated: bool = False

    def evaluate(self, table: Table) -> np.ndarray:
        column = table.column(self.column)
        regex = like_to_regex(self.pattern)
        if column.dictionary is not None:
            # Dictionary-encoded strings: match the (small) dictionary once.
            dict_hits = np.fromiter((regex.match(v) is not None for v in column.dictionary), dtype=bool, count=len(column.dictionary))
            mask = dict_hits[column.codes]
        else:
            values = column.values.astype(str)
            mask = np.fromiter((regex.match(v) is not None for v in values), dtype=bool, count=len(values))
        return ~mask if self.negated else mask

    def column_names(self) -> list[str]:
        return [self.column]

    def __str__(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.table}.{self.column} {op} '{self.pattern}'"


@dataclass(frozen=True)
class Conjunction(Predicate):
    """AND of predicates over the same table; empty = always true."""

    table: str
    predicates: tuple

    def __post_init__(self):
        for p in self.predicates:
            if p.table != self.table:
                raise ValueError(f"conjunction over {self.table!r} got predicate on {p.table!r}")

    def evaluate(self, table: Table) -> np.ndarray:
        mask = np.ones(table.num_rows, dtype=bool)
        for predicate in self.predicates:
            mask &= predicate.evaluate(table)
        return mask

    def column_names(self) -> list[str]:
        names: list[str] = []
        for p in self.predicates:
            names.extend(p.column_names())
        return names

    def __len__(self) -> int:
        return len(self.predicates)

    def __str__(self) -> str:
        if not self.predicates:
            return "TRUE"
        return " AND ".join(str(p) for p in self.predicates)
