"""Tree-LSTM plan estimator — the paper's prior-SOTA baseline (Table 1).

Reimplements the approach of Sun & Li 2019 ("An end-to-end learning-
based cost estimator", the paper's [32]): a child-sum Tree-LSTM encodes
the physical plan bottom-up, and per-node heads map each sub-plan's
hidden state to its estimated cardinality and cost.  Trained with the
same q-error criterion.

Unlike MTMLF-QO it has no shared multi-task representation, no
per-table distribution encoders and no join-order model — exactly the
gap Table 1 measures.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..engine.plan import JoinOp, PlanNode, ScanOp
from ..storage.catalog import Database
from ..workload.labeler import LabeledQuery
from ..core.featurize import PredicateFeaturizer
from ..core.config import ModelConfig

__all__ = ["TreeLSTMEstimator"]

_COST_FLOOR = 1e-6


class TreeLSTMEstimator(nn.Module):
    """Child-sum Tree-LSTM over plan trees with card/cost heads."""

    def __init__(self, db: Database, hidden_dim: int = 48, seed: int = 0):
        super().__init__()
        self.db = db
        self.hidden_dim = hidden_dim
        rng = np.random.default_rng(seed)
        self.featurizer = PredicateFeaturizer(db, ModelConfig(predicate_feature_dim=20))
        self.feature_dim = 16 + self.featurizer.config.predicate_feature_dim
        self.tree = nn.ChildSumTreeLSTM(self.feature_dim, hidden_dim, rng=rng)
        self.card_head = nn.MLP([hidden_dim, hidden_dim, 1], rng=rng)
        self.cost_head = nn.MLP([hidden_dim, hidden_dim, 1], rng=rng)

    # ------------------------------------------------------------------
    def node_features(self, node: PlanNode) -> np.ndarray:
        """Structural + aggregated predicate features for one plan node."""
        out = np.zeros(self.feature_dim, dtype=np.float64)
        total_base = sum(self.db.statistics(t).num_rows for t in node.tables)
        out[7] = np.log10(max(total_base, 1)) / 7.0
        out[8] = len(node.tables) / 10.0
        if node.is_scan:
            out[0] = 1.0
            out[2] = 1.0 if node.scan_op is ScanOp.SEQ else 0.0
            out[3] = 1.0 if node.scan_op is ScanOp.INDEX else 0.0
            if node.filter is not None and len(node.filter):
                out[11] = len(node.filter) / 4.0
                tokens = [self.featurizer.featurize_predicate(p) for p in node.filter.predicates]
                out[16:] = np.mean(tokens, axis=0)
        else:
            out[1] = 1.0
            out[4] = 1.0 if node.join_op is JoinOp.HASH else 0.0
            out[5] = 1.0 if node.join_op is JoinOp.MERGE else 0.0
            out[6] = 1.0 if node.join_op is JoinOp.NESTED_LOOP else 0.0
            out[10] = len(node.join_predicates) / 4.0
        return out

    def encode_states(self, plan: PlanNode) -> list[nn.Tensor]:
        """Hidden states for every node, preorder-aligned."""
        states: dict[int, tuple[nn.Tensor, nn.Tensor]] = {}

        def visit(node: PlanNode) -> tuple[nn.Tensor, nn.Tensor]:
            child_states = [visit(child) for child in node.children()]
            features = nn.Tensor(self.node_features(node).reshape(1, -1))
            state = self.tree.node_forward(features, child_states)
            states[id(node)] = state
            return state

        visit(plan)
        return [states[id(node)][0] for node in plan.nodes_preorder()]

    def forward(self, plan: PlanNode) -> tuple[nn.Tensor, nn.Tensor]:
        """Per-node (log-card, log-cost) predictions, preorder, shape (L,)."""
        hidden = self.encode_states(plan)
        stacked = nn.functional.concat(hidden, axis=0)  # (L, hidden)
        log_cards = self.card_head(stacked).reshape(len(hidden))
        log_costs = self.cost_head(stacked).reshape(len(hidden))
        return log_cards, log_costs

    # ------------------------------------------------------------------
    def fit(
        self,
        workload: list[LabeledQuery],
        epochs: int = 20,
        learning_rate: float = 1e-3,
        seed: int = 0,
        verbose: bool = False,
    ) -> list[float]:
        """Train on labeled plans with the q-error criterion."""
        params = self.parameters()
        optimizer = nn.Adam(params, lr=learning_rate)
        rng = np.random.default_rng(seed)
        history = []
        self.train()
        for epoch in range(epochs):
            order = rng.permutation(len(workload))
            total = 0.0
            for idx in order:
                item = workload[idx]
                optimizer.zero_grad()
                log_cards, log_costs = self.forward(item.plan)
                card_target = np.log(np.maximum(item.node_cardinalities, 1.0))
                cost_target = np.log(np.maximum(item.node_costs, _COST_FLOOR))
                loss = (log_cards - nn.Tensor(card_target)).abs().mean()
                loss = loss + (log_costs - nn.Tensor(cost_target)).abs().mean()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                optimizer.step()
                total += loss.item()
            history.append(total / max(len(workload), 1))
            if verbose:
                print(f"  tree-lstm epoch {epoch + 1}/{epochs}: {history[-1]:.4f}")
        self.eval()
        return history

    def predict(self, item: LabeledQuery) -> tuple[np.ndarray, np.ndarray]:
        """(cards, costs) per node in linear scale."""
        with nn.no_grad():
            log_cards, log_costs = self.forward(item.plan)
        return np.exp(log_cards.data), np.exp(log_costs.data)
