"""``repro.baselines`` — comparison methods for Tables 1-3."""

from .postgres import PostgresBaseline
from .treelstm import TreeLSTMEstimator

__all__ = ["PostgresBaseline", "TreeLSTMEstimator"]
