"""The "PostgreSQL" baseline rows of Tables 1-3.

Cardinalities come from the histogram/independence estimator; costs come
from the analytical cost model evaluated over those estimated
cardinalities.  Because the model's cost units differ from the simulated
latency units of the ground truth, a single multiplicative calibration
constant (geometric-mean ratio on a training workload) aligns the
scales — the fair equivalent of regressing PostgreSQL's cost units onto
runtimes, and it cannot fix *relative* errors, which is what q-error
measures.
"""

from __future__ import annotations

import numpy as np

from ..engine.cost_model import DEFAULT_COST_MODEL, CostModel
from ..optimizer.selectivity import HistogramEstimator
from ..storage.catalog import Database
from ..workload.labeler import LabeledQuery

__all__ = ["PostgresBaseline"]

_COST_FLOOR = 1e-9


class PostgresBaseline:
    """Per-node card/cost predictions from classical statistics."""

    def __init__(self, db: Database, cost_model: CostModel = DEFAULT_COST_MODEL):
        self.db = db
        self.estimator = HistogramEstimator(db)
        self.cost_model = cost_model
        self.cost_scale = 1.0

    # ------------------------------------------------------------------
    def predict_cards(self, item: LabeledQuery) -> np.ndarray:
        """Estimated cardinality per plan node (preorder)."""
        return np.asarray(
            [
                max(self.estimator.estimate(item.query, node.tables), 0.0)
                for node in item.plan.nodes_preorder()
            ]
        )

    def _node_costs(self, item: LabeledQuery) -> np.ndarray:
        """Estimated *cumulative* cost per sub-plan node (preorder)."""
        plan = item.plan
        cards = {
            node.tables: max(self.estimator.estimate(item.query, node.tables), 0.0)
            for node in plan.nodes_postorder()
        }
        base = {t: self.estimator.base_rows(t) for t in item.query.tables}
        self.cost_model.plan_cost(plan, cards, base)

        cumulative: dict[int, float] = {}

        def total(node) -> float:
            if id(node) not in cumulative:
                cumulative[id(node)] = (node.estimated_cost or 0.0) + sum(
                    total(child) for child in node.children()
                )
            return cumulative[id(node)]

        return np.asarray([total(node) for node in plan.nodes_preorder()])

    def predict_costs(self, item: LabeledQuery) -> np.ndarray:
        """Calibrated cost predictions per node (preorder)."""
        return np.maximum(self._node_costs(item) * self.cost_scale, _COST_FLOOR)

    # ------------------------------------------------------------------
    def calibrate_costs(self, workload: list[LabeledQuery]) -> float:
        """Fit the single scale constant on a training workload."""
        ratios = []
        for item in workload:
            estimated = self._node_costs(item)
            for est, true in zip(estimated, item.node_costs):
                if est > 0 and true > 0:
                    ratios.append(np.log(true / est))
        if ratios:
            self.cost_scale = float(np.exp(np.mean(ratios)))
        return self.cost_scale
