"""Tables: ordered collections of equal-length columns."""

from __future__ import annotations

import numpy as np

from .column import Column, ColumnType

__all__ = ["Table"]


class Table:
    """An in-memory columnar table.

    Parameters
    ----------
    name:
        Table name (unique within a database).
    columns:
        List of :class:`Column`; all must have the same length.
    primary_key:
        Optional name of the primary-key column.
    """

    def __init__(self, name: str, columns: list[Column], primary_key: str | None = None):
        if not columns:
            raise ValueError(f"table {name!r} needs at least one column")
        lengths = {len(c) for c in columns}
        if len(lengths) != 1:
            raise ValueError(f"table {name!r} has ragged columns: lengths {sorted(lengths)}")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns = {c.name: c for c in columns}
        self.column_order = names
        self.primary_key = primary_key
        if primary_key is not None and primary_key not in self.columns:
            raise KeyError(f"primary key {primary_key!r} not a column of {name!r}")

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(next(iter(self.columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.num_rows}, cols={self.column_order})"

    def __contains__(self, column_name: str) -> bool:
        return column_name in self.columns

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    def numeric_columns(self) -> list[str]:
        return [n for n in self.column_order if self.columns[n].is_numeric]

    def string_columns(self) -> list[str]:
        return [n for n in self.column_order if self.columns[n].ctype is ColumnType.STRING]

    # ------------------------------------------------------------------
    def filter(self, mask: np.ndarray) -> "Table":
        """Return a new table with rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_rows,):
            raise ValueError(f"mask shape {mask.shape} != ({self.num_rows},)")
        cols = [self.columns[n].filter(mask) for n in self.column_order]
        return Table(self.name, cols, primary_key=self.primary_key)

    def take(self, indices: np.ndarray) -> "Table":
        """Return a new table with rows gathered at ``indices``."""
        cols = [self.columns[n].take(indices) for n in self.column_order]
        return Table(self.name, cols, primary_key=self.primary_key)

    def head(self, n: int = 5) -> "Table":
        return self.take(np.arange(min(n, self.num_rows)))

    @classmethod
    def from_dict(cls, name: str, data: dict, primary_key: str | None = None) -> "Table":
        """Build a table from ``{column_name: values}``."""
        columns = [Column(col_name, values) for col_name, values in data.items()]
        return cls(name, columns, primary_key=primary_key)
