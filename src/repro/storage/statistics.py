"""Table statistics: equi-depth histograms, most-common values, distincts.

These statistics power the classical "PostgreSQL" baseline estimator in
:mod:`repro.optimizer.selectivity` (PostgreSQL's ANALYZE collects the
same trio: ``histogram_bounds``, ``most_common_vals``, ``n_distinct``).
They are also the cheap per-table summaries that the paper's workflow
allows users to compute locally ("similar to an ANALYZE operation").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .column import Column, ColumnType
from .table import Table

__all__ = ["EquiDepthHistogram", "ColumnStatistics", "TableStatistics", "analyze_table"]


@dataclass
class EquiDepthHistogram:
    """Equi-depth (equal-frequency) histogram over a numeric column."""

    bounds: np.ndarray  # length num_buckets + 1, non-decreasing
    total_count: int

    @classmethod
    def build(cls, values: np.ndarray, num_buckets: int = 32) -> "EquiDepthHistogram":
        values = np.sort(np.asarray(values, dtype=np.float64))
        if values.size == 0:
            return cls(bounds=np.array([0.0, 0.0]), total_count=0)
        quantiles = np.linspace(0.0, 1.0, num_buckets + 1)
        bounds = np.quantile(values, quantiles)
        return cls(bounds=bounds, total_count=int(values.size))

    @property
    def num_buckets(self) -> int:
        return len(self.bounds) - 1

    @property
    def min_value(self) -> float:
        return float(self.bounds[0])

    @property
    def max_value(self) -> float:
        return float(self.bounds[-1])

    def selectivity_le(self, value: float) -> float:
        """Estimated fraction of rows with column <= value."""
        if self.total_count == 0:
            return 0.0
        if value < self.bounds[0]:
            return 0.0
        if value >= self.bounds[-1]:
            return 1.0
        # Find the bucket containing `value` and interpolate within it.
        idx = int(np.searchsorted(self.bounds, value, side="right")) - 1
        idx = min(max(idx, 0), self.num_buckets - 1)
        lo, hi = self.bounds[idx], self.bounds[idx + 1]
        within = 0.5 if hi <= lo else (value - lo) / (hi - lo)
        return (idx + within) / self.num_buckets

    def selectivity_range(self, low: float | None, high: float | None) -> float:
        """Estimated fraction of rows with low <= column <= high."""
        lo_frac = 0.0 if low is None else self.selectivity_le(low)
        hi_frac = 1.0 if high is None else self.selectivity_le(high)
        return float(np.clip(hi_frac - lo_frac, 0.0, 1.0))


@dataclass
class ColumnStatistics:
    """Statistics for a single column."""

    name: str
    ctype: ColumnType
    num_rows: int
    n_distinct: int
    histogram: EquiDepthHistogram | None = None
    mcv_values: list = field(default_factory=list)
    mcv_fractions: np.ndarray = field(default_factory=lambda: np.array([]))
    null_fraction: float = 0.0

    def mcv_selectivity(self, value) -> float | None:
        """Fraction for ``value`` if it is a most-common value, else None."""
        for v, frac in zip(self.mcv_values, self.mcv_fractions):
            if v == value:
                return float(frac)
        return None

    def equality_selectivity(self, value) -> float:
        """PostgreSQL-style eq selectivity: MCV hit or uniform residual."""
        hit = self.mcv_selectivity(value)
        if hit is not None:
            return hit
        mcv_mass = float(self.mcv_fractions.sum()) if self.mcv_fractions.size else 0.0
        residual_distinct = max(self.n_distinct - len(self.mcv_values), 1)
        return max((1.0 - mcv_mass) / residual_distinct, 0.0)


def analyze_column(column: Column, num_buckets: int = 32, num_mcv: int = 10) -> ColumnStatistics:
    """Collect statistics for one column (ANALYZE equivalent)."""
    n = len(column)
    if column.is_numeric:
        values = column.numeric_values()
        hist = EquiDepthHistogram.build(values, num_buckets=num_buckets)
        uniques, counts = np.unique(values, return_counts=True)
    else:
        hist = None
        uniques, counts = np.unique(column.values.astype(str), return_counts=True)
    order = np.argsort(counts)[::-1][:num_mcv]
    mcv_values = [uniques[i] for i in order]
    mcv_fractions = counts[order] / max(n, 1)
    return ColumnStatistics(
        name=column.name,
        ctype=column.ctype,
        num_rows=n,
        n_distinct=len(uniques),
        histogram=hist,
        mcv_values=mcv_values,
        mcv_fractions=mcv_fractions,
    )


@dataclass
class TableStatistics:
    """All column statistics of a table, plus its row count."""

    table_name: str
    num_rows: int
    columns: dict[str, ColumnStatistics]

    def column(self, name: str) -> ColumnStatistics:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"no statistics for column {name!r} of {self.table_name!r}") from None


def analyze_table(table: Table, num_buckets: int = 32, num_mcv: int = 10) -> TableStatistics:
    """Collect statistics for every column of ``table``."""
    stats = {
        name: analyze_column(table.column(name), num_buckets=num_buckets, num_mcv=num_mcv)
        for name in table.column_order
    }
    return TableStatistics(table_name=table.name, num_rows=table.num_rows, columns=stats)
