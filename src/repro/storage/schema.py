"""Join schemas: which tables join with which, over which key columns.

The paper's knowledge taxonomy places the *join schema* (fact/dimension
tables and their PK-FK relationships) in the database-specific bucket.
``JoinSchema`` models it as an undirected multigraph on table names,
with edges labelled by the join key columns; ``networkx`` supplies
connectivity queries used by the workload generator and the optimizer's
join enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import DisconnectedQueryError

__all__ = ["JoinRelation", "JoinSchema"]


@dataclass(frozen=True)
class JoinRelation:
    """An equi-join relationship ``left.left_column = right.right_column``."""

    left: str
    left_column: str
    right: str
    right_column: str

    def reversed(self) -> "JoinRelation":
        return JoinRelation(self.right, self.right_column, self.left, self.left_column)

    def touches(self, table: str) -> bool:
        return table in (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left}.{self.left_column} = {self.right}.{self.right_column}"


class JoinSchema:
    """The join graph of a database."""

    def __init__(self, relations: list[JoinRelation] | None = None):
        self._graph = nx.Graph()
        self.relations: list[JoinRelation] = []
        for relation in relations or []:
            self.add(relation)

    def add(self, relation: JoinRelation) -> None:
        self.relations.append(relation)
        self._graph.add_edge(relation.left, relation.right, relation=relation)

    def add_table(self, name: str) -> None:
        """Register a table even if it participates in no joins."""
        self._graph.add_node(name)

    @property
    def tables(self) -> list[str]:
        return sorted(self._graph.nodes)

    def neighbors(self, table: str) -> list[str]:
        if table not in self._graph:
            return []
        return sorted(self._graph.neighbors(table))

    def relation_between(self, a: str, b: str) -> JoinRelation | None:
        """The join relation between tables ``a`` and ``b``, if any."""
        if self._graph.has_edge(a, b):
            relation = self._graph.edges[a, b]["relation"]
            return relation if relation.left == a else relation.reversed()
        return None

    def are_joinable(self, a: str, b: str) -> bool:
        return self._graph.has_edge(a, b)

    def is_connected(self, tables: list[str]) -> bool:
        """True if ``tables`` induce a connected subgraph of the join graph."""
        if not tables:
            return False
        missing = [t for t in tables if t not in self._graph]
        if missing:
            return False
        sub = self._graph.subgraph(tables)
        return nx.is_connected(sub)

    def adjacency_matrix(self, tables: list[str]):
        """Boolean adjacency among ``tables`` (order preserved).

        This is the matrix the paper's legality-aware beam search
        (Section 4.3) builds from the query's join conditions.
        """
        import numpy as np

        n = len(tables)
        adj = np.zeros((n, n), dtype=bool)
        for i, a in enumerate(tables):
            for j, b in enumerate(tables):
                if i != j and self._graph.has_edge(a, b):
                    adj[i, j] = True
        return adj

    def spanning_join_order(self, tables: list[str], start: str | None = None) -> list[str]:
        """A legal left-deep join order covering ``tables`` (BFS order)."""
        if not self.is_connected(tables):
            raise DisconnectedQueryError(f"tables {tables} are not connected in the join graph")
        sub = self._graph.subgraph(tables)
        start = start or tables[0]
        order = [start]
        seen = {start}
        frontier = set(sub.neighbors(start))
        while len(order) < len(tables):
            chosen = sorted(frontier - seen)[0]
            order.append(chosen)
            seen.add(chosen)
            frontier |= set(sub.neighbors(chosen))
        return order

    def __repr__(self) -> str:
        return f"JoinSchema(tables={len(self._graph)}, relations={len(self.relations)})"
