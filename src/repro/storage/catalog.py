"""The database catalog: tables + join schema + statistics.

``Database`` is the central handle passed around the whole system — the
execution engine scans its tables, the classical optimizer reads its
statistics, and MTMLF-QO's featurization module reads its schema to size
the one-hot table/column vocabularies.
"""

from __future__ import annotations

from .schema import JoinRelation, JoinSchema
from .statistics import TableStatistics, analyze_table
from .table import Table

__all__ = ["Database"]


class Database:
    """A named collection of tables with a join schema and statistics."""

    def __init__(self, name: str, tables: list[Table], join_schema: JoinSchema | None = None):
        self.name = name
        self.tables: dict[str, Table] = {}
        for table in tables:
            if table.name in self.tables:
                raise ValueError(f"duplicate table name {table.name!r}")
            self.tables[table.name] = table
        self.join_schema = join_schema or JoinSchema()
        for table in tables:
            self.join_schema.add_table(table.name)
        self._stats: dict[str, TableStatistics] = {}

    # ------------------------------------------------------------------
    @property
    def table_names(self) -> list[str]:
        return sorted(self.tables)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"database {self.name!r} has no table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={self.table_names})"

    def add_join(self, relation: JoinRelation) -> None:
        for side, column in ((relation.left, relation.left_column), (relation.right, relation.right_column)):
            if column not in self.table(side):
                raise KeyError(f"join column {side}.{column} does not exist")
        self.join_schema.add(relation)

    # ------------------------------------------------------------------
    def analyze(self, num_buckets: int = 32, num_mcv: int = 10) -> None:
        """Collect statistics for every table (the ANALYZE operation)."""
        for name, table in self.tables.items():
            self._stats[name] = analyze_table(table, num_buckets=num_buckets, num_mcv=num_mcv)

    def statistics(self, table_name: str) -> TableStatistics:
        """Statistics for a table; computed lazily on first access."""
        if table_name not in self._stats:
            self._stats[table_name] = analyze_table(self.table(table_name))
        return self._stats[table_name]

    def total_rows(self) -> int:
        return sum(t.num_rows for t in self.tables.values())
