"""Typed columns for the in-memory columnar storage layer.

Columns carry a logical type (INT, FLOAT, STRING) and hold their values
as numpy arrays so that predicate evaluation and joins can be fully
vectorized.  STRING columns keep a dictionary-encoded representation
(codes + value dictionary) which makes equality predicates and LIKE
evaluation cheap: LIKE only needs to scan the (small) dictionary.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

__all__ = ["ColumnType", "Column"]


class ColumnType(Enum):
    INT = "int"
    FLOAT = "float"
    STRING = "string"


class Column:
    """A named, typed column of values.

    Parameters
    ----------
    name:
        Column name (unique within its table).
    values:
        Array-like payload.  Integers/floats are stored as int64/float64;
        strings are dictionary-encoded.
    ctype:
        Optional explicit :class:`ColumnType`; inferred when omitted.
    """

    def __init__(self, name: str, values, ctype: ColumnType | None = None):
        self.name = name
        values = np.asarray(values)
        if ctype is None:
            ctype = _infer_type(values)
        self.ctype = ctype

        if ctype is ColumnType.STRING:
            raw = np.asarray([str(v) for v in values], dtype=object)
            dictionary, codes = np.unique(raw, return_inverse=True)
            self.dictionary: np.ndarray | None = dictionary
            self.codes: np.ndarray | None = codes.astype(np.int64)
            self._data = raw
        elif ctype is ColumnType.INT:
            self.dictionary = None
            self.codes = None
            self._data = values.astype(np.int64)
        else:
            self.dictionary = None
            self.codes = None
            self._data = values.astype(np.float64)

    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The raw value array (object-dtype for strings)."""
        return self._data

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.ctype.value}, n={len(self)})"

    @property
    def is_numeric(self) -> bool:
        return self.ctype in (ColumnType.INT, ColumnType.FLOAT)

    def numeric_values(self) -> np.ndarray:
        """Return values as float64 (raises for string columns)."""
        if not self.is_numeric:
            raise TypeError(f"column {self.name!r} is not numeric")
        return self._data.astype(np.float64)

    def n_distinct(self) -> int:
        if self.ctype is ColumnType.STRING:
            return len(self.dictionary)
        return int(len(np.unique(self._data)))

    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column with rows gathered at ``indices``."""
        return Column(self.name, self._data[indices], self.ctype)

    def filter(self, mask: np.ndarray) -> "Column":
        """Return a new column keeping rows where ``mask`` is True."""
        return Column(self.name, self._data[mask], self.ctype)


def _infer_type(values: np.ndarray) -> ColumnType:
    if values.dtype.kind in ("i", "u", "b"):
        return ColumnType.INT
    if values.dtype.kind == "f":
        return ColumnType.FLOAT
    return ColumnType.STRING
