"""``repro.storage`` — in-memory columnar storage substrate.

Tables, typed columns, join schemas (PK-FK graphs) and ANALYZE-style
statistics (equi-depth histograms, MCV lists, distinct counts).
"""

from .catalog import Database
from .column import Column, ColumnType
from .schema import JoinRelation, JoinSchema
from .statistics import (
    ColumnStatistics,
    EquiDepthHistogram,
    TableStatistics,
    analyze_column,
    analyze_table,
)
from .table import Table

__all__ = [
    "Column",
    "ColumnType",
    "Table",
    "JoinRelation",
    "JoinSchema",
    "Database",
    "EquiDepthHistogram",
    "ColumnStatistics",
    "TableStatistics",
    "analyze_column",
    "analyze_table",
]
