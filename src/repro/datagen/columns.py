"""S2 of the paper's data-generation pipeline: attribute columns.

Two generation modes, as in Section 6.2:

- **artificial**: columns with controllable distribution skew (Zipf
  exponent), inter-attribute correlation (latent-factor mixing) and
  domain size — the approach of [36, 37];
- **bootstrap**: resample rows/columns of an existing real-ish table so
  the domain stays realistic while skew/correlation vary.

String columns are generated from a skewed vocabulary so that LIKE
predicates have interesting, non-uniform selectivities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..storage.column import Column
from ..storage.table import Table

__all__ = ["AttributeSpec", "generate_numeric_column", "generate_string_column", "generate_attribute_columns", "bootstrap_columns"]

_SYLLABLES = [
    "an", "ber", "cor", "dan", "el", "fin", "gor", "hal", "ister", "jun",
    "kel", "lor", "mon", "nor", "ost", "per", "quin", "rost", "sol", "tor",
    "und", "var", "win", "xen", "yor", "zan",
]


@dataclass
class AttributeSpec:
    """Knobs for one generated attribute column."""

    name: str
    kind: str = "int"            # "int", "float" or "string"
    domain_size: int = 100       # distinct values (int/string)
    skew: float = 1.0            # Zipf exponent; 0 = uniform
    correlation: float = 0.0     # in [0, 1]: weight of the shared latent factor


def _zipf_probabilities(domain_size: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    if skew <= 0:
        weights = np.ones(domain_size)
    else:
        weights = ranks ** -skew
    return weights / weights.sum()


def _latent_mixed_codes(
    num_rows: int,
    domain_size: int,
    skew: float,
    correlation: float,
    latent: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw value codes, partially driven by a shared latent factor.

    ``latent`` is a (num_rows,) float array in [0, 1).  With correlation
    c, a row's code is ``floor(latent * domain)`` with probability c and
    an independent Zipf draw otherwise — giving tunable inter-column
    correlation (the Section 6.2 knob).
    """
    probs = _zipf_probabilities(domain_size, skew)
    independent = rng.choice(domain_size, size=num_rows, p=probs)
    if correlation <= 0:
        return independent
    from_latent = np.minimum((latent * domain_size).astype(np.int64), domain_size - 1)
    use_latent = rng.random(num_rows) < correlation
    return np.where(use_latent, from_latent, independent)


def _random_word(code: int) -> str:
    """A deterministic pseudo-word for a value code."""
    parts = []
    value = code + 1
    while value > 0:
        parts.append(_SYLLABLES[value % len(_SYLLABLES)])
        value //= len(_SYLLABLES)
    return "".join(parts)


def generate_numeric_column(
    spec: AttributeSpec, num_rows: int, latent: np.ndarray, rng: np.random.Generator
) -> Column:
    """Generate one numeric column per its spec."""
    codes = _latent_mixed_codes(num_rows, spec.domain_size, spec.skew, spec.correlation, latent, rng)
    if spec.kind == "float":
        jitter = rng.uniform(0, 1.0, num_rows)
        return Column(spec.name, codes.astype(np.float64) + jitter)
    return Column(spec.name, codes.astype(np.int64))


def generate_string_column(
    spec: AttributeSpec, num_rows: int, latent: np.ndarray, rng: np.random.Generator
) -> Column:
    """Generate a string column whose values are skewed pseudo-words."""
    codes = _latent_mixed_codes(num_rows, spec.domain_size, spec.skew, spec.correlation, latent, rng)
    vocabulary = np.asarray([_random_word(int(c)) for c in range(spec.domain_size)], dtype=object)
    return Column(spec.name, vocabulary[codes])


def generate_attribute_columns(
    specs: list[AttributeSpec], num_rows: int, rng: np.random.Generator
) -> tuple[list[Column], np.ndarray]:
    """Generate all attribute columns of a table plus its latent factor.

    Returns ``(columns, latent)``; the latent factor is reused by S3 so
    join keys correlate with attributes (per the paper, citing [18]).
    """
    latent = rng.random(num_rows)
    columns = []
    for spec in specs:
        if spec.kind == "string":
            columns.append(generate_string_column(spec, num_rows, latent, rng))
        else:
            columns.append(generate_numeric_column(spec, num_rows, latent, rng))
    return columns, latent


def bootstrap_columns(
    source: Table, num_rows: int, rng: np.random.Generator, column_subset: list[str] | None = None
) -> list[Column]:
    """S2's second mode: bootstrap-resample an existing table.

    Rows are drawn with replacement with a random Dirichlet weighting,
    which perturbs skew and correlation while preserving the domains.
    """
    names = column_subset or source.column_order
    weights = rng.dirichlet(np.ones(source.num_rows) * 0.3)
    picks = rng.choice(source.num_rows, size=num_rows, p=weights)
    return [Column(name, source.column(name).values[picks], source.column(name).ctype) for name in names]
