"""``repro.datagen`` — synthetic database generation.

Implements the paper's Section 6.2 pipeline (S1 join schema, S2
attribute columns with skew/correlation knobs, S3 correlated join
keys) and the IMDB-like 21-table instance standing in for the JOB
benchmark's dataset.
"""

from .columns import AttributeSpec, bootstrap_columns, generate_attribute_columns
from .imdb import IMDB_TABLE_SPECS, imdb_like
from .keys import fk_column_name, foreign_key_column, primary_key_column
from .pipeline import generate_database, generate_databases
from .schema_gen import SchemaPlan, TablePlan, generate_join_schema

__all__ = [
    "AttributeSpec",
    "generate_attribute_columns",
    "bootstrap_columns",
    "generate_join_schema",
    "SchemaPlan",
    "TablePlan",
    "primary_key_column",
    "foreign_key_column",
    "fk_column_name",
    "generate_database",
    "generate_databases",
    "imdb_like",
    "IMDB_TABLE_SPECS",
]
