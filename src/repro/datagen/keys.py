"""S3 of the paper's data-generation pipeline: join keys.

Each table gets a primary key column ``id`` (unique 1..r, stored
0-based).  For every fact table it references, a table gets a foreign
key column ``fk_<fact>`` whose domain equals that fact's PK domain and
whose values *correlate with the attribute columns* — the paper makes
this point explicitly (citing [18]: join keys correlate with
attributes), and it is what defeats independence-assumption estimators.
"""

from __future__ import annotations

import numpy as np

from ..storage.column import Column

__all__ = ["primary_key_column", "foreign_key_column", "fk_column_name"]


def fk_column_name(target_table: str) -> str:
    return f"fk_{target_table}"


def primary_key_column(num_rows: int) -> Column:
    """The PK column: unique values 0..num_rows-1."""
    return Column("id", np.arange(num_rows, dtype=np.int64))


def foreign_key_column(
    target_table: str,
    target_rows: int,
    num_rows: int,
    latent: np.ndarray,
    rng: np.random.Generator,
    correlation: float = 0.6,
    skew: float = 0.8,
) -> Column:
    """An FK column referencing ``target_table``'s PK domain.

    With probability ``correlation`` a row's FK is derived from the
    table's latent attribute factor (so filters on attributes shift the
    joint key distribution); otherwise it is a skewed independent draw
    (popular targets get more references, Zipf ``skew``).
    """
    ranks = np.arange(1, target_rows + 1, dtype=np.float64)
    probs = ranks ** -skew if skew > 0 else np.ones(target_rows)
    probs /= probs.sum()
    independent = rng.choice(target_rows, size=num_rows, p=probs)
    from_latent = np.minimum((latent * target_rows).astype(np.int64), target_rows - 1)
    use_latent = rng.random(num_rows) < correlation
    values = np.where(use_latent, from_latent, independent)
    return Column(fk_column_name(target_table), values.astype(np.int64))
