"""S1 of the paper's data-generation pipeline: a valid join schema.

Section 6.2, step S1: sample the number of tables n in [6, 11], pick
2-3 fact tables, make the rest dimension tables; connect fact tables by
a PK-FK relation; connect each dimension table to one or two fact
tables (PK of the dimension = FK column in itself referencing the
fact's PK domain — the paper words it as the dimension holding an FK
per joinable fact table).  Dimension tables never join each other
directly, but share transitive FK-FK joins through a common fact table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SchemaPlan", "TablePlan", "generate_join_schema"]


@dataclass
class TablePlan:
    """Blueprint for one table before data is generated."""

    name: str
    is_fact: bool
    num_rows: int
    num_attributes: int
    fk_targets: list[str] = field(default_factory=list)  # fact tables this table references


@dataclass
class SchemaPlan:
    """Blueprint for a whole database (output of S1)."""

    tables: list[TablePlan]

    @property
    def fact_tables(self) -> list[str]:
        return [t.name for t in self.tables if t.is_fact]

    @property
    def dimension_tables(self) -> list[str]:
        return [t.name for t in self.tables if not t.is_fact]

    def table(self, name: str) -> TablePlan:
        for t in self.tables:
            if t.name == name:
                return t
        raise KeyError(name)


def generate_join_schema(
    rng: np.random.Generator,
    num_tables: int | None = None,
    min_tables: int = 6,
    max_tables: int = 11,
    row_range: tuple[int, int] = (500, 5000),
    attr_range: tuple[int, int] = (2, 8),
) -> SchemaPlan:
    """Run S1: decide tables, fact/dimension split and FK targets.

    Row and attribute ranges default to laptop scale; the paper's ranges
    (rows 50K-10M, attributes 2-20) are reachable via the arguments.
    """
    if num_tables is None:
        num_tables = int(rng.integers(min_tables, max_tables + 1))
    if num_tables < 3:
        raise ValueError("need at least 3 tables (>=2 fact + >=1 dimension)")

    num_facts = int(rng.integers(2, min(3, num_tables - 1) + 1))
    names = [f"t{i}" for i in range(1, num_tables + 1)]
    fact_names = names[:num_facts]
    dim_names = names[num_facts:]

    tables: list[TablePlan] = []
    for name in fact_names:
        # Fact tables are the big ones.
        rows = int(rng.integers(row_range[1] // 2, row_range[1] + 1))
        tables.append(
            TablePlan(
                name=name,
                is_fact=True,
                num_rows=rows,
                num_attributes=int(rng.integers(attr_range[0], attr_range[1] + 1)),
            )
        )
    # Fact-to-fact chain: fact_i references fact_1's PK (the paper creates
    # the first join relation between T1's PK and T2's FK).
    for plan in tables[1:]:
        plan.fk_targets.append(fact_names[0])

    for name in dim_names:
        rows = int(rng.integers(row_range[0], max(row_range[0] + 1, row_range[1] // 4)))
        n_targets = int(rng.integers(1, min(2, num_facts) + 1))
        targets = list(rng.choice(fact_names, size=n_targets, replace=False))
        tables.append(
            TablePlan(
                name=name,
                is_fact=False,
                num_rows=rows,
                num_attributes=int(rng.integers(attr_range[0], attr_range[1] + 1)),
                fk_targets=targets,
            )
        )
    return SchemaPlan(tables=tables)
