"""An IMDB-like 21-table database (the JOB benchmark's substrate).

The paper evaluates on the IMDB dataset: 21 tables, skewed
distributions, strong attribute correlations, string columns carrying
complex LIKE predicates [Leis et al. 2015].  The real dataset is not
redistributable/offline-available, so this module synthesizes a
database with the *same join schema* (table names, PK-FK edges) and the
same statistical hazards (Zipf skew, latent-factor correlation between
attributes and join keys, skewed string vocabularies).

Scale is reduced to laptop size by default (`scale` multiplies rows).
"""

from __future__ import annotations

import numpy as np

from ..storage.catalog import Database
from ..storage.schema import JoinRelation
from ..storage.column import Column
from ..storage.table import Table
from .columns import AttributeSpec, generate_attribute_columns
from .keys import foreign_key_column, primary_key_column

__all__ = ["imdb_like", "IMDB_TABLE_SPECS"]

# (table, base_rows, attribute specs, [(fk_column, target_table)])
IMDB_TABLE_SPECS: list[tuple[str, int, list[AttributeSpec], list[tuple[str, str]]]] = [
    ("kind_type", 7, [AttributeSpec("kind", "string", 7, 0.0)], []),
    ("company_type", 4, [AttributeSpec("kind", "string", 4, 0.0)], []),
    ("info_type", 40, [AttributeSpec("info", "string", 40, 0.0)], []),
    ("link_type", 18, [AttributeSpec("link", "string", 18, 0.0)], []),
    ("role_type", 12, [AttributeSpec("role", "string", 12, 0.0)], []),
    ("comp_cast_type", 4, [AttributeSpec("kind", "string", 4, 0.0)], []),
    ("keyword", 1500, [AttributeSpec("keyword", "string", 800, 1.1)], []),
    (
        "company_name",
        1200,
        [
            AttributeSpec("name", "string", 900, 1.0),
            AttributeSpec("country_code", "string", 40, 1.4, correlation=0.5),
        ],
        [],
    ),
    (
        "char_name",
        3000,
        [AttributeSpec("name", "string", 2000, 1.0)],
        [],
    ),
    (
        "name",
        6000,
        [
            AttributeSpec("name", "string", 4000, 0.9),
            AttributeSpec("gender", "string", 3, 0.8, correlation=0.4),
        ],
        [],
    ),
    (
        "title",
        4000,
        [
            AttributeSpec("title", "string", 3000, 0.9),
            AttributeSpec("production_year", "int", 130, 1.2, correlation=0.6),
            AttributeSpec("season_nr", "int", 30, 1.5, correlation=0.3),
        ],
        [("kind_id", "kind_type")],
    ),
    (
        "aka_title",
        1500,
        [AttributeSpec("title", "string", 1200, 0.9)],
        [("movie_id", "title")],
    ),
    (
        "movie_companies",
        5000,
        [AttributeSpec("note", "string", 300, 1.6, correlation=0.5)],
        [("movie_id", "title"), ("company_id", "company_name"), ("company_type_id", "company_type")],
    ),
    (
        "movie_info",
        10000,
        [AttributeSpec("info", "string", 2500, 1.3, correlation=0.6)],
        [("movie_id", "title"), ("info_type_id", "info_type")],
    ),
    (
        "movie_info_idx",
        5000,
        [AttributeSpec("info", "string", 400, 1.1, correlation=0.6)],
        [("movie_id", "title"), ("info_type_id", "info_type")],
    ),
    (
        "movie_keyword",
        8000,
        [],
        [("movie_id", "title"), ("keyword_id", "keyword")],
    ),
    (
        "movie_link",
        800,
        [],
        [("movie_id", "title"), ("link_type_id", "link_type")],
    ),
    (
        "cast_info",
        12000,
        [AttributeSpec("nr_order", "int", 50, 1.5, correlation=0.4)],
        [("movie_id", "title"), ("person_id", "name"), ("person_role_id", "char_name"), ("role_id", "role_type")],
    ),
    (
        "complete_cast",
        1000,
        [],
        [("movie_id", "title"), ("subject_id", "comp_cast_type")],
    ),
    (
        "aka_name",
        2000,
        [AttributeSpec("name", "string", 1500, 0.9)],
        [("person_id", "name")],
    ),
    (
        "person_info",
        4000,
        [AttributeSpec("info", "string", 1500, 1.2, correlation=0.5)],
        [("person_id", "name"), ("info_type_id", "info_type")],
    ),
]


def imdb_like(
    seed: int = 0,
    scale: float = 1.0,
    fk_skew: float = 1.3,
    fk_correlation: float = 0.7,
) -> Database:
    """Build the synthetic IMDB-like database.

    ``scale`` multiplies every table's row count (min 4 rows each).
    ``fk_skew``/``fk_correlation`` control the Zipf fan-out of foreign
    keys and their correlation with the attribute latent factor — the
    defaults are deliberately aggressive, matching IMDB's hazard profile
    (a few blockbuster movies dominate cast_info/movie_info, and join
    keys correlate with attributes [Leis et al. 2015]).
    """
    rng = np.random.default_rng(seed)
    row_counts = {
        name: max(int(rows * scale), 4) for name, rows, _, _ in IMDB_TABLE_SPECS
    }

    tables: list[Table] = []
    relations: list[JoinRelation] = []
    for name, _, attr_specs, fk_specs in IMDB_TABLE_SPECS:
        num_rows = row_counts[name]
        columns, latent = generate_attribute_columns(attr_specs, num_rows, rng)
        columns.insert(0, primary_key_column(num_rows))
        for fk_column, target in fk_specs:
            fk = foreign_key_column(
                target_table=target,
                target_rows=row_counts[target],
                num_rows=num_rows,
                latent=latent,
                rng=rng,
                correlation=fk_correlation,
                skew=fk_skew,
            )
            columns.append(Column(fk_column, fk.values))
            relations.append(JoinRelation(name, fk_column, target, "id"))
        tables.append(Table(name, columns, primary_key="id"))

    db = Database("imdb_like", tables)
    for relation in relations:
        db.add_join(relation)
    db.analyze()
    return db
