"""The full Section 6.2 data-generation pipeline: S1 -> S2 -> S3.

``generate_database`` produces one synthetic :class:`Database` with a
valid join schema, skewed/correlated attribute columns and correlated
join keys.  ``generate_databases`` produces the fleet of DBs used by
the cross-DB transfer study (the paper generates 11).
"""

from __future__ import annotations

import numpy as np

from ..storage.catalog import Database
from ..storage.schema import JoinRelation
from ..storage.table import Table
from .columns import AttributeSpec, generate_attribute_columns
from .keys import fk_column_name, foreign_key_column, primary_key_column
from .schema_gen import SchemaPlan, generate_join_schema

__all__ = ["generate_database", "generate_databases"]


def _attribute_specs(plan, rng: np.random.Generator) -> list[AttributeSpec]:
    """Random per-column knobs: type mix, domain size, skew, correlation."""
    specs = []
    for i in range(plan.num_attributes):
        roll = rng.random()
        if roll < 0.25:
            kind = "string"
            domain = int(rng.integers(10, 200))
        elif roll < 0.6:
            kind = "int"
            domain = int(rng.integers(5, 500))
        else:
            kind = "float"
            domain = int(rng.integers(20, 1000))
        specs.append(
            AttributeSpec(
                name=f"attr{i}",
                kind=kind,
                domain_size=domain,
                skew=float(rng.uniform(0.0, 2.0)),
                correlation=float(rng.uniform(0.0, 0.8)),
            )
        )
    return specs


def generate_database(
    seed: int,
    name: str | None = None,
    num_tables: int | None = None,
    row_range: tuple[int, int] = (500, 5000),
    attr_range: tuple[int, int] = (2, 8),
    schema_plan: SchemaPlan | None = None,
    fk_skew: float = 0.8,
    fk_correlation: float = 0.6,
) -> Database:
    """Generate one synthetic database (Section 6.2, steps S1-S3).

    ``fk_skew``/``fk_correlation`` control the foreign keys' Zipf
    fan-out and their correlation with the attribute latent factor.
    """
    rng = np.random.default_rng(seed)
    plan = schema_plan or generate_join_schema(
        rng, num_tables=num_tables, row_range=row_range, attr_range=attr_range
    )

    row_counts = {t.name: t.num_rows for t in plan.tables}
    tables: list[Table] = []
    relations: list[JoinRelation] = []

    for table_plan in plan.tables:
        specs = _attribute_specs(table_plan, rng)
        columns, latent = generate_attribute_columns(specs, table_plan.num_rows, rng)
        columns.insert(0, primary_key_column(table_plan.num_rows))
        for target in table_plan.fk_targets:
            fk = foreign_key_column(
                target_table=target,
                target_rows=row_counts[target],
                num_rows=table_plan.num_rows,
                latent=latent,
                rng=rng,
                correlation=fk_correlation,
                skew=fk_skew,
            )
            columns.append(fk)
            relations.append(
                JoinRelation(table_plan.name, fk_column_name(target), target, "id")
            )
        tables.append(Table(table_plan.name, columns, primary_key="id"))

    db = Database(name or f"synthdb_{seed}", tables)
    for relation in relations:
        db.add_join(relation)
    db.analyze()
    return db


def generate_databases(
    num_databases: int,
    base_seed: int = 0,
    row_range: tuple[int, int] = (500, 5000),
    attr_range: tuple[int, int] = (2, 8),
    fk_skew: float = 0.8,
    fk_correlation: float = 0.6,
) -> list[Database]:
    """Generate the cross-DB fleet (the paper generates 11 DBs)."""
    return [
        generate_database(
            seed=base_seed + i,
            name=f"synthdb_{base_seed + i}",
            row_range=row_range,
            attr_range=attr_range,
            fk_skew=fk_skew,
            fk_correlation=fk_correlation,
        )
        for i in range(num_databases)
    ]
