"""Optimal join orders from true cardinalities (the ECQO substitute).

The paper uses the ECQO program [Trummer 2019] to produce ground-truth
optimal join orders for training and the "Optimal" row of Table 2.
ECQO's essence is exact optimization with *exact* cardinalities; this
module reproduces that with the DP enumerator plugged into the
true-cardinality oracle (which executes every connected sub-query).

Like the paper — which could only afford ECQO for queries touching at
most 8 tables — this is exponential, so callers should bound the table
count.
"""

from __future__ import annotations

from ..engine.cost_model import CostModel, TimingAlignedCostModel
from ..sql.query import Query
from ..storage.catalog import Database
from .join_enum import PlannedQuery, dp_join_enumeration
from .selectivity import TrueCardinalityOracle

__all__ = ["optimal_plan", "optimal_join_order"]


def optimal_plan(
    query: Query,
    db: Database,
    cost_model: CostModel | None = None,
    left_deep_only: bool = True,
    oracle: TrueCardinalityOracle | None = None,
) -> PlannedQuery:
    """The cost-optimal plan under true cardinalities.

    The objective defaults to :class:`TimingAlignedCostModel`, so
    "optimal" means minimal *simulated execution time* — the quantity
    the Table 2/3 experiments measure.
    """
    oracle = oracle or TrueCardinalityOracle(db)
    return dp_join_enumeration(
        query,
        oracle,
        cost_model=cost_model or TimingAlignedCostModel(),
        left_deep_only=left_deep_only,
    )


def optimal_join_order(
    query: Query,
    db: Database,
    cost_model: CostModel | None = None,
    oracle: TrueCardinalityOracle | None = None,
) -> list[str]:
    """The optimal left-deep join order (training label for Trans_JO)."""
    return optimal_plan(query, db, cost_model=cost_model, left_deep_only=True, oracle=oracle).join_order
