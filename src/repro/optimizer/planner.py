"""High-level planner facades.

``PostgresStylePlanner`` = histogram statistics + DP enumeration: the
classical baseline whose plans and estimates populate the "PostgreSQL"
rows of Tables 1-3.  ``plan_with_order`` builds the physical plan for an
externally-chosen join order (used to execute MTMLF-QO's predicted
orders).
"""

from __future__ import annotations

from ..engine.cost_model import DEFAULT_COST_MODEL, CostModel
from ..engine.plan import PlanNode, left_deep_plan
from ..sql.query import Query
from ..storage.catalog import Database
from .join_enum import PlannedQuery, dp_join_enumeration, greedy_join_order
from .selectivity import CardinalityEstimator, HistogramEstimator

__all__ = ["PostgresStylePlanner", "plan_with_order"]


class PostgresStylePlanner:
    """Cost-based planner with ANALYZE statistics (the classical baseline)."""

    def __init__(
        self,
        db: Database,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        left_deep_only: bool = True,
        max_dp_tables: int = 10,
    ):
        self.db = db
        self.cost_model = cost_model
        self.estimator = HistogramEstimator(db)
        self.left_deep_only = left_deep_only
        self.max_dp_tables = max_dp_tables

    def plan(self, query: Query) -> PlannedQuery:
        """Choose a join order and physical operators for ``query``."""
        if query.num_tables <= self.max_dp_tables:
            return dp_join_enumeration(
                query,
                self.estimator,
                cost_model=self.cost_model,
                left_deep_only=self.left_deep_only,
            )
        return greedy_join_order(query, self.estimator, cost_model=self.cost_model)

    def estimate_cardinality(self, query: Query) -> float:
        """Estimated output cardinality of the full query."""
        return self.estimator.estimate(query, frozenset(query.tables))

    def estimate_cost(self, query: Query) -> float:
        """Estimated total plan cost for the chosen plan."""
        return self.plan(query).cost


def plan_with_order(
    query: Query,
    order: list[str],
    estimator: CardinalityEstimator,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> PlanNode:
    """Physical left-deep plan for an externally-supplied join order.

    Scan and join operators are chosen by ``cost_model`` using
    ``estimator``'s cardinalities; the join *order* is fixed.  This is
    how predicted join orders (from Trans_JO or any baseline) are turned
    into executable plans.
    """
    plan = left_deep_plan(query, order)
    cards = {}
    for node in plan.nodes_postorder():
        cards[node.tables] = max(float(estimator.estimate(query, node.tables)), 0.0)
    base = {t: estimator.base_rows(t) for t in query.tables}
    cost_model.plan_cost(plan, cards, base)  # annotates ops in place
    return plan
