"""Histogram-based cardinality estimation (the "PostgreSQL" baseline).

Implements the textbook System-R/PostgreSQL estimator:

- per-column selectivities from ANALYZE statistics (MCVs for equality,
  equi-depth histograms for ranges, magic constants for LIKE);
- independence assumption across predicates on a table;
- equi-join selectivity ``1 / max(ndv(a), ndv(b))``;
- independence across join predicates.

Its characteristic failure mode — huge underestimates on correlated
predicates and multi-way joins — is precisely the PostgreSQL row of the
paper's Table 1.
"""

from __future__ import annotations

import numpy as np

from ..errors import DisconnectedQueryError

from ..sql.predicates import (
    BetweenPredicate,
    Comparison,
    CompareOp,
    Conjunction,
    InPredicate,
    LikePredicate,
)
from ..sql.query import Query
from ..storage.catalog import Database

__all__ = ["CardinalityEstimator", "HistogramEstimator", "TrueCardinalityOracle"]

# PostgreSQL's default pattern selectivities (utils/adt/selfuncs.h).
_DEFAULT_MATCH_SEL = 0.005
_PREFIX_MATCH_SEL = 0.02


class CardinalityEstimator:
    """Interface: estimate the cardinality of a connected table subset.

    Implementations must return the estimated number of output rows of
    joining (with all applicable join predicates) and filtering (with
    all applicable filter predicates) the tables in ``subset``.
    """

    def estimate(self, query: Query, subset: frozenset) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def base_rows(self, table: str) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class HistogramEstimator(CardinalityEstimator):
    """ANALYZE-statistics estimator with the independence assumption."""

    def __init__(self, db: Database):
        self.db = db

    # -- single predicates ---------------------------------------------------
    def predicate_selectivity(self, predicate) -> float:
        stats = self.db.statistics(predicate.table).column(predicate.column_names()[0])
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate, stats)
        if isinstance(predicate, BetweenPredicate):
            if stats.histogram is None:
                return 0.25
            return stats.histogram.selectivity_range(predicate.low, predicate.high)
        if isinstance(predicate, InPredicate):
            total = sum(stats.equality_selectivity(v) for v in predicate.values)
            return float(min(total, 1.0))
        if isinstance(predicate, LikePredicate):
            sel = _PREFIX_MATCH_SEL if not predicate.pattern.startswith("%") else _DEFAULT_MATCH_SEL
            return 1.0 - sel if predicate.negated else sel
        raise TypeError(f"unsupported predicate type {type(predicate).__name__}")

    def _comparison_selectivity(self, predicate: Comparison, stats) -> float:
        if predicate.op is CompareOp.EQ:
            return stats.equality_selectivity(predicate.value)
        if predicate.op is CompareOp.NE:
            return max(1.0 - stats.equality_selectivity(predicate.value), 0.0)
        if stats.histogram is None:
            return 0.33  # PostgreSQL's DEFAULT_INEQ_SEL
        value = float(predicate.value)
        le = stats.histogram.selectivity_le(value)
        if predicate.op in (CompareOp.LT, CompareOp.LE):
            return le
        return max(1.0 - le, 0.0)

    # -- tables and subsets ----------------------------------------------------
    def scan_selectivity(self, conjunction: Conjunction) -> float:
        sel = 1.0
        for predicate in conjunction.predicates:
            sel *= self.predicate_selectivity(predicate)
        return float(np.clip(sel, 0.0, 1.0))

    def scan_rows(self, query: Query, table: str) -> float:
        base = self.db.statistics(table).num_rows
        return base * self.scan_selectivity(query.filter_for(table))

    def join_selectivity(self, join) -> float:
        left_stats = self.db.statistics(join.left).column(join.left_column)
        right_stats = self.db.statistics(join.right).column(join.right_column)
        ndv = max(left_stats.n_distinct, right_stats.n_distinct, 1)
        return 1.0 / ndv

    def estimate(self, query: Query, subset: frozenset) -> float:
        rows = 1.0
        for table in subset:
            rows *= max(self.scan_rows(query, table), 0.0)
        for join in query.joins:
            if join.left in subset and join.right in subset:
                rows *= self.join_selectivity(join)
        return max(rows, 0.0)

    def base_rows(self, table: str) -> float:
        return float(self.db.statistics(table).num_rows)


class TrueCardinalityOracle(CardinalityEstimator):
    """Exact cardinalities obtained by actually executing sub-plans.

    This is the substitute for the paper's ECQO program [34]: exact
    query optimization requires the true cardinality of every connected
    sub-query, which we obtain from the execution engine with
    memoization.  Exponential in the number of tables — the paper
    likewise only ran ECQO for queries touching <= 8 tables.
    """

    def __init__(self, db: Database, max_intermediate_rows: int | None = 20_000_000):
        self.db = db
        self.max_intermediate_rows = max_intermediate_rows
        self._memo: dict[tuple, object] = {}

    def _key(self, query: Query, subset: frozenset) -> tuple:
        return (id(query), subset)

    def _intermediate(self, query: Query, subset: frozenset):
        from ..engine.operators import execute_join, execute_scan
        from ..engine.plan import join_node, scan_node

        key = self._key(query, subset)
        if key in self._memo:
            return self._memo[key]
        if len(subset) == 1:
            table = next(iter(subset))
            node = scan_node(table, query.filter_for(table))
            intermediate, _ = execute_scan(node, self.db)
        else:
            # Peel one table connected to the rest, join recursively.
            ordered = sorted(subset)
            peel = None
            for candidate in ordered:
                rest = subset - {candidate}
                if query.joins_between(set(rest), {candidate}) and _subset_connected(query, rest):
                    peel = candidate
                    break
            if peel is None:
                raise DisconnectedQueryError(f"subset {sorted(subset)} is not connected in query joins")
            rest = subset - {peel}
            left = self._intermediate(query, rest)
            right = self._intermediate(query, frozenset([peel]))
            predicates = query.joins_between(set(rest), {peel})
            node = join_node(
                _dummy_plan(rest, query), _dummy_plan(frozenset([peel]), query), predicates
            )
            from ..engine.executor import ExecutionLimitError
            from ..engine.operators import JoinExpansionError

            try:
                intermediate, _ = execute_join(
                    node, left, right, self.db, max_rows=self.max_intermediate_rows
                )
            except JoinExpansionError as exc:
                raise ExecutionLimitError(str(exc)) from exc
        if self.max_intermediate_rows is not None and intermediate.cardinality > self.max_intermediate_rows:
            from ..engine.executor import ExecutionLimitError

            raise ExecutionLimitError(
                f"true-cardinality oracle intermediate exceeds cap on subset {sorted(subset)}"
            )
        self._memo[key] = intermediate
        return intermediate

    def estimate(self, query: Query, subset: frozenset) -> float:
        return float(self._intermediate(query, subset).cardinality)

    def base_rows(self, table: str) -> float:
        return float(self.db.table(table).num_rows)

    def clear_cache(self) -> None:
        self._memo.clear()


def _subset_connected(query: Query, subset: frozenset) -> bool:
    if len(subset) <= 1:
        return True
    tables = sorted(subset)
    index = {t: i for i, t in enumerate(tables)}
    adjacency = [[] for _ in tables]
    for join in query.joins:
        if join.left in subset and join.right in subset:
            adjacency[index[join.left]].append(index[join.right])
            adjacency[index[join.right]].append(index[join.left])
    seen = {0}
    stack = [0]
    while stack:
        node = stack.pop()
        for other in adjacency[node]:
            if other not in seen:
                seen.add(other)
                stack.append(other)
    return len(seen) == len(tables)


def _dummy_plan(subset: frozenset, query: Query):
    """A structural stand-in plan node covering ``subset`` (for execute_join)."""
    from ..engine.plan import PlanNode, scan_node

    if len(subset) == 1:
        table = next(iter(subset))
        return scan_node(table, query.filter_for(table))
    return PlanNode(tables=subset, left=scan_node(sorted(subset)[0]), right=scan_node(sorted(subset)[1]))
