"""Join-order enumeration: exact DP and a greedy fallback.

``dp_join_enumeration`` is the classical System-R dynamic program over
connected subsets of the query's join graph, extended (optionally) to
bushy trees.  Combined with :class:`HistogramEstimator` it reproduces a
PostgreSQL-style planner; combined with :class:`TrueCardinalityOracle`
it is the exact-cardinality optimizer used as the "Optimal" row of
Table 2 (the ECQO substitute).
"""

from __future__ import annotations

from itertools import combinations

from ..engine.cost_model import DEFAULT_COST_MODEL, CostModel
from ..errors import DisconnectedQueryError
from ..engine.plan import PlanNode, join_node, scan_node
from ..sql.query import Query
from .selectivity import CardinalityEstimator, _subset_connected

__all__ = ["dp_join_enumeration", "greedy_join_order", "PlannedQuery"]


class PlannedQuery:
    """The result of join enumeration: a physical plan plus metadata."""

    def __init__(self, plan: PlanNode, cost: float, cardinalities: dict[frozenset, float]):
        self.plan = plan
        self.cost = cost
        self.cardinalities = cardinalities

    @property
    def join_order(self) -> list[str]:
        return self.plan.leaf_tables_in_order()

    def __repr__(self) -> str:
        return f"PlannedQuery(order={self.join_order}, cost={self.cost:.2f})"


def dp_join_enumeration(
    query: Query,
    estimator: CardinalityEstimator,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    left_deep_only: bool = True,
    max_dp_tables: int = 12,
) -> PlannedQuery:
    """Optimal join order via dynamic programming over connected subsets.

    Cost of a plan = sum of operator costs under ``cost_model`` with
    cardinalities supplied by ``estimator``.  With ``left_deep_only``
    the search space matches the paper's focus (Section 3.2); otherwise
    all bushy partitions of each subset are considered.
    """
    tables = list(query.tables)
    n = len(tables)
    if n > max_dp_tables:
        raise ValueError(f"DP enumeration limited to {max_dp_tables} tables, query has {n}")
    if n == 0:
        raise ValueError("query touches no tables")

    cards: dict[frozenset, float] = {}

    def card(subset: frozenset) -> float:
        if subset not in cards:
            cards[subset] = max(float(estimator.estimate(query, subset)), 0.0)
        return cards[subset]

    best: dict[frozenset, tuple[float, PlanNode]] = {}
    for table in tables:
        subset = frozenset([table])
        has_filter = len(query.filter_for(table)) > 0
        scan_op, cost = cost_model.best_scan_op(estimator.base_rows(table), card(subset), has_filter)
        node = scan_node(table, query.filter_for(table), scan_op)
        node.estimated_cardinality = card(subset)
        best[subset] = (cost, node)

    if n == 1:
        cost, plan = best[frozenset(tables)]
        return PlannedQuery(plan, cost, cards)

    all_tables = frozenset(tables)
    for size in range(2, n + 1):
        for combo in combinations(tables, size):
            subset = frozenset(combo)
            if not _subset_connected(query, subset):
                continue
            out_rows = card(subset)
            candidate: tuple[float, PlanNode] | None = None
            for left_subset, right_subset in _partitions(subset, left_deep_only):
                if left_subset not in best or right_subset not in best:
                    continue
                predicates = query.joins_between(set(left_subset), set(right_subset))
                if not predicates:
                    continue
                left_cost, left_plan = best[left_subset]
                right_cost, right_plan = best[right_subset]
                join_op, op_cost = cost_model.best_join_op(card(left_subset), card(right_subset), out_rows)
                total = left_cost + right_cost + op_cost
                if candidate is None or total < candidate[0]:
                    node = join_node(left_plan, right_plan, predicates, join_op)
                    node.estimated_cardinality = out_rows
                    candidate = (total, node)
            if candidate is not None:
                best[subset] = candidate

    if all_tables not in best:
        raise DisconnectedQueryError("query join graph is disconnected: no complete plan exists")
    cost, plan = best[all_tables]
    return PlannedQuery(plan, cost, cards)


def _partitions(subset: frozenset, left_deep_only: bool):
    """Yield (left, right) splits of ``subset``; right is a single table
    when ``left_deep_only``."""
    items = sorted(subset)
    if left_deep_only:
        for table in items:
            yield subset - {table}, frozenset([table])
        return
    n = len(items)
    # Enumerate proper non-empty subsets; fix items[0] on the left side to
    # halve the symmetric space.
    rest = items[1:]
    for r in range(0, len(rest) + 1):
        for combo in combinations(rest, r):
            left = frozenset((items[0],) + combo)
            right = subset - left
            if right:
                yield left, right


def greedy_join_order(
    query: Query,
    estimator: CardinalityEstimator,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> PlannedQuery:
    """Greedy smallest-intermediate-first join ordering (GEQO stand-in).

    Used for queries too large for DP: start from the smallest filtered
    table and repeatedly join the neighbour that minimises the estimated
    intermediate size.
    """
    remaining = set(query.tables)
    cards: dict[frozenset, float] = {}

    def card(subset: frozenset) -> float:
        if subset not in cards:
            cards[subset] = max(float(estimator.estimate(query, subset)), 0.0)
        return cards[subset]

    start = min(remaining, key=lambda t: card(frozenset([t])))
    has_filter = len(query.filter_for(start)) > 0
    scan_op, total_cost = cost_model.best_scan_op(
        estimator.base_rows(start), card(frozenset([start])), has_filter
    )
    plan = scan_node(start, query.filter_for(start), scan_op)
    joined = {start}
    remaining.discard(start)

    while remaining:
        candidates = [t for t in sorted(remaining) if query.joins_between(joined, {t})]
        if not candidates:
            raise DisconnectedQueryError("query join graph is disconnected")
        chosen = min(candidates, key=lambda t: card(frozenset(joined | {t})))
        subset = frozenset(joined | {chosen})
        predicates = query.joins_between(joined, {chosen})
        has_filter = len(query.filter_for(chosen)) > 0
        scan_op, scan_cost = cost_model.best_scan_op(
            estimator.base_rows(chosen), card(frozenset([chosen])), has_filter
        )
        right = scan_node(chosen, query.filter_for(chosen), scan_op)
        join_op, op_cost = cost_model.best_join_op(
            card(frozenset(joined)), card(frozenset([chosen])), card(subset)
        )
        plan = join_node(plan, right, predicates, join_op)
        plan.estimated_cardinality = card(subset)
        total_cost += scan_cost + op_cost
        joined.add(chosen)
        remaining.discard(chosen)

    return PlannedQuery(plan, total_cost, cards)
