"""``repro.optimizer`` — classical cost-based query optimization.

Histogram selectivity estimation (the "PostgreSQL" baseline), exact DP
join enumeration with a greedy fallback, and the true-cardinality
optimal-order oracle standing in for the paper's ECQO program.
"""

from .join_enum import PlannedQuery, dp_join_enumeration, greedy_join_order
from .optimal import optimal_join_order, optimal_plan
from .planner import PostgresStylePlanner, plan_with_order
from .selectivity import CardinalityEstimator, HistogramEstimator, TrueCardinalityOracle

__all__ = [
    "CardinalityEstimator",
    "HistogramEstimator",
    "TrueCardinalityOracle",
    "dp_join_enumeration",
    "greedy_join_order",
    "PlannedQuery",
    "PostgresStylePlanner",
    "plan_with_order",
    "optimal_plan",
    "optimal_join_order",
]
