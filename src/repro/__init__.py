"""Reproduction of "A Unified Transferable Model for ML-Enhanced DBMS".

Paper: Wu et al., CIDR 2022 (arXiv:2105.02418).

Subpackages
-----------
``repro.nn``
    Numpy autograd + neural network framework (PyTorch substitute).
``repro.storage``
    In-memory columnar tables, schemas, join graphs and statistics.
``repro.sql``
    Query model (predicates, joins) and a small SQL parser.
``repro.engine``
    Vectorized execution engine, plan trees, cost model, simulated timing.
``repro.optimizer``
    Classical cost-based optimizer (the "PostgreSQL" baseline) and the
    true-cardinality optimal join-order oracle (ECQO substitute).
``repro.datagen``
    The paper's Section 6.2 synthetic database generation pipeline and an
    IMDB-like 21-table instance.
``repro.workload``
    JOB-like workload generation and labeling (true card/cost/join order).
``repro.core``
    The paper's contribution: the MTMLF-QO model — featurization,
    per-table encoders, tree serializer, Trans_Share, task heads,
    Trans_JO with legality beam search, JOEU, joint + sequence-level
    losses, trainer, and MLA cross-DB meta-learning.
``repro.baselines``
    Tree-LSTM cost/cardinality estimator and the PostgreSQL-style rows.
``repro.eval``
    Metrics, experiment harnesses for Tables 1-3 and reporting.
"""

__version__ = "1.0.0"
