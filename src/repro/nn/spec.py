"""Declarative shape/dtype specs for nn layers and kernels.

``shape_spec`` attaches a *symbolic* signature to a forward method or
kernel function: input shapes, output shape(s), the parameter set the
method reads, and any non-default dtypes.  Shapes are strings parsed as
Python tuples of dimension expressions over symbols — free symbols
(``B``, ``L`` …) bind per call; names matching constructor parameters /
attributes (``in_features``, ``dim`` …) are fixed by the layer instance;
``...`` as the first element means "any leading dims"::

    @shape_spec(inputs={"x": "(..., in_features)"},
                out="(..., out_features)",
                params=("weight", "bias"))
    def forward(self, x): ...

The decorator is runtime-inert — it stashes the spec on the function as
``__shape_spec__`` and returns the function unchanged, so it adds zero
per-call overhead.  The real consumer is the static analyzer
(:mod:`repro.analysis.shapes`), which reads the decorator from the AST
(all arguments must therefore be literals) and abstractly interprets
the method body against it.  Dual-mode pairs (``forward`` /
``infer_forward`` and friends) must declare identical ``out`` and
``params`` — the ``dual-mode-parity`` checker enforces it.
"""

from __future__ import annotations

__all__ = ["shape_spec"]


def shape_spec(
    inputs: dict | None = None,
    out=None,
    params: tuple = (),
    dtypes: dict | None = None,
):
    """Attach a declarative symbolic shape/dtype spec to a callable.

    Parameters
    ----------
    inputs:
        Mapping of argument name to shape string (or tuple of shape
        strings for tuple-valued arguments).  Arguments left out are
        treated as unconstrained by the analyzer.
    out:
        Shape string of the return value, or a tuple of shape strings
        for tuple returns.
    params:
        Names of the parameter-bearing attributes this method reads
        (directly or through sub-modules).  Dual-mode siblings must
        declare the same set.
    dtypes:
        Mapping of argument name (or ``"out"``) to abstract dtype for
        anything that is not the canonical ``float64``.
    """

    def wrap(fn):
        fn.__shape_spec__ = {
            "inputs": inputs or {},
            "out": out,
            "params": tuple(params),
            "dtypes": dtypes or {},
        }
        return fn

    return wrap
