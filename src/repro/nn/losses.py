"""Loss functions used by MTMLF-QO training.

Implements the paper's loss criteria:

- the Q-error loss for CardEst/CostEst (Section 3.2, L.i/L.ii):
  ``L = max(pred/true, true/pred)``, computed in log space for a
  smooth, symmetric surrogate;
- token-level cross-entropy for join-order prediction (L.iii);
- KL divergence against the tree "decoding embeddings" of Section 4.1.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = ["q_error_loss", "q_error", "cross_entropy", "kl_divergence", "mse_loss"]


def q_error(pred: np.ndarray, true: np.ndarray, floor: float = 1.0) -> np.ndarray:
    """Elementwise q-error ``max(pred/true, true/pred)`` (always >= 1).

    Both inputs are clamped below at ``floor`` (cardinalities of zero are
    conventionally treated as one, following the CardEst literature).
    """
    pred = np.maximum(np.asarray(pred, dtype=np.float64), floor)
    true = np.maximum(np.asarray(true, dtype=np.float64), floor)
    return np.maximum(pred / true, true / pred)


def q_error_loss(log_pred: Tensor, true_values: np.ndarray, floor: float = 1.0) -> Tensor:
    """Differentiable q-error surrogate.

    The model predicts ``log_pred = log(card)``; since
    ``log qerr = |log_pred - log_true|``, minimising the mean absolute
    log difference minimises the geometric-mean q-error.  This is the
    standard smooth implementation of the paper's L.i/L.ii criteria.
    """
    true = np.maximum(np.asarray(true_values, dtype=np.float64), floor)
    target = Tensor(np.log(true))
    diff = log_pred - target
    return diff.abs().mean()


def cross_entropy(logits: Tensor, target_index: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
    """Mean token-level cross entropy.

    ``logits`` has shape (..., n_classes) and ``target_index`` matches its
    leading shape.  ``mask`` (optional, same leading shape) selects which
    positions contribute; it must select at least one position.
    """
    log_probs = F.log_softmax(logits, axis=-1)
    target_index = np.asarray(target_index, dtype=np.int64)
    onehot = F.one_hot(target_index, logits.shape[-1])
    picked = (log_probs * Tensor(onehot)).sum(axis=-1)
    if mask is not None:
        mask = np.asarray(mask, dtype=np.float64)
        count = mask.sum()
        if count == 0:
            raise ValueError("cross_entropy mask selects no positions")
        return -(picked * Tensor(mask)).sum() * (1.0 / count)
    return -picked.mean()


def kl_divergence(logits: Tensor, target_dist: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
    """Mean KL(target || softmax(logits)) over sequence positions.

    Used by the tree-codec training objective of Section 4.1, where the
    target is a (possibly multi-hot, normalised) decoding embedding.
    """
    target = np.asarray(target_dist, dtype=np.float64)
    sums = target.sum(axis=-1, keepdims=True)
    target = target / np.maximum(sums, 1e-12)
    log_probs = F.log_softmax(logits, axis=-1)
    # Constant entropy term of the target is irrelevant to gradients but
    # kept so the loss value is a true KL divergence.
    entropy = -np.sum(np.where(target > 0, target * np.log(np.maximum(target, 1e-12)), 0.0), axis=-1)
    ce = -(log_probs * Tensor(target)).sum(axis=-1)
    kl = ce - Tensor(entropy)
    if mask is not None:
        mask = np.asarray(mask, dtype=np.float64)
        count = max(float(mask.sum()), 1.0)
        return (kl * Tensor(mask)).sum() * (1.0 / count)
    return kl.mean()


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()
