"""Model checkpointing: save/load ``Module`` state dicts as ``.npz``.

MLA (Algorithm 1) ships the pre-trained (S)+(T) modules from the cloud
provider to users; this module provides that transport format.  Full
MTMLF-QO checkpoints (config + featurizers + optimizer state) live in
:mod:`repro.core.checkpoint` and build on the same primitives.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from .layers import Module

__all__ = ["save_module", "load_module", "resolve_npz_path", "atomic_savez"]


def resolve_npz_path(path: str) -> str:
    """The on-disk path a ``.npz`` save actually produces.

    ``np.savez`` appends ``.npz`` when missing; applying the same rule on
    both the save and load side keeps the two symmetric.
    """
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    return path


def atomic_savez(path: str, arrays: dict[str, np.ndarray]) -> str:
    """Write ``arrays`` to ``path`` atomically; return the resolved path.

    The archive is written to a temporary file in the target directory,
    flushed and fsynced, then moved into place with ``os.replace`` — a
    crash mid-save can never leave a truncated file at ``path``.
    """
    path = resolve_npz_path(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            # A file object suppresses np.savez's implicit ".npz" suffix,
            # so the temporary file's name is exactly tmp_path.
            np.savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    return path


def save_module(module: Module, path: str) -> str:
    """Persist a module's parameters; returns the resolved ``.npz`` path."""
    return atomic_savez(path, module.state_dict())


def load_module(module: Module, path: str) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``."""
    with np.load(resolve_npz_path(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module
