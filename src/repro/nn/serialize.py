"""Model checkpointing: save/load ``Module`` state dicts as ``.npz``.

MLA (Algorithm 1) ships the pre-trained (S)+(T) modules from the cloud
provider to users; this module provides that transport format.
"""

from __future__ import annotations

import os

import numpy as np

from .layers import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str) -> None:
    """Persist a module's parameters to ``path`` (.npz appended if missing)."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_module(module: Module, path: str) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module
