"""LSTM cells, sequence LSTM and the child-sum Tree-LSTM.

The Tree-LSTM is used by the baseline plan-cost estimator
(:class:`repro.baselines.treelstm.TreeLSTMEstimator`), mirroring the
"Tree-LSTM" SOTA row of the paper's Table 1 (Sun & Li, 2019).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import kernels
from .layers import Linear, Module
from .spec import shape_spec
from .tensor import Tensor, no_tape_active

__all__ = ["LSTMCell", "LSTM", "ChildSumTreeLSTM"]


class LSTMCell(Module):
    """Single LSTM step for (batch, dim) inputs."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.ih = Linear(input_dim, 4 * hidden_dim, rng=rng)
        self.hh = Linear(hidden_dim, 4 * hidden_dim, rng=rng)

    @shape_spec(inputs={"x": "(B, input_dim)",
                        "state": ("(B, hidden_dim)", "(B, hidden_dim)")},
                out=("(B, hidden_dim)", "(B, hidden_dim)"),
                params=("ih", "hh"))
    def forward(self, x: Tensor, state: tuple[Tensor, Tensor] | None = None) -> tuple[Tensor, Tensor]:
        batch = x.shape[0]
        if state is None:
            h = Tensor(np.zeros((batch, self.hidden_dim)))
            c = Tensor(np.zeros((batch, self.hidden_dim)))
        else:
            h, c = state
        gates = self.ih(x) + self.hh(h)
        d = self.hidden_dim
        i = gates[:, 0 * d: 1 * d].sigmoid()
        f = gates[:, 1 * d: 2 * d].sigmoid()
        g = gates[:, 2 * d: 3 * d].tanh()
        o = gates[:, 3 * d: 4 * d].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new

    @shape_spec(inputs={"x": "(B, input_dim)",
                        "state": ("(B, hidden_dim)", "(B, hidden_dim)")},
                out=("(B, hidden_dim)", "(B, hidden_dim)"),
                params=("ih", "hh"))
    def infer_forward(
        self, x: np.ndarray, state: tuple[np.ndarray, np.ndarray] | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """No-tape mirror of :meth:`forward` on raw ndarrays."""
        batch = x.shape[0]
        if state is None:
            h = np.zeros((batch, self.hidden_dim))
            c = np.zeros((batch, self.hidden_dim))
        else:
            h, c = state
        gates = self.ih.infer_forward(x) + self.hh.infer_forward(h)
        d = self.hidden_dim
        i = kernels.sigmoid(gates[:, 0 * d: 1 * d])
        f = kernels.sigmoid(gates[:, 1 * d: 2 * d])
        g = np.tanh(gates[:, 2 * d: 3 * d])
        o = kernels.sigmoid(gates[:, 3 * d: 4 * d])
        c_new = f * c + i * g
        h_new = o * np.tanh(c_new)
        return h_new, c_new


class LSTM(Module):
    """Unidirectional sequence LSTM over (batch, seq, dim) tensors."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim, rng=rng)
        self.hidden_dim = hidden_dim

    @shape_spec(inputs={"x": "(B, L, input_dim)"},
                out="(B, L, hidden_dim)",
                params=("cell",))
    def forward(self, x: Tensor) -> Tensor:
        """Return the stacked hidden states, shape (batch, seq, hidden)."""
        if no_tape_active():
            return Tensor._wrap(self.infer_forward(x.data))
        state = None
        outputs = []
        for t in range(x.shape[1]):
            h, c = self.cell(x[:, t, :], state)
            state = (h, c)
            outputs.append(h)
        return F.stack(outputs, axis=1)

    @shape_spec(inputs={"x": "(B, L, input_dim)"},
                out="(B, L, hidden_dim)",
                params=("cell",))
    def infer_forward(self, x: np.ndarray) -> np.ndarray:
        """No-tape mirror of :meth:`forward`."""
        state = None
        outputs = []
        for t in range(x.shape[1]):
            h, c = self.cell.infer_forward(x[:, t, :], state)
            state = (h, c)
            outputs.append(h)
        return np.stack(outputs, axis=1)


class ChildSumTreeLSTM(Module):
    """Child-sum Tree-LSTM (Tai et al. 2015) for binary plan trees.

    ``forward`` consumes a node-feature tensor plus explicit child links
    so whole plan trees can be encoded bottom-up.  For a plan-tree node
    with children states ``(h_l, c_l)`` and ``(h_r, c_r)``, the update is
    the standard child-sum rule with per-child forget gates.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.iou_x = Linear(input_dim, 3 * hidden_dim, rng=rng)
        self.iou_h = Linear(hidden_dim, 3 * hidden_dim, bias=False, rng=rng)
        self.f_x = Linear(input_dim, hidden_dim, rng=rng)
        self.f_h = Linear(hidden_dim, hidden_dim, bias=False, rng=rng)

    @shape_spec(inputs={"x": "(B, input_dim)"},
                out=("(B, hidden_dim)", "(B, hidden_dim)"),
                params=("iou_x", "iou_h", "f_x", "f_h"))
    def node_forward(self, x: Tensor, child_states: list[tuple[Tensor, Tensor]]) -> tuple[Tensor, Tensor]:
        """Compute the (h, c) state of one node given its children's states.

        ``x`` has shape (1, input_dim); children may be empty (leaves).
        """
        if child_states:
            h_sum = child_states[0][0]
            for h, _ in child_states[1:]:
                h_sum = h_sum + h
        else:
            h_sum = Tensor(np.zeros((x.shape[0], self.hidden_dim)))

        iou = self.iou_x(x) + self.iou_h(h_sum)
        d = self.hidden_dim
        i = iou[:, 0 * d: 1 * d].sigmoid()
        o = iou[:, 1 * d: 2 * d].sigmoid()
        u = iou[:, 2 * d: 3 * d].tanh()

        c = i * u
        fx = self.f_x(x)
        for h_child, c_child in child_states:
            f = (fx + self.f_h(h_child)).sigmoid()
            c = c + f * c_child
        h = o * c.tanh()
        return h, c

    @shape_spec(inputs={"x": "(B, input_dim)"},
                out=("(B, hidden_dim)", "(B, hidden_dim)"),
                params=("iou_x", "iou_h", "f_x", "f_h"))
    def infer_node_forward(
        self, x: np.ndarray, child_states: list[tuple[np.ndarray, np.ndarray]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """No-tape mirror of :meth:`node_forward` on raw ndarrays."""
        if child_states:
            h_sum = child_states[0][0]
            for h, _ in child_states[1:]:
                h_sum = h_sum + h
        else:
            h_sum = np.zeros((x.shape[0], self.hidden_dim))

        iou = self.iou_x.infer_forward(x) + self.iou_h.infer_forward(h_sum)
        d = self.hidden_dim
        i = kernels.sigmoid(iou[:, 0 * d: 1 * d])
        o = kernels.sigmoid(iou[:, 1 * d: 2 * d])
        u = np.tanh(iou[:, 2 * d: 3 * d])

        c = i * u
        fx = self.f_x.infer_forward(x)
        for h_child, c_child in child_states:
            f = kernels.sigmoid(fx + self.f_h.infer_forward(h_child))
            c = c + f * c_child
        h = o * np.tanh(c)
        return h, c

    def encode_tree(self, features: dict, children: dict, root) -> Tensor:
        """Encode a tree given per-node features and a children mapping.

        Parameters
        ----------
        features:
            Mapping node-id -> (1, input_dim) feature array or Tensor.
        children:
            Mapping node-id -> list of child node-ids.
        root:
            Id of the root node.

        Returns the root hidden state, shape (1, hidden_dim).
        """
        memo: dict = {}

        if no_tape_active():
            def visit_nd(node) -> tuple[np.ndarray, np.ndarray]:
                if node in memo:
                    return memo[node]
                child_states = [visit_nd(c) for c in children.get(node, [])]
                feat = features[node]
                feat_nd = feat.data if isinstance(feat, Tensor) else np.asarray(feat, dtype=np.float64)
                state = self.infer_node_forward(feat_nd.reshape(1, -1), child_states)
                memo[node] = state
                return state

            h_nd, _ = visit_nd(root)
            return Tensor._wrap(h_nd)

        def visit(node) -> tuple[Tensor, Tensor]:
            if node in memo:
                return memo[node]
            child_states = [visit(c) for c in children.get(node, [])]
            feat = features[node]
            if not isinstance(feat, Tensor):
                feat = Tensor(np.asarray(feat, dtype=np.float64).reshape(1, -1))
            state = self.node_forward(feat, child_states)
            memo[node] = state
            return state

        h, _ = visit(root)
        return h
