"""``repro.nn`` — a small numpy autograd + neural network framework.

Substitutes for PyTorch in this reproduction (no deep-learning framework
is available offline).  Provides reverse-mode autodiff tensors, standard
layers, multi-head attention, transformer encoder/decoder stacks, LSTMs
and the child-sum Tree-LSTM, optimizers and loss functions.
"""

from . import functional, kernels
from .attention import KVCache, MultiHeadAttention, causal_mask
from .kernels import ScratchArena
from .layers import MLP, Dropout, Embedding, LayerNorm, Linear, Module, ModuleList, Parameter, Sequential
from .losses import cross_entropy, kl_divergence, mse_loss, q_error, q_error_loss
from .lstm import LSTM, ChildSumTreeLSTM, LSTMCell
from .optim import SGD, Adam, clip_grad_norm
from .positional import TreePosition, sinusoidal_encoding, tree_path_encoding
from .serialize import load_module, save_module
from .spec import shape_spec
from .tensor import Tensor, fastpath_enabled, force_tape, is_grad_enabled, no_grad, no_tape_active
from .transformer import TransformerDecoder, TransformerDecoderLayer, TransformerEncoder, TransformerEncoderLayer

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "fastpath_enabled",
    "no_tape_active",
    "force_tape",
    "functional",
    "kernels",
    "KVCache",
    "ScratchArena",
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "Sequential",
    "MLP",
    "MultiHeadAttention",
    "causal_mask",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "TransformerDecoder",
    "TransformerDecoderLayer",
    "LSTM",
    "LSTMCell",
    "ChildSumTreeLSTM",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "q_error",
    "q_error_loss",
    "cross_entropy",
    "kl_divergence",
    "mse_loss",
    "sinusoidal_encoding",
    "tree_path_encoding",
    "TreePosition",
    "save_module",
    "load_module",
    "shape_spec",
]
