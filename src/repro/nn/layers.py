"""Neural-network layers built on the autograd :class:`Tensor`.

Provides the ``Module`` base class (parameter registration, train/eval
mode, state dicts) and the standard layers used by MTMLF-QO: ``Linear``,
``LayerNorm``, ``Embedding``, ``Dropout``, ``Sequential`` and ``MLP``.
"""

from __future__ import annotations

import numpy as np

from . import kernels
from .spec import shape_spec
from .tensor import Tensor, is_grad_enabled, no_tape_active

__all__ = ["Module", "Parameter", "Linear", "LayerNorm", "Embedding", "Dropout", "Sequential", "MLP", "ModuleList"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable parameter."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with recursive parameter discovery and (de)serialization."""

    def __init__(self):
        self.training = True

    # -- parameter traversal -------------------------------------------------
    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        found: list[tuple[str, Parameter]] = []
        for key, value in vars(self).items():
            path = f"{prefix}{key}"
            if isinstance(value, Parameter):
                found.append((path, value))
            elif isinstance(value, Module):
                found.extend(value.named_parameters(prefix=path + "."))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        found.append((f"{path}.{i}", item))
                    elif isinstance(item, Module):
                        found.extend(item.named_parameters(prefix=f"{path}.{i}."))
            elif isinstance(value, dict):
                # Sorted so parameter order (and thus state-dict layout and
                # optimizer alignment) never depends on insertion order.
                for sub_key, item in sorted(value.items(), key=lambda kv: str(kv[0])):
                    if isinstance(item, Parameter):
                        found.append((f"{path}.{sub_key}", item))
                    elif isinstance(item, Module):
                        found.extend(item.named_parameters(prefix=f"{path}.{sub_key}."))
        return found

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # -- train / eval mode ----------------------------------------------------
    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        item._set_mode(training)

    # -- serialization ----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class ModuleList(Module):
    """A list of sub-modules whose parameters are tracked."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self.items = list(modules or [])

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]


def xavier_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = shape[0], shape[-1]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


class Linear(Module):
    """Affine layer ``y = x W + b`` supporting arbitrary leading dims."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    @shape_spec(inputs={"x": "(..., in_features)"},
                out="(..., out_features)",
                params=("weight", "bias"))
    def forward(self, x: Tensor) -> Tensor:
        if no_tape_active():
            return Tensor._wrap(self.infer_forward(x.data))
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    @shape_spec(inputs={"x": "(..., in_features)"},
                out="(..., out_features)",
                params=("weight", "bias"))
    def infer_forward(self, x: np.ndarray, scratch=None, tag: str = "") -> np.ndarray:
        """No-tape kernel: bit-identical to the tape forward."""
        bias = self.bias.data if self.bias is not None else None
        return kernels.linear(x, self.weight.data, bias, scratch=scratch, tag=tag)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    @shape_spec(inputs={"x": "(..., dim)"},
                out="(..., dim)",
                params=("gamma", "beta"))
    def forward(self, x: Tensor) -> Tensor:
        if no_tape_active():
            return Tensor._wrap(self.infer_forward(x.data))
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (var + self.eps) ** -0.5
        return normed * self.gamma + self.beta

    @shape_spec(inputs={"x": "(..., dim)"},
                out="(..., dim)",
                params=("gamma", "beta"))
    def infer_forward(self, x: np.ndarray) -> np.ndarray:
        """No-tape kernel: bit-identical to the tape forward."""
        return kernels.layer_norm(x, self.gamma.data, self.beta.data, self.eps, self.dim)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, dim)))

    @shape_spec(inputs={"indices": "(B, L)"},
                out="(B, L, dim)",
                params=("weight",),
                dtypes={"indices": "int64"})
    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.min(initial=0) < 0 or (indices.size and indices.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        if no_tape_active():
            return Tensor._wrap(self.weight.data[indices])
        return self.weight[indices]


class Dropout(Module):
    """Inverted dropout; identity when the module is in eval mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    @shape_spec(inputs={"x": "(...,)"}, out="(...,)")
    def forward(self, x: Tensor) -> Tensor:
        # Inference-mode dropout is a *true* no-op on both paths: the
        # input object passes through untouched — no pass-through tensor
        # on the tape, no copy on the fast path (tests assert identity).
        if not self.training or self.p == 0.0 or not is_grad_enabled():
            return x
        keep = 1.0 - self.p
        mask = self.rng.random(x.shape) < keep
        return x * Tensor(mask.astype(np.float64) / keep)


class Sequential(Module):
    """Apply sub-modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.steps = ModuleList(list(modules))

    def forward(self, x: Tensor) -> Tensor:
        for module in self.steps:
            x = module(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between layers.

    Used for the paper's task heads ``M_CardEst`` and ``M_CostEst``
    (two-layer MLPs in the case study).
    """

    def __init__(self, dims: list[int], rng: np.random.Generator | None = None, dropout: float = 0.0):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        rng = rng or np.random.default_rng(0)
        self.layers = ModuleList([Linear(a, b, rng=rng) for a, b in zip(dims[:-1], dims[1:])])
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None

    @shape_spec(inputs={"x": "(..., d_in)"},
                out="(..., d_out)",
                params=("layers",))
    def forward(self, x: Tensor) -> Tensor:
        if no_tape_active():
            return Tensor._wrap(self.infer_forward(x.data))
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = x.relu()
                if self.dropout is not None:
                    x = self.dropout(x)
        return x

    @shape_spec(inputs={"x": "(..., d_in)"},
                out="(..., d_out)",
                params=("layers",))
    def infer_forward(self, x: np.ndarray) -> np.ndarray:
        """No-tape kernel: the whole MLP in raw ndarray ops.

        Dropout is skipped outright — it is an identity in inference
        mode on the tape path too.
        """
        for i, layer in enumerate(self.layers):
            x = layer.infer_forward(x)
            if i < len(self.layers) - 1:
                x = kernels.relu(x)
        return x
