"""Positional encodings: sinusoidal sequence positions and tree positions.

The paper serializes tree-structured query plans into sequences using
"the transformers' tree positional embedding techniques" (Shiv & Quirk,
NeurIPS 2019).  ``tree_positional_encoding`` implements that scheme: the
position of a node is the sequence of left/right branch decisions on the
path from the root, encoded as interleaved one-hot pairs and truncated or
zero-padded to a fixed dimension.
"""

from __future__ import annotations

import numpy as np

from .spec import shape_spec

__all__ = ["sinusoidal_encoding", "tree_path_encoding", "TreePosition"]

# Decode workloads re-encode the same shallow tree paths for every
# candidate and every beam step; the vectors are tiny, pure functions of
# (path, dim, max_depth), and read-only downstream, so memoize them.
# Entries are marked non-writable so no consumer can corrupt the cache.
_TREE_PATH_CACHE: dict[tuple, np.ndarray] = {}
_TREE_PATH_CACHE_MAX = 4096


@shape_spec(out="(length, dim)")
def sinusoidal_encoding(length: int, dim: int) -> np.ndarray:
    """Classic transformer sin/cos positional encoding of shape (length, dim)."""
    if dim % 2 != 0:
        raise ValueError("sinusoidal encoding dim must be even")
    positions = np.arange(length)[:, None]
    freqs = np.exp(-np.log(10000.0) * np.arange(0, dim, 2) / dim)[None, :]
    enc = np.zeros((length, dim), dtype=np.float64)
    enc[:, 0::2] = np.sin(positions * freqs)
    enc[:, 1::2] = np.cos(positions * freqs)
    return enc


class TreePosition:
    """Path from the root of a binary tree: a tuple of 0 (left) / 1 (right)."""

    __slots__ = ("path",)

    def __init__(self, path: tuple[int, ...] = ()):
        if any(step not in (0, 1) for step in path):
            raise ValueError("tree path steps must be 0 (left) or 1 (right)")
        self.path = tuple(path)

    def left(self) -> "TreePosition":
        return TreePosition(self.path + (0,))

    def right(self) -> "TreePosition":
        return TreePosition(self.path + (1,))

    @property
    def depth(self) -> int:
        return len(self.path)

    def __eq__(self, other) -> bool:
        return isinstance(other, TreePosition) and self.path == other.path

    def __hash__(self) -> int:
        return hash(self.path)

    def __repr__(self) -> str:
        return f"TreePosition({self.path})"


@shape_spec(out="(dim,)")
def tree_path_encoding(position: TreePosition, dim: int, max_depth: int | None = None) -> np.ndarray:
    """Encode a tree position as a fixed-width vector (Shiv & Quirk style).

    Each branch decision on the root-to-node path contributes a 2-wide
    one-hot block ``[1, 0]`` (left) or ``[0, 1]`` (right), most recent
    decision first; the result is zero-padded / truncated to ``dim``.
    The root is the all-zeros vector.
    """
    if dim % 2 != 0:
        raise ValueError("tree positional encoding dim must be even")
    key = (position.path, dim, max_depth)
    cached = _TREE_PATH_CACHE.get(key)
    if cached is not None:
        return cached
    max_depth = max_depth if max_depth is not None else dim // 2
    out = np.zeros(dim, dtype=np.float64)
    # Most recent decisions carry the most signal: reverse the path.
    for slot, step in enumerate(reversed(position.path[:max_depth])):
        offset = 2 * slot
        if offset + 1 >= dim:
            break
        out[offset + step] = 1.0
    # Decaying scale keeps deep-path encodings bounded.
    depth_scale = 1.0 / np.sqrt(1.0 + position.depth)
    out = out * depth_scale
    out.setflags(write=False)
    if len(_TREE_PATH_CACHE) >= _TREE_PATH_CACHE_MAX:
        _TREE_PATH_CACHE.clear()
    _TREE_PATH_CACHE[key] = out
    return out
