"""Multi-head scaled dot-product attention.

Supports optional boolean masks (True = position masked out), which the
MTMLF-QO model uses both for padding in batched plan sequences and for
the causal mask inside the ``Trans_JO`` decoder.
"""

from __future__ import annotations

import numpy as np

from .functional import masked_fill, softmax
from .layers import Dropout, Linear, Module
from .tensor import Tensor

__all__ = ["MultiHeadAttention", "causal_mask"]


def causal_mask(length: int) -> np.ndarray:
    """Boolean (length, length) mask forbidding attention to the future."""
    return np.triu(np.ones((length, length), dtype=bool), k=1)


class MultiHeadAttention(Module):
    """Multi-head attention ``Attn(Q, K, V)`` over (batch, seq, dim) tensors.

    Parameters
    ----------
    dim:
        Model dimension; must be divisible by ``num_heads``.
    num_heads:
        Number of attention heads (the paper uses 4).
    """

    def __init__(self, dim: int, num_heads: int, dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose((0, 2, 1, 3))

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, seq, head_dim = x.shape
        return x.transpose((0, 2, 1, 3)).reshape(batch, seq, heads * head_dim)

    def forward(
        self,
        query: Tensor,
        key: Tensor | None = None,
        value: Tensor | None = None,
        attn_mask: np.ndarray | None = None,
        key_padding_mask: np.ndarray | None = None,
    ) -> Tensor:
        """Attend ``query`` over ``key``/``value`` (self-attention if omitted).

        ``attn_mask`` is (Lq, Lk) boolean; ``key_padding_mask`` is
        (batch, Lk) boolean.  True entries are excluded from attention.
        """
        key = query if key is None else key
        value = key if value is None else value

        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(key))
        v = self._split_heads(self.v_proj(value))

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = q.matmul(k.swapaxes(-1, -2)) * scale  # (B, H, Lq, Lk)

        mask = None
        if attn_mask is not None:
            mask = np.asarray(attn_mask, dtype=bool)[None, None, :, :]
        if key_padding_mask is not None:
            pad = np.asarray(key_padding_mask, dtype=bool)[:, None, None, :]
            mask = pad if mask is None else (mask | pad)
        if mask is not None:
            mask = np.broadcast_to(mask, scores.shape)
            # Guard against fully-masked rows which would produce NaNs.
            all_masked = mask.all(axis=-1, keepdims=True)
            mask = mask & ~all_masked
            scores = masked_fill(scores, mask, -1e9)

        weights = softmax(scores, axis=-1)
        weights = self.dropout(weights)
        attended = weights.matmul(v)
        return self.out_proj(self._merge_heads(attended))
