"""Multi-head scaled dot-product attention.

Supports optional boolean masks (True = position masked out), which the
MTMLF-QO model uses both for padding in batched plan sequences and for
the causal mask inside the ``Trans_JO`` decoder.

Dual-mode: :meth:`MultiHeadAttention.forward` runs the tape path;
:meth:`MultiHeadAttention.infer_forward` is the raw-ndarray mirror used
when no tape is recorded.  Cross-attention over a *static* key/value
source (the decoder reading a fixed encoder memory) can skip its K/V
projections entirely by passing precomputed ``static_kv`` — see
:class:`KVCache`, which owns those projections for one decode.
"""

from __future__ import annotations

import numpy as np

from . import kernels
from .functional import masked_fill, softmax
from .layers import Dropout, Linear, Module
from .spec import shape_spec
from .tensor import Tensor, no_tape_active

__all__ = ["MultiHeadAttention", "causal_mask", "KVCache"]

# Causal masks depend only on the length; they are tiny, read-only and
# requested once per decoder layer per step, so memoize them.  Entries
# are marked non-writable — every consumer only reads.
_CAUSAL_MASK_CACHE: dict[int, np.ndarray] = {}
_CAUSAL_MASK_CACHE_MAX = 512


@shape_spec(out="(L, L)", dtypes={"out": "bool"})
def causal_mask(length: int) -> np.ndarray:
    """Boolean (length, length) mask forbidding attention to the future."""
    mask = _CAUSAL_MASK_CACHE.get(length)
    if mask is None:
        mask = np.triu(np.ones((length, length), dtype=bool), k=1)
        mask.setflags(write=False)
        if len(_CAUSAL_MASK_CACHE) >= _CAUSAL_MASK_CACHE_MAX:
            _CAUSAL_MASK_CACHE.clear()
        _CAUSAL_MASK_CACHE[length] = mask
    return mask


# The broadcast + fully-masked-row guard of a pure causal mask is itself
# a pure function of (length, scores shape), recomputed by every decoder
# self-attention call; memoize it (read-only) alongside the raw masks.
_GUARDED_CAUSAL_CACHE: dict[tuple, np.ndarray] = {}


def _guarded_causal_mask(length: int, scores_shape: tuple) -> np.ndarray:
    key = (length, scores_shape)
    mask = _GUARDED_CAUSAL_CACHE.get(key)
    if mask is None:
        mask = MultiHeadAttention._combined_mask(causal_mask(length), None, scores_shape)
        mask.setflags(write=False)
        if len(_GUARDED_CAUSAL_CACHE) >= _CAUSAL_MASK_CACHE_MAX:
            _GUARDED_CAUSAL_CACHE.clear()
        _GUARDED_CAUSAL_CACHE[key] = mask
    return mask


class KVCache:
    """Projected-K/V cache for one decode over one encoder memory.

    A decode (one beam search, or one lockstep batch of searches) reads
    the same encoder memory at every decoder step; projecting its K/V
    once and reusing the result across steps removes the dominant
    per-step matmuls.  The cache is **bound to the memory object it was
    created for** and refuses to serve any other — so a cache can never
    outlive its decode and feed stale projections to a different model
    or a hot-swapped replica.  Create one per decode, drop it with the
    decode; never store one on a module or at module scope (the
    ``scratch-privacy`` checker rejects that).
    """

    __slots__ = ("_memory", "_entries")

    def __init__(self, memory):
        self._memory = memory
        self._entries: dict = {}

    def bound_to(self, memory) -> bool:
        """True iff this cache was created for exactly ``memory``."""
        return memory is self._memory

    def get_or_project(self, tag, project):
        """Return the cached entry for ``tag``, computing it on a miss."""
        entry = self._entries.get(tag)
        if entry is None:
            entry = project()
            self._entries[tag] = entry
        return entry

    def invalidate(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class MultiHeadAttention(Module):
    """Multi-head attention ``Attn(Q, K, V)`` over (batch, seq, dim) tensors.

    Parameters
    ----------
    dim:
        Model dimension; must be divisible by ``num_heads``.
    num_heads:
        Number of attention heads (the paper uses 4).
    """

    def __init__(self, dim: int, num_heads: int, dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        # Same value both paths compute per call; hoisted because a
        # np.sqrt call per attention forward is measurable at decode.
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    @shape_spec(inputs={"x": "(B, L, dim)"},
                out="(B, num_heads, L, head_dim)")
    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose((0, 2, 1, 3))

    @shape_spec(inputs={"x": "(B, num_heads, L, head_dim)"},
                out="(B, L, num_heads*head_dim)")
    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, seq, head_dim = x.shape
        return x.transpose((0, 2, 1, 3)).reshape(batch, seq, heads * head_dim)

    @staticmethod
    def _combined_mask(
        attn_mask: np.ndarray | None,
        key_padding_mask: np.ndarray | None,
        scores_shape: tuple,
    ) -> np.ndarray | None:
        """Broadcast/merge the masks, guarding fully-masked rows (shared
        by both paths so the float behaviour is identical)."""
        mask = None
        if attn_mask is not None:
            mask = np.asarray(attn_mask, dtype=bool)[None, None, :, :]
        if key_padding_mask is not None:
            pad = np.asarray(key_padding_mask, dtype=bool)[:, None, None, :]
            mask = pad if mask is None else (mask | pad)
        if mask is None:
            return None
        mask = np.broadcast_to(mask, scores_shape)
        # Guard against fully-masked rows which would produce NaNs.
        all_masked = mask.all(axis=-1, keepdims=True)
        return mask & ~all_masked

    @shape_spec(inputs={"query": "(B, L_q, dim)",
                        "key": "(B, L_k, dim)",
                        "value": "(B, L_k, dim)"},
                out="(B, L_q, dim)",
                params=("q_proj", "k_proj", "v_proj", "out_proj"))
    def forward(
        self,
        query: Tensor,
        key: Tensor | None = None,
        value: Tensor | None = None,
        attn_mask: np.ndarray | None = None,
        key_padding_mask: np.ndarray | None = None,
    ) -> Tensor:
        """Attend ``query`` over ``key``/``value`` (self-attention if omitted).

        ``attn_mask`` is (Lq, Lk) boolean; ``key_padding_mask`` is
        (batch, Lk) boolean.  True entries are excluded from attention.
        """
        if no_tape_active():
            key_nd = None if key is None else key.data
            value_nd = None if value is None else value.data
            return Tensor._wrap(
                self.infer_forward(
                    query.data,
                    key_nd,
                    value_nd,
                    attn_mask=attn_mask,
                    key_padding_mask=key_padding_mask,
                )
            )
        key = query if key is None else key
        value = key if value is None else value

        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(key))
        v = self._split_heads(self.v_proj(value))

        scores = q.matmul(k.swapaxes(-1, -2)) * self.scale  # (B, H, Lq, Lk)

        mask = self._combined_mask(attn_mask, key_padding_mask, scores.shape)
        if mask is not None:
            scores = masked_fill(scores, mask, -1e9)

        weights = softmax(scores, axis=-1)
        weights = self.dropout(weights)
        attended = weights.matmul(v)
        return self.out_proj(self._merge_heads(attended))

    # ------------------------------------------------------------------
    # No-tape fast path
    # ------------------------------------------------------------------
    @shape_spec(inputs={"x": "(B, L, dim)"},
                out="(B, num_heads, L, head_dim)")
    def _split_heads_nd(self, x: np.ndarray) -> np.ndarray:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    @shape_spec(inputs={"key": "(B, L_k, dim)"},
                out=("(B, L_k, num_heads, head_dim)",
                     "(B, L_k, num_heads, head_dim)"),
                params=("k_proj", "v_proj"))
    def infer_project_kv(self, key: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split-head K/V projections of a static key/value source.

        This is the entry :class:`KVCache` memoizes: for cross-attention
        over an unchanging encoder memory, the returned pair is valid
        for every decoder step of the decode.

        Layout: ``(batch, Lk, heads, head_dim)`` — the *pre-transpose*
        head split, not the ``(batch, heads, Lk, head_dim)`` the scores
        matmul consumes.  :meth:`infer_forward` applies the same
        transpose-view the inline projection uses, so the cached and
        inline operands have identical strides and BLAS produces
        bit-identical scores.  (A C-contiguous copy of the transposed
        layout holds the same values but can round differently.)  It
        also lets callers concatenate cached projections along axis 0
        without disturbing the layout.
        """
        batch, seq, _ = key.shape
        k = self.k_proj.infer_forward(key).reshape(batch, seq, self.num_heads, self.head_dim)
        v = self.v_proj.infer_forward(key).reshape(batch, seq, self.num_heads, self.head_dim)
        return k, v

    @shape_spec(inputs={"query": "(B, L_q, dim)",
                        "key": "(B, L_k, dim)",
                        "value": "(B, L_k, dim)",
                        "static_kv": ("(B, L_k, num_heads, head_dim)",
                                      "(B, L_k, num_heads, head_dim)")},
                out="(B, L_q, dim)",
                params=("q_proj", "k_proj", "v_proj", "out_proj"))
    def infer_forward(
        self,
        query: np.ndarray,
        key: np.ndarray | None = None,
        value: np.ndarray | None = None,
        attn_mask: np.ndarray | None = None,
        key_padding_mask: np.ndarray | None = None,
        static_kv: tuple[np.ndarray, np.ndarray] | None = None,
        scratch=None,
        tag: str = "",
    ) -> np.ndarray:
        """Raw-ndarray mirror of :meth:`forward` (dropout is identity).

        ``static_kv`` supplies precomputed split-head K/V (from
        :meth:`infer_project_kv`, usually via a :class:`KVCache`),
        skipping the K/V projections; callers must pass projections of
        the same key/value source they would otherwise pass as arrays.
        """
        if static_kv is not None:
            k_raw, v_raw = static_kv  # (B, Lk, H, hd): see infer_project_kv
            k = k_raw.transpose(0, 2, 1, 3)
            v = v_raw.transpose(0, 2, 1, 3)
        else:
            key = query if key is None else key
            value = key if value is None else value
            k = self._split_heads_nd(kernels.linear(key, self.k_proj.weight.data, self.k_proj.bias.data))
            v = self._split_heads_nd(kernels.linear(value, self.v_proj.weight.data, self.v_proj.bias.data))
        q = self._split_heads_nd(
            kernels.linear(query, self.q_proj.weight.data, self.q_proj.bias.data, scratch=scratch, tag=tag + ".q")
        )

        scores = kernels.matmul(q, k.swapaxes(-1, -2), scratch=scratch, tag=tag + ".scores")
        np.multiply(scores, self.scale, out=scores)  # same bits, no fresh array

        if (
            key_padding_mask is None
            and attn_mask is not None
            and attn_mask is _CAUSAL_MASK_CACHE.get(attn_mask.shape[0])
        ):
            # Decoder self-attention hot path: the guarded broadcast of a
            # memoized causal mask is itself memoized (same bits, built
            # by the same _combined_mask).
            mask = _guarded_causal_mask(attn_mask.shape[0], scores.shape)
        else:
            mask = self._combined_mask(attn_mask, key_padding_mask, scores.shape)
        if mask is not None:
            scores = kernels.masked_fill(scores, mask, -1e9)

        weights = kernels.softmax(scores, axis=-1)
        attended = kernels.matmul(weights, v, scratch=scratch, tag=tag + ".attended")
        merged = attended.transpose(0, 2, 1, 3).reshape(query.shape[0], query.shape[1], self.dim)
        return kernels.linear(merged, self.out_proj.weight.data, self.out_proj.bias.data)
