"""Raw-ndarray inference kernels for the no-tape fast path.

Every function here mirrors, float-op for float-op, what the tape path
in :mod:`repro.nn.tensor` / :mod:`repro.nn.functional` computes — same
numpy calls, same order, same intermediate layouts — so the fast path
is bit-identical to the tape path by construction.  (For example,
``layer_norm`` divides via ``sum * (1.0 / dim)`` because that is what
``Tensor.mean`` does; a plain ``np.mean`` could differ in the last ulp.)

Kernels are only legal to call when no tape is being recorded (see
``nn.tensor.no_tape_active``); the static ``grad-mode`` checker enforces
this for every ``kernels.*`` / ``infer_*`` call site in ``src/repro``.

Two cross-cutting facilities live here as well:

- :class:`ScratchArena` — a shape-keyed pool of reusable output buffers.
  Decode workloads repeat the same shapes across beam steps and queries,
  so hot matmuls write into preallocated arrays instead of allocating.
  Arenas must be **session-private** (one per ``InferenceSession``,
  created per replica); the ``scratch-privacy`` hygiene checker rejects
  module-level instances.  A buffer handed out for a ``(tag, shape)``
  pair is overwritten the next time the same call site runs, so kernel
  outputs must be consumed (or copied) before the next decode step —
  which the beam driver does by construction.

- :func:`profiled` — per-op call/time/alloc counters for the
  ``--profile`` flag of ``bench_batched_decode.py``.  Costs one module
  global integer check per kernel call when inactive.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

import numpy as np

from .spec import shape_spec

__all__ = [
    "ScratchArena",
    "KernelProfile",
    "profiled",
    "matmul",
    "linear",
    "layer_norm",
    "relu",
    "sigmoid",
    "softmax",
    "log_softmax",
    "masked_fill",
]


# ---------------------------------------------------------------------------
# Scratch buffers
# ---------------------------------------------------------------------------
class ScratchArena:
    """Shape-keyed pool of reusable float64 output buffers.

    ``take(tag, shape)`` returns the same C-contiguous array every time
    a call site (identified by ``tag``) asks for the same shape, so
    repeated decode steps reuse their allocations.  Distinct call sites
    use distinct tags, which is what makes intra-forward aliasing
    impossible: no two live intermediates ever share a buffer.

    Not thread-safe by itself — an arena belongs to one
    ``InferenceSession``, whose calls are serialized by the model's
    inference lock.
    """

    __slots__ = ("_buffers", "max_buffers")

    def __init__(self, max_buffers: int = 4096):
        self._buffers: dict[tuple, np.ndarray] = {}
        self.max_buffers = max_buffers

    def take(self, tag: str, shape: tuple) -> np.ndarray:
        key = (tag, shape)
        buf = self._buffers.get(key)
        if buf is None:
            if len(self._buffers) >= self.max_buffers:
                self._buffers.clear()  # shapes drifted; start over
            buf = np.empty(shape, dtype=np.float64)
            self._buffers[key] = buf
        return buf

    def clear(self) -> None:
        self._buffers.clear()

    def __len__(self) -> int:
        return len(self._buffers)


# ---------------------------------------------------------------------------
# Profiling counters
# ---------------------------------------------------------------------------
_PROFILE = threading.local()
# Cheap global gate: when no profiled() block is active anywhere in the
# process, kernels skip even the thread-local lookup (a plain module
# global is markedly cheaper per call than threading.local getattr).
_PROFILE_DEPTH = 0


class KernelProfile:
    """Accumulated per-op counters: calls, seconds, bytes written."""

    def __init__(self):
        self.ops: dict[str, list] = {}  # name -> [calls, seconds, nbytes]

    def record(self, name: str, seconds: float, nbytes: int) -> None:
        entry = self.ops.get(name)
        if entry is None:
            self.ops[name] = [1, seconds, nbytes]
        else:
            entry[0] += 1
            entry[1] += seconds
            entry[2] += nbytes

    def as_dict(self) -> dict:
        return {
            name: {"calls": calls, "seconds": seconds, "bytes": nbytes}
            for name, (calls, seconds, nbytes) in sorted(
                self.ops.items(), key=lambda kv: -kv[1][1]
            )
        }

    def table(self) -> str:
        lines = [f"{'op':<18}{'calls':>8}{'time_ms':>10}{'MB':>9}"]
        for name, stats in self.as_dict().items():
            lines.append(
                f"{name:<18}{stats['calls']:>8}"
                f"{1000 * stats['seconds']:>10.2f}"
                f"{stats['bytes'] / 1e6:>9.2f}"
            )
        return "\n".join(lines)

    def record_into(self, registry, labels=None) -> None:
        """Export accumulated counters into a metrics registry.

        One ``kernel.calls`` / ``kernel.seconds`` / ``kernel.bytes``
        counter per op, labeled ``{"op": name}`` (plus any caller
        labels), so profiles from repeated ``profiled()`` blocks
        accumulate instead of overwriting each other.
        """
        base = dict(labels or {})
        for name, (calls, seconds, nbytes) in self.ops.items():
            op_labels = {**base, "op": name}
            registry.counter("kernel.calls", op_labels).inc(calls)
            registry.counter("kernel.seconds", op_labels).inc(seconds)
            registry.counter("kernel.bytes", op_labels).inc(nbytes)


@contextmanager
def profiled():
    """Collect per-op kernel counters for the duration of the block."""
    global _PROFILE_DEPTH
    profile = KernelProfile()
    previous = getattr(_PROFILE, "active", None)
    _PROFILE.active = profile
    _PROFILE_DEPTH += 1
    try:
        yield profile
    finally:
        _PROFILE_DEPTH -= 1
        _PROFILE.active = previous


def _note(name: str, t0: float, nbytes: int) -> None:
    profile = getattr(_PROFILE, "active", None)
    if profile is not None:
        profile.record(name, time.perf_counter() - t0, nbytes)


# ---------------------------------------------------------------------------
# Kernels (all bit-identical mirrors of the tape ops)
#
# Each kernel checks the module-global ``_PROFILE_DEPTH`` inline and only
# touches the timing helpers when a profiled() block is active: decode
# workloads make thousands of kernel calls per run on small operands, so
# even two extra function calls per kernel are measurable.
# ---------------------------------------------------------------------------
@shape_spec(inputs={"a": "(..., M, K)", "b": "(..., K, N)"}, out="(..., M, N)")
def matmul(a: np.ndarray, b: np.ndarray, scratch: ScratchArena | None = None, tag: str = "") -> np.ndarray:
    """``a @ b`` with an optional preallocated output buffer."""
    t0 = time.perf_counter() if _PROFILE_DEPTH else 0.0
    if scratch is not None:
        out = scratch.take(tag, a.shape[:-1] + b.shape[-1:])
        np.matmul(a, b, out=out)
    else:
        out = a @ b
    if _PROFILE_DEPTH:
        _note("matmul", t0, out.nbytes)
    return out


@shape_spec(inputs={"x": "(..., d_in)", "weight": "(d_in, d_out)", "bias": "(d_out,)"},
            out="(..., d_out)")
def linear(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    scratch: ScratchArena | None = None,
    tag: str = "",
) -> np.ndarray:
    """Affine map mirroring ``Linear.forward``: ``x @ W`` then ``+ b``."""
    t0 = time.perf_counter() if _PROFILE_DEPTH else 0.0
    if scratch is not None:
        out = scratch.take(tag, x.shape[:-1] + weight.shape[-1:])
        np.matmul(x, weight, out=out)
        if bias is not None:
            np.add(out, bias, out=out)
    else:
        out = x @ weight
        if bias is not None:
            out = out + bias
    if _PROFILE_DEPTH:
        _note("linear", t0, out.nbytes)
    return out


@shape_spec(inputs={"x": "(..., dim)", "gamma": "(dim,)", "beta": "(dim,)"},
            out="(..., dim)")
def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float, dim: int) -> np.ndarray:
    """Mirror of ``LayerNorm.forward`` (note ``sum * (1/dim)``, as
    ``Tensor.mean`` computes it, not ``np.mean``)."""
    t0 = time.perf_counter() if _PROFILE_DEPTH else 0.0
    inv = 1.0 / dim
    mean = x.sum(axis=-1, keepdims=True) * inv
    centered = x - mean
    var = (centered * centered).sum(axis=-1, keepdims=True) * inv
    # Same ufuncs as the tape path, applied in place on the fresh
    # intermediates (an out= ufunc call computes identical bits; it only
    # skips the output allocation).
    np.add(var, eps, out=var)
    np.power(var, -0.5, out=var)
    np.multiply(centered, var, out=centered)
    np.multiply(centered, gamma, out=centered)
    out = np.add(centered, beta, out=centered)
    if _PROFILE_DEPTH:
        _note("layer_norm", t0, out.nbytes)
    return out


@shape_spec(inputs={"x": "(...,)"}, out="(...,)")
def relu(x: np.ndarray) -> np.ndarray:
    """Mirror of ``Tensor.relu``: ``x * (x > 0)``."""
    t0 = time.perf_counter() if _PROFILE_DEPTH else 0.0
    out = x * (x > 0)
    if _PROFILE_DEPTH:
        _note("relu", t0, out.nbytes)
    return out


@shape_spec(inputs={"x": "(...,)"}, out="(...,)")
def sigmoid(x: np.ndarray) -> np.ndarray:
    """Mirror of ``Tensor.sigmoid``: ``1 / (1 + exp(-x))``."""
    t0 = time.perf_counter() if _PROFILE_DEPTH else 0.0
    out = 1.0 / (1.0 + np.exp(-x))
    if _PROFILE_DEPTH:
        _note("sigmoid", t0, out.nbytes)
    return out


@shape_spec(inputs={"x": "(...,)"}, out="(...,)")
def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Mirror of ``functional.softmax`` (shift, exp, normalize)."""
    t0 = time.perf_counter() if _PROFILE_DEPTH else 0.0
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted, out=shifted)  # in place on the fresh copy
    out = np.divide(exps, exps.sum(axis=axis, keepdims=True), out=exps)
    if _PROFILE_DEPTH:
        _note("softmax", t0, out.nbytes)
    return out


@shape_spec(inputs={"x": "(...,)"}, out="(...,)")
def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Mirror of ``functional.log_softmax`` (shift, log-sum-exp)."""
    t0 = time.perf_counter() if _PROFILE_DEPTH else 0.0
    shifted = x - x.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - logsumexp
    if _PROFILE_DEPTH:
        _note("log_softmax", t0, out.nbytes)
    return out


@shape_spec(inputs={"x": "(...,)", "mask": "(...,)"}, out="(...,)",
            dtypes={"mask": "bool"})
def masked_fill(x: np.ndarray, mask: np.ndarray, value: float) -> np.ndarray:
    """Mirror of ``functional.masked_fill``."""
    t0 = time.perf_counter() if _PROFILE_DEPTH else 0.0
    out = np.where(mask, value, x)
    if _PROFILE_DEPTH:
        _note("masked_fill", t0, out.nbytes)
    return out
