"""Optimizers (SGD, Adam) and gradient utilities.

The paper trains MTMLF-QO with Adam at learning rate 1e-4; the same
optimizer (with the standard bias-corrected moments of Kingma & Ba) is
provided here, plus global-norm gradient clipping used to stabilise the
small-batch CPU training runs in this reproduction.
"""

from __future__ import annotations

import numpy as np

from .layers import Parameter

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is <= max_norm.

    Returns the pre-clip norm.
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float((grad * grad).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm


class Optimizer:
    """Base optimizer holding a parameter list.

    Accepts either bare parameters or ``(name, parameter)`` pairs (as
    produced by :meth:`Module.named_parameters`).  Names make optimizer
    state *portable*: state dicts are keyed by parameter name instead of
    list position, so a warm start restores each moment to the right
    parameter even when the surrounding parameter set changed — and a
    genuine mismatch fails loudly instead of silently misaligning.
    """

    def __init__(self, parameters):
        entries = list(parameters)
        names: list[str] = []
        params: list[Parameter] = []
        for entry in entries:
            if isinstance(entry, tuple):
                name, param = entry
                names.append(str(name))
                params.append(param)
            else:
                params.append(entry)
        if names and len(names) != len(params):
            raise ValueError("mix of named and unnamed parameters")
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate parameter names: {duplicates}")
        self.parameters = params
        self.param_names: list[str] | None = names or None

    def _state_keys(self) -> list[str]:
        """Per-parameter state keys: names when given, positions otherwise."""
        if self.param_names is not None:
            return self.param_names
        return [str(i) for i in range(len(self.parameters))]

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2014) with bias correction."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    # -- warm-start state ---------------------------------------------------
    def state_dict(self) -> dict:
        """Moment estimates and step count, keyed by parameter name.

        Unnamed parameter lists fall back to positional string keys;
        either way :meth:`load_state_dict` refuses a key-set or shape
        mismatch rather than misaligning moments.
        """
        keys = self._state_keys()
        return {
            "t": self._t,
            "m": {key: m.copy() for key, m in zip(keys, self._m)},
            "v": {key: v.copy() for key, v in zip(keys, self._v)},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output; raises on any misalignment.

        A grown or shuffled parameter set (e.g. a featurizer attached
        after the state was saved) surfaces as missing/unexpected keys —
        never as moments silently applied to the wrong parameters.
        """
        keys = self._state_keys()
        saved = set(state["m"])
        if set(state["v"]) != saved:
            raise ValueError("corrupt optimizer state: m/v key sets differ")
        current = set(keys)
        if saved != current:
            missing = sorted(current - saved)
            unexpected = sorted(saved - current)
            raise ValueError(
                "optimizer state does not match the current parameter set "
                f"(missing={missing} unexpected={unexpected}); the model's "
                "parameters changed since the state was saved — rebuild the "
                "optimizer instead of warm-starting"
            )
        for key, param in zip(keys, self.parameters):
            for slot, name in ((state["m"], "m"), (state["v"], "v")):
                value = np.asarray(slot[key], dtype=np.float64)
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"optimizer state shape mismatch for {key!r} ({name}): "
                        f"{value.shape} vs parameter {param.data.shape}"
                    )
        self._m = [np.array(state["m"][key], dtype=np.float64) for key in keys]
        self._v = [np.array(state["v"][key], dtype=np.float64) for key in keys]
        self._t = int(state["t"])

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
