"""Optimizers (SGD, Adam) and gradient utilities.

The paper trains MTMLF-QO with Adam at learning rate 1e-4; the same
optimizer (with the standard bias-corrected moments of Kingma & Ba) is
provided here, plus global-norm gradient clipping used to stabilise the
small-batch CPU training runs in this reproduction.
"""

from __future__ import annotations

import numpy as np

from .layers import Parameter

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is <= max_norm.

    Returns the pre-clip norm.
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float((grad * grad).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: list[Parameter]):
        self.parameters = list(parameters)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2014) with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
