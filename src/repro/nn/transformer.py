"""Transformer encoder and decoder stacks.

These are the building blocks for the paper's three transformer
components: the per-table encoders ``Enc_i`` (F.ii), the shared
representation encoder ``Trans_Share`` (S), and the join-order decoder
``Trans_JO`` (T.iii).  The paper uses 3 blocks and 4 heads for each.
"""

from __future__ import annotations

import numpy as np

from . import kernels
from .attention import MultiHeadAttention, causal_mask
from .layers import Dropout, LayerNorm, Linear, Module, ModuleList
from .spec import shape_spec
from .tensor import Tensor, no_tape_active

__all__ = ["TransformerEncoderLayer", "TransformerEncoder", "TransformerDecoderLayer", "TransformerDecoder"]


class TransformerEncoderLayer(Module):
    """Pre-norm transformer encoder block (self-attention + FFN)."""

    def __init__(self, dim: int, num_heads: int, ff_dim: int | None = None, dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        ff_dim = ff_dim or 4 * dim
        self.attn = MultiHeadAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.ff1 = Linear(dim, ff_dim, rng=rng)
        self.ff2 = Linear(ff_dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    @shape_spec(inputs={"x": "(B, L, dim)"},
                out="(B, L, dim)",
                params=("attn", "norm1", "norm2", "ff1", "ff2"))
    def forward(self, x: Tensor, key_padding_mask: np.ndarray | None = None) -> Tensor:
        if no_tape_active():
            return Tensor._wrap(self.infer_forward(x.data, key_padding_mask=key_padding_mask))
        normed = self.norm1(x)
        x = x + self.dropout(self.attn(normed, key_padding_mask=key_padding_mask))
        normed = self.norm2(x)
        x = x + self.dropout(self.ff2(self.ff1(normed).relu()))
        return x

    @shape_spec(inputs={"x": "(B, L, dim)"},
                out="(B, L, dim)",
                params=("attn", "norm1", "norm2", "ff1", "ff2"))
    def infer_forward(
        self,
        x: np.ndarray,
        key_padding_mask: np.ndarray | None = None,
        scratch=None,
        tag: str = "",
    ) -> np.ndarray:
        """No-tape mirror of :meth:`forward` (dropout is identity)."""
        normed = self.norm1.infer_forward(x)
        x = x + self.attn.infer_forward(normed, key_padding_mask=key_padding_mask, scratch=scratch, tag=tag + ".attn")
        normed = self.norm2.infer_forward(x)
        hidden = kernels.relu(self.ff1.infer_forward(normed, scratch=scratch, tag=tag + ".ff1"))
        x = x + self.ff2.infer_forward(hidden)
        return x


class TransformerEncoder(Module):
    """Stack of encoder layers with a final LayerNorm."""

    def __init__(self, dim: int, num_heads: int, num_layers: int, ff_dim: int | None = None, dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.layers = ModuleList(
            [TransformerEncoderLayer(dim, num_heads, ff_dim=ff_dim, dropout=dropout, rng=rng) for _ in range(num_layers)]
        )
        self.final_norm = LayerNorm(dim)

    @shape_spec(inputs={"x": "(B, L, dim)"},
                out="(B, L, dim)",
                params=("layers", "final_norm"))
    def forward(self, x: Tensor, key_padding_mask: np.ndarray | None = None) -> Tensor:
        if no_tape_active():
            return Tensor._wrap(self.infer_forward(x.data, key_padding_mask=key_padding_mask))
        for layer in self.layers:
            x = layer(x, key_padding_mask=key_padding_mask)
        return self.final_norm(x)

    @shape_spec(inputs={"x": "(B, L, dim)"},
                out="(B, L, dim)",
                params=("layers", "final_norm"))
    def infer_forward(
        self,
        x: np.ndarray,
        key_padding_mask: np.ndarray | None = None,
        scratch=None,
        tag: str = "",
    ) -> np.ndarray:
        """No-tape mirror of :meth:`forward`."""
        for i, layer in enumerate(self.layers):
            x = layer.infer_forward(x, key_padding_mask=key_padding_mask, scratch=scratch, tag=f"{tag}.l{i}")
        return self.final_norm.infer_forward(x)


class TransformerDecoderLayer(Module):
    """Pre-norm decoder block: causal self-attention, cross-attention, FFN."""

    def __init__(self, dim: int, num_heads: int, ff_dim: int | None = None, dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        ff_dim = ff_dim or 4 * dim
        self.self_attn = MultiHeadAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.cross_attn = MultiHeadAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.norm3 = LayerNorm(dim)
        self.ff1 = Linear(dim, ff_dim, rng=rng)
        self.ff2 = Linear(ff_dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    @shape_spec(inputs={"x": "(B, L, dim)", "memory": "(B, L_m, dim)"},
                out="(B, L, dim)",
                params=("self_attn", "cross_attn", "norm1", "norm2", "norm3", "ff1", "ff2"))
    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        memory_padding_mask: np.ndarray | None = None,
    ) -> Tensor:
        if no_tape_active():
            return Tensor._wrap(
                self.infer_forward(x.data, memory.data, memory_padding_mask=memory_padding_mask)
            )
        length = x.shape[1]
        normed = self.norm1(x)
        x = x + self.dropout(self.self_attn(normed, attn_mask=causal_mask(length)))
        normed = self.norm2(x)
        x = x + self.dropout(self.cross_attn(normed, memory, memory, key_padding_mask=memory_padding_mask))
        normed = self.norm3(x)
        x = x + self.dropout(self.ff2(self.ff1(normed).relu()))
        return x

    @shape_spec(inputs={"x": "(B, L, dim)", "memory": "(B, L_m, dim)"},
                out="(B, L, dim)",
                params=("self_attn", "cross_attn", "norm1", "norm2", "norm3", "ff1", "ff2"))
    def infer_forward(
        self,
        x: np.ndarray,
        memory: np.ndarray | None,
        memory_padding_mask: np.ndarray | None = None,
        memory_kv: tuple[np.ndarray, np.ndarray] | None = None,
        scratch=None,
        tag: str = "",
    ) -> np.ndarray:
        """No-tape mirror of :meth:`forward`.

        ``memory_kv`` supplies this layer's precomputed cross-attention
        K/V (from ``cross_attn.infer_project_kv(memory)``); when given,
        ``memory`` itself may be None — the projections stand in for it.
        """
        length = x.shape[1]
        normed = self.norm1.infer_forward(x)
        x = x + self.self_attn.infer_forward(
            normed, attn_mask=causal_mask(length), scratch=scratch, tag=tag + ".self"
        )
        normed = self.norm2.infer_forward(x)
        x = x + self.cross_attn.infer_forward(
            normed,
            memory,
            memory,
            key_padding_mask=memory_padding_mask,
            static_kv=memory_kv,
            scratch=scratch,
            tag=tag + ".cross",
        )
        normed = self.norm3.infer_forward(x)
        hidden = kernels.relu(self.ff1.infer_forward(normed, scratch=scratch, tag=tag + ".ff1"))
        x = x + self.ff2.infer_forward(hidden)
        return x


class TransformerDecoder(Module):
    """Stack of decoder layers with a final LayerNorm."""

    def __init__(self, dim: int, num_heads: int, num_layers: int, ff_dim: int | None = None, dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.layers = ModuleList(
            [TransformerDecoderLayer(dim, num_heads, ff_dim=ff_dim, dropout=dropout, rng=rng) for _ in range(num_layers)]
        )
        self.final_norm = LayerNorm(dim)

    @shape_spec(inputs={"x": "(B, L, dim)", "memory": "(B, L_m, dim)"},
                out="(B, L, dim)",
                params=("layers", "final_norm"))
    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        memory_padding_mask: np.ndarray | None = None,
    ) -> Tensor:
        if no_tape_active():
            return Tensor._wrap(
                self.infer_forward(x.data, memory.data, memory_padding_mask=memory_padding_mask)
            )
        for layer in self.layers:
            x = layer(x, memory, memory_padding_mask=memory_padding_mask)
        return self.final_norm(x)

    @shape_spec(inputs={"x": "(B, L, dim)", "memory": "(B, L_m, dim)"},
                out="(B, L, dim)",
                params=("layers", "final_norm"))
    def infer_forward(
        self,
        x: np.ndarray,
        memory: np.ndarray | None,
        memory_padding_mask: np.ndarray | None = None,
        memory_kv: list[tuple[np.ndarray, np.ndarray]] | None = None,
        scratch=None,
        tag: str = "",
    ) -> np.ndarray:
        """No-tape mirror of :meth:`forward`.

        ``memory_kv`` is one ``(k, v)`` pair per layer (see
        :meth:`infer_project_memory_kv`); with it the encoder memory's K/V are
        never re-projected inside the step.
        """
        for i, layer in enumerate(self.layers):
            kv = memory_kv[i] if memory_kv is not None else None
            x = layer.infer_forward(
                x,
                memory,
                memory_padding_mask=memory_padding_mask,
                memory_kv=kv,
                scratch=scratch,
                tag=f"{tag}.l{i}",
            )
        return self.final_norm.infer_forward(x)

    @shape_spec(inputs={"memory": "(B, L_m, dim)"}, params=("layers",))
    def infer_project_memory_kv(self, memory: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        """Cross-attention K/V of ``memory`` for every layer — the
        per-decode work a :class:`repro.nn.KVCache` amortizes."""
        return [layer.cross_attn.infer_project_kv(memory) for layer in self.layers]
