"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of ``repro.nn``.  The paper's models
(transformer encoders/decoders, tree-LSTMs, MLPs) are implemented on top
of this small autograd engine because no deep-learning framework is
available in the reproduction environment.

The design follows the classic tape-based approach: every ``Tensor``
records the operation that produced it and a closure that propagates
gradients to its parents.  ``Tensor.backward()`` topologically sorts the
graph and runs the closures in reverse order.

Only float64 data is used; the models in this reproduction are small, so
numerical robustness is preferred over memory savings.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "fastpath_enabled",
    "no_tape_active",
    "force_tape",
]

# Grad mode is per-thread (as in torch): a serving thread running under
# no_grad must not disable tape recording for a concurrently training
# thread (tenant fine-tunes run on fleet-coordinator threads while drain
# threads serve inference), and vice versa.
_GRAD_STATE = threading.local()

# The no-tape fast path is likewise per-thread.  It is on by default:
# whenever grad is disabled, layer forwards dispatch to raw-ndarray
# kernels (``infer_*`` methods) instead of building ``Tensor`` nodes.
# ``force_tape`` turns the dispatch off so parity tests and benchmarks
# can run the legacy tape path under ``no_grad`` and compare bits.
_FASTPATH_STATE = threading.local()


class no_grad:
    """Context manager that disables gradient recording (like torch.no_grad).

    The flag is thread-local: entering ``no_grad`` on one thread leaves
    every other thread's recording mode untouched.
    """

    def __enter__(self):
        self._prev = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, exc_type, exc, tb):
        _GRAD_STATE.enabled = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return True when operations are being recorded on this thread's tape."""
    return getattr(_GRAD_STATE, "enabled", True)


def fastpath_enabled() -> bool:
    """True when the no-tape fast path may be taken on this thread."""
    return getattr(_FASTPATH_STATE, "enabled", True)


def no_tape_active() -> bool:
    """True when forwards on this thread should use raw-ndarray kernels.

    This is the dispatch predicate of the dual-mode substrate: grad is
    off (nothing will ever call ``backward`` on the results) *and* the
    fast path has not been suppressed via :class:`force_tape`.
    """
    return not is_grad_enabled() and fastpath_enabled()


class force_tape:
    """Context manager disabling the no-tape fast path (thread-local).

    Inside the block, forwards under ``no_grad`` run the legacy
    tape-building path.  Exists for the fast-vs-tape parity tests and
    for ``bench_batched_decode.py`` to time the pre-fast-path decode —
    production code should never need it.
    """

    def __enter__(self):
        self._prev = fastpath_enabled()
        _FASTPATH_STATE.enabled = False
        return self

    def __exit__(self, exc_type, exc, tb):
        _FASTPATH_STATE.enabled = self._prev
        return False


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != np.float64:
            return value.astype(np.float64)
        return value
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to a float64 ``np.ndarray``.
    requires_grad:
        When True, gradients are accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward = None
        self._prev: tuple = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(data: np.ndarray) -> "Tensor":
        """Cheapest possible Tensor around an already-float64 ndarray.

        The no-tape boundary constructor: raw-ndarray kernels compute a
        whole layer (or decode step) and wrap the result exactly once —
        no ``_as_array`` dtype probe, no parents, no backward closure.
        Callers guarantee ``data`` is a float64 ``np.ndarray``.
        """
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._prev = ()
        out.name = ""
        return out

    @staticmethod
    def _make(data: np.ndarray, parents: tuple, backward, requires_grad: bool) -> "Tensor":
        # No-tape dispatch: when nothing will ever backpropagate through
        # this node, skip the full constructor and all bookkeeping.  The
        # backward closure the caller built is simply dropped.  Gated on
        # ``fastpath_enabled`` so ``force_tape`` really does reproduce
        # the legacy per-op construction cost.
        if (not requires_grad or not is_grad_enabled()) and fastpath_enabled():
            return Tensor._wrap(np.asarray(data, dtype=np.float64))
        out = Tensor(data, requires_grad=requires_grad)
        if out.requires_grad:
            out._prev = tuple(p for p in parents if isinstance(p, Tensor) and p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (appropriate for scalar losses).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(data, (self, other), backward, self.requires_grad or other.requires_grad)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(data, (self, other), backward, self.requires_grad or other.requires_grad)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        data = self.data ** exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(data, (self,), backward, self.requires_grad)

    # ------------------------------------------------------------------
    # Matrix / shape operations
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.expand_dims(grad, -1) * other.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(g)

        return Tensor._make(data, (self, other), backward, self.requires_grad or other.requires_grad)

    __matmul__ = matmul

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward, self.requires_grad)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward, self.requires_grad)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward, self.requires_grad)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(data, (self,), backward, self.requires_grad)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            expanded = data if keepdims or axis is None else np.expand_dims(data, axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            g = grad if keepdims or axis is None else np.expand_dims(grad, axis)
            self._accumulate(mask * g)

        return Tensor._make(data, (self,), backward, self.requires_grad)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward, self.requires_grad)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward, self.requires_grad)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data * data))

        return Tensor._make(data, (self,), backward, self.requires_grad)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward, self.requires_grad)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward, self.requires_grad)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        data = np.abs(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(data, (self,), backward, self.requires_grad)

    def clip(self, low: float | None, high: float | None) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask *= self.data >= low
        if high is not None:
            mask *= self.data <= high

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward, self.requires_grad)
