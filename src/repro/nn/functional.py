"""Functional operations on :class:`repro.nn.Tensor`.

These free functions complement the methods on ``Tensor`` with
operations that combine several tensors (``concat``, ``stack``,
``where``) or that are numerically specialised (``softmax``,
``log_softmax``, ``gelu``).
"""

from __future__ import annotations

import numpy as np

from . import kernels
from .tensor import Tensor, no_tape_active

__all__ = [
    "concat",
    "stack",
    "softmax",
    "log_softmax",
    "gelu",
    "where",
    "masked_fill",
    "pad_sequences",
    "pad_index_sequences",
    "repeat_batch",
    "one_hot",
]


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    if no_tape_active():
        arrays = [t.data if isinstance(t, Tensor) else np.asarray(t, dtype=np.float64) for t in tensors]
        return Tensor._wrap(np.concatenate(arrays, axis=axis))
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(data, tuple(tensors), backward, requires)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    if no_tape_active():
        arrays = [t.data if isinstance(t, Tensor) else np.asarray(t, dtype=np.float64) for t in tensors]
        return Tensor._wrap(np.stack(arrays, axis=axis))
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)

    def backward(grad):
        slabs = np.split(grad, len(tensors), axis=axis)
        for tensor, slab in zip(tensors, slabs):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(slab, axis=axis))

    return Tensor._make(data, tuple(tensors), backward, requires)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    if no_tape_active():
        return Tensor._wrap(kernels.softmax(x.data, axis=axis))
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad):
        if x.requires_grad:
            dot = (grad * out).sum(axis=axis, keepdims=True)
            x._accumulate(out * (grad - dot))

    return Tensor._make(out, (x,), backward, x.requires_grad)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    if no_tape_active():
        # Identical arithmetic (the kernel mirrors the lines below); just
        # skip materializing the backward-only softmax intermediate.
        return Tensor._wrap(kernels.log_softmax(x.data, axis=axis))
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - logsumexp
    soft = np.exp(out)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out, (x,), backward, x.requires_grad)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x.data + 0.044715 * x.data ** 3)
    t = np.tanh(inner)
    out = 0.5 * x.data * (1.0 + t)
    if no_tape_active():
        return Tensor._wrap(out)

    def backward(grad):
        if x.requires_grad:
            dt = (1.0 - t * t) * c * (1.0 + 3 * 0.044715 * x.data ** 2)
            x._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * x.data * dt))

    return Tensor._make(out, (x,), backward, x.requires_grad)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select: ``condition ? a : b`` (condition is constant)."""
    if no_tape_active():
        a_nd = a.data if isinstance(a, Tensor) else np.asarray(a, dtype=np.float64)
        b_nd = b.data if isinstance(b, Tensor) else np.asarray(b, dtype=np.float64)
        return Tensor._wrap(np.where(np.asarray(condition, dtype=bool), a_nd, b_nd))
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * condition)
        if b.requires_grad:
            b._accumulate(grad * ~condition)

    return Tensor._make(data, (a, b), backward, a.requires_grad or b.requires_grad)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace entries where ``mask`` is True by ``value`` (no grad there)."""
    mask = np.asarray(mask, dtype=bool)
    if no_tape_active():
        return Tensor._wrap(kernels.masked_fill(x.data, mask, value))
    data = np.where(mask, value, x.data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * ~mask)

    return Tensor._make(data, (x,), backward, x.requires_grad)


def pad_sequences(arrays: list[np.ndarray], pad_value: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """Pad a list of ``(length_i, dim)`` arrays to a dense batch.

    Returns ``(batch, mask)`` where ``batch`` has shape
    ``(n, max_len, dim)`` and ``mask`` is True at padded positions.
    """
    if not arrays:
        raise ValueError("pad_sequences requires at least one sequence")
    max_len = max(a.shape[0] for a in arrays)
    dim = arrays[0].shape[1]
    batch = np.full((len(arrays), max_len, dim), pad_value, dtype=np.float64)
    mask = np.ones((len(arrays), max_len), dtype=bool)
    for i, array in enumerate(arrays):
        batch[i, : array.shape[0]] = array
        mask[i, : array.shape[0]] = False
    return batch, mask


def pad_index_sequences(
    sequences: list[list[int]], pad_value: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Pad ragged integer sequences into a dense ``(B, Tmax)`` index batch.

    Returns ``(indices, lengths)``; padded slots hold ``pad_value`` (a
    valid index, so gathers stay in bounds — consumers must read only the
    first ``lengths[i]`` entries of row ``i``).
    """
    lengths = np.asarray([len(s) for s in sequences], dtype=np.int64)
    max_len = int(lengths.max()) if len(sequences) else 0
    indices = np.full((len(sequences), max_len), pad_value, dtype=np.int64)
    for i, seq in enumerate(sequences):
        indices[i, : len(seq)] = seq
    return indices, lengths


def repeat_batch(x: Tensor, repeats: int) -> Tensor:
    """Repeat a ``(1, ...)`` tensor ``repeats`` times along axis 0.

    Gradients sum back over the repeated axis, so this is the
    batched-decoding equivalent of broadcasting one encoder memory
    across every active beam.
    """
    if x.shape[0] != 1:
        raise ValueError(f"repeat_batch expects a leading axis of 1, got shape {x.shape}")
    data = np.broadcast_to(x.data, (repeats,) + x.data.shape[1:])
    if no_tape_active():
        return Tensor._wrap(np.ascontiguousarray(data))

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad.sum(axis=0, keepdims=True))

    return Tensor._make(np.ascontiguousarray(data), (x,), backward, x.requires_grad)


def one_hot(indices, depth: int) -> np.ndarray:
    """One-hot encode integer ``indices`` into ``depth`` classes."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (depth,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out
