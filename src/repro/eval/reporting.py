"""Paper-style table rendering for experiment results."""

from __future__ import annotations

from typing import TYPE_CHECKING

from .experiments import Table1Row, Table2Row, Table3Row

if TYPE_CHECKING:  # avoid a runtime eval -> serve/federation import cycle
    from ..federation.report import FleetReport
    from ..serve.stats import ServingReport

__all__ = [
    "format_table1",
    "format_table2",
    "format_table3",
    "format_serving_report",
    "format_fleet_report",
]


def _fmt(value: float | None, width: int = 9) -> str:
    if value is None:
        return "\\".rjust(width)
    if value >= 1000:
        return f"{value:,.0f}".rjust(width)
    return f"{value:.2f}".rjust(width)


def format_table1(rows: list[Table1Row], title: str = "Table 1: Q-errors") -> str:
    """Render Table 1 in the paper's layout."""
    lines = [title, "-" * 78]
    header = (
        f"{'Method':<16}"
        f"{'card med':>9}{'card max':>10}{'card mean':>10}"
        f"{'cost med':>10}{'cost max':>10}{'cost mean':>10}"
    )
    lines.append(header)
    for row in rows:
        card = row.card.as_row() if row.card else (None, None, None)
        cost = row.cost.as_row() if row.cost else (None, None, None)
        lines.append(
            f"{row.method:<16}"
            f"{_fmt(card[0])}{_fmt(card[1], 10)}{_fmt(card[2], 10)}"
            f"{_fmt(cost[0], 10)}{_fmt(cost[1], 10)}{_fmt(cost[2], 10)}"
        )
    return "\n".join(lines)


def format_table2(rows: list[Table2Row], title: str = "Table 2: Execution time with different join orders") -> str:
    lines = [title, "-" * 64]
    lines.append(f"{'JoinOrder':<18}{'Total time (sim ms)':>22}{'Improvement':>14}")
    for row in rows:
        improvement = "\\" if row.improvement is None else f"{100 * row.improvement:.1f}%"
        lines.append(f"{row.method:<18}{row.total_time_ms:>22,.1f}{improvement:>14}")
        if row.optimal_fraction is not None:
            lines.append(f"{'':<18}(optimal order on {100 * row.optimal_fraction:.0f}% of queries)")
    return "\n".join(lines)


def format_table3(rows: list[Table3Row], title: str = "Table 3: Cross-DB transfer") -> str:
    lines = [title, "-" * 64]
    lines.append(f"{'JoinOrder':<20}{'Total time (sim ms)':>22}{'Improvement':>14}")
    for row in rows:
        improvement = "\\" if row.improvement is None else f"{100 * row.improvement:.1f}%"
        lines.append(f"{row.method:<20}{row.total_time_ms:>22,.1f}{improvement:>14}")
    return "\n".join(lines)


def format_serving_report(report: "ServingReport", title: str = "Optimizer service report") -> str:
    """Render a :class:`repro.serve.ServingReport` in the repo's table style."""
    lines = [title, "-" * 64]
    lines.append(f"{'completed':<22}{report.completed:>12,}")
    lines.append(f"{'rejected (backpressure)':<24}{report.rejected:>10,}")
    lines.append(f"{'failed':<22}{report.failed:>12,}")
    lines.append(f"{'throughput':<22}{report.throughput_qps:>12,.1f} q/s")
    lines.append(f"{'batches drained':<22}{report.batches:>12,}")
    lines.append(
        f"{'batch size':<22}{report.mean_batch_size:>12.2f} mean"
        f"  (max {report.max_batch})"
    )
    lines.append(f"{'coalesced requests':<22}{report.coalesced:>12,}")
    lines.append(f"{'model calls':<22}{report.model_calls:>12,}")
    if report.num_replicas > 1:
        utilization = "  ".join(
            f"#{index} {100 * share:.0f}%"
            for index, share in enumerate(report.replica_utilization)
        )
        lines.append(f"{'replica pool':<22}{report.num_replicas:>12,} replicas")
        lines.append(f"{'replica utilization':<24}{'':>0}{utilization}")
        lines.append(
            f"{'replica batches':<24}"
            + "  ".join(f"#{i} {n:,}" for i, n in enumerate(report.replica_batches))
        )
    if report.swaps:
        lines.append(f"{'model hot-swaps':<22}{report.swaps:>12,}")
    if report.timeout_near_misses:
        lines.append(f"{'timeout near-misses':<22}{report.timeout_near_misses:>12,}")
    if report.feedback_collected or report.feedback_deduped or report.feedback_rejected:
        lines.append(
            f"{'feedback experience':<22}{report.feedback_collected:>12,} collected"
            f"  {report.feedback_deduped:,} deduped  {report.feedback_rejected:,} rejected"
        )
    if report.retrains or report.adaptation_failures:
        lines.append(
            f"{'online adaptation':<22}{report.retrains:>12,} retrains"
            f"  {report.swaps_accepted:,} accepted  {report.swaps_rejected:,} gate-rejected"
        )
    if report.adaptation_failures:
        lines.append(f"{'adaptation failures':<22}{report.adaptation_failures:>12,}")
    lines.append(
        f"{'plan cache':<22}{report.cache_hits:>12,} hits"
        f"  {report.cache_misses:,} misses"
        f"  ({100 * report.cache_hit_rate:.0f}% hit rate, {report.cache_entries:,} entries)"
    )
    if report.retired_cache_hits or report.retired_cache_misses:
        lines.append(
            f"{'cache (pre-swap epochs)':<24}{report.retired_cache_hits:>10,} hits"
            f"  {report.retired_cache_misses:,} misses"
        )
    if report.latency is not None:
        lines.append(f"{'latency':<22}{'':>2}{report.latency}")
    return "\n".join(lines)


def format_fleet_report(report: "FleetReport", title: str = "Federated fleet report") -> str:
    """Render a :class:`repro.federation.FleetReport`: a fleet summary
    followed by each tenant's serving report."""
    lines = [title, "=" * 64]
    lines.append(f"{'tenants':<22}{report.num_tenants:>12,}")
    reverted = f"  ({report.reverted_rounds:,} reverted)" if report.reverted_rounds else ""
    lines.append(f"{'federated rounds':<22}{report.rounds:>12,}{reverted}")
    lines.append(f"{'round participations':<22}{report.rounds_participated:>12,}")
    lines.append(
        f"{'global-model gates':<22}{report.global_accepted:>12,} accepted"
        f"  {report.global_rejected:,} rejected  {report.gate_unvalidated:,} unvalidated"
    )
    if report.round_failures or report.tenant_failures:
        lines.append(
            f"{'federation failures':<22}{report.round_failures:>12,} rounds"
            f"  {report.tenant_failures:,} tenant harvests/pushes"
        )
    lines.append(f"{'completed (fleet)':<22}{report.completed:>12,}")
    lines.append(f"{'failed (fleet)':<22}{report.failed:>12,}")
    lines.append(f"{'throughput (fleet)':<22}{report.throughput_qps:>12,.1f} q/s")
    lines.append(f"{'model hot-swaps':<22}{report.swaps:>12,}")
    if report.slo:
        breached = report.slo_breached
        lines.append(
            f"{'slo breached':<22}{len(breached):>12,} tenants"
            + (f"  ({', '.join(breached)})" if breached else "")
        )
    for name in sorted(report.tenants):
        lines.append("")
        lines.append(format_serving_report(report.tenants[name], title=f"tenant {name!r}"))
        counters = report.tenant_counters.get(name)
        if counters:
            lines.append(
                f"{'federation':<22}{counters.get('rounds_participated', 0):>12,} rounds"
                f"  {counters.get('global_accepted', 0):,} accepted"
                f"  {counters.get('global_rejected', 0):,} rejected"
                f"  {counters.get('gate_unvalidated', 0):,} unvalidated"
            )
        status = report.slo.get(name)
        if status is not None:
            flag = "  BREACHED" if status.breached else ""
            lines.append(
                f"{'slo':<22}{status.window:>12,} in window"
                f"  {status.violations:,} violations"
                f"  burn {status.burn_rate:.2f}x"
                f"  (target {status.objective.target:.0%} < "
                f"{status.objective.latency_s * 1e3:g}ms){flag}"
            )
    return "\n".join(lines)
