"""Experiment harnesses regenerating the paper's Tables 1, 2 and 3.

Every experiment is scale-parameterized: the paper's setup (150K
queries, GPU, full IMDB) shrinks to CPU-sized defaults, but the rows,
baselines and metrics match the paper exactly.

- :class:`SingleDBStudy` — Table 1 (q-errors for CardEst/CostEst across
  PostgreSQL, Tree-LSTM, MTMLF-QO and single-task ablations) and
  Table 2 (simulated execution time of join orders: PostgreSQL,
  Optimal, MTMLF-QO, MTMLF-JoinSel);
- :func:`run_table3` — the cross-DB transfer study (PostgreSQL vs
  MTMLF-QO trained by MLA on other DBs vs MTMLF-QO trained on the
  test DB itself).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..baselines.postgres import PostgresBaseline
from ..baselines.treelstm import TreeLSTMEstimator
from ..core.config import ModelConfig
from ..core.encoders import DatabaseFeaturizer
from ..core.meta import MetaLearner, MLAConfig
from ..core.model import MTMLFQO
from ..core.trainer import JointTrainer
from ..engine.executor import ExecutionLimitError, execute_plan
from ..engine.timing import over_limit_penalty_ms
from ..optimizer.optimal import optimal_plan
from ..optimizer.planner import PostgresStylePlanner, plan_with_order
from ..optimizer.selectivity import HistogramEstimator, TrueCardinalityOracle
from ..storage.catalog import Database
from ..workload.dataset import QueryDataset, split_dataset
from ..workload.generator import WorkloadConfig, WorkloadGenerator
from ..workload.labeler import LabeledQuery, QueryLabeler
from .metrics import QErrorStats, improvement_ratio, qerror_stats

__all__ = [
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "SingleDBStudy",
    "run_table3",
    "collect_node_qerrors",
    "join_order_execution_time",
    "worst_legal_order",
]

_COST_FLOOR = 1e-6


@dataclass
class Table1Row:
    method: str
    card: QErrorStats | None = None
    cost: QErrorStats | None = None


@dataclass
class Table2Row:
    method: str
    total_time_ms: float
    improvement: float | None = None
    optimal_fraction: float | None = None


@dataclass
class Table3Row:
    method: str
    total_time_ms: float
    improvement: float | None = None


def collect_node_qerrors(
    items: list[LabeledQuery],
    predict,
    kind: str = "card",
) -> QErrorStats:
    """Q-error stats over every plan node of every query.

    ``predict(item)`` must return the per-node predictions (preorder).
    """
    preds, trues = [], []
    floor = 1.0 if kind == "card" else _COST_FLOOR
    for item in items:
        values = np.asarray(predict(item), dtype=np.float64)
        truth = np.asarray(
            item.node_cardinalities if kind == "card" else item.node_costs, dtype=np.float64
        )
        preds.append(values)
        trues.append(truth)
    return qerror_stats(np.concatenate(preds), np.concatenate(trues), floor=floor)


def join_order_execution_time(
    db: Database,
    item: LabeledQuery,
    order: list[str],
    estimator: HistogramEstimator | None = None,
    max_intermediate_rows: int = 20_000_000,
) -> float:
    """Simulated latency of executing ``item.query`` with a join order.

    Physical operators are chosen by the classical cost model over
    histogram estimates (the same policy for every compared method, so
    only the join *order* differs — what Table 2 isolates).  An order
    whose intermediates exceed the row cap is charged a proportional
    penalty instead of being executed to completion — the moral
    equivalent of the paper's query timeouts.
    """
    estimator = estimator or HistogramEstimator(db)
    plan = plan_with_order(item.query, order, estimator)
    try:
        result = execute_plan(plan, db, max_intermediate_rows=max_intermediate_rows)
    except ExecutionLimitError:
        return over_limit_penalty_ms(max_intermediate_rows)
    return result.simulated_ms


def worst_legal_order(
    db: Database,
    item: LabeledQuery,
    samples: int = 12,
    seed: int = 0,
    estimator: HistogramEstimator | None = None,
) -> list[str] | None:
    """The worst of ``samples`` random *legal* join orders for a query.

    The adversarial-label generator shared by the poisoned-retrain
    benchmarks and tests: sample random permutations, keep the one with
    the highest simulated latency, and skip illegal permutations (a
    disconnected prefix raises ``ValueError``).  Returns ``None`` when
    no sampled permutation is legal within the attempt budget.
    """
    rng = random.Random(seed)
    tables = list(item.query.tables)
    worst, worst_ms, tried = None, -1.0, 0
    for _ in range(200):
        if tried >= samples:
            break
        order = tables[:]
        rng.shuffle(order)
        try:
            ms = join_order_execution_time(db, item, order, estimator)
        except ValueError:
            continue
        tried += 1
        if ms > worst_ms:
            worst, worst_ms = order, ms
    return worst


# ----------------------------------------------------------------------
# Single-DB study: Tables 1 and 2
# ----------------------------------------------------------------------


@dataclass
class StudyConfig:
    """Scale knobs for the single-DB study."""

    num_queries: int = 260
    min_tables: int = 3
    max_tables: int = 6
    model: ModelConfig = field(default_factory=ModelConfig)
    encoder_queries_per_table: int = 25
    encoder_epochs: int = 10
    joint_epochs: int = 30
    treelstm_epochs: int = 15
    batch_size: int = 16
    seed: int = 0
    verbose: bool = False
    # JOB-like workload hazards: LIKE-heavy, sparse-but-selective filters
    # over many-way joins (what makes join order matter).
    filter_probability: float = 0.7
    like_probability: float = 0.6
    max_filters_per_table: int = 1
    # JOB queries return results; drop degenerate empty-result queries.
    drop_empty_results: bool = True


class SingleDBStudy:
    """Prepares workloads and trains every method on a single database."""

    def __init__(self, db: Database, config: StudyConfig | None = None):
        self.db = db
        self.config = config or StudyConfig()
        self.train: QueryDataset | None = None
        self.test: QueryDataset | None = None
        self.featurizer: DatabaseFeaturizer | None = None
        self.models: dict[str, MTMLFQO] = {}
        self.treelstm: TreeLSTMEstimator | None = None
        self.postgres: PostgresBaseline | None = None

    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Generate, label and split the workload (90/10-style)."""
        cfg = self.config
        generator = WorkloadGenerator(
            self.db,
            WorkloadConfig(
                min_tables=cfg.min_tables,
                max_tables=cfg.max_tables,
                seed=cfg.seed,
                filter_probability=cfg.filter_probability,
                like_probability=cfg.like_probability,
                max_filters_per_table=cfg.max_filters_per_table,
            ),
        )
        queries = generator.generate(cfg.num_queries)
        labeler = QueryLabeler(self.db)
        labeled = labeler.label_many(queries, with_optimal_order=True)
        if cfg.drop_empty_results:
            labeled = [item for item in labeled if item.cardinality > 0]
        if len(labeled) < 20:
            raise RuntimeError(f"workload labeling yielded only {len(labeled)} queries")
        self.train, self.test = split_dataset(labeled, (0.85, 0.15), seed=cfg.seed)

    def _require_prepared(self) -> None:
        if self.train is None:
            raise RuntimeError("call prepare() first")

    def train_featurizer(self) -> DatabaseFeaturizer:
        """Train the (F) module once; shared by all MTMLF variants."""
        if self.featurizer is None:
            cfg = self.config
            self.featurizer = DatabaseFeaturizer(self.db, cfg.model)
            self.featurizer.train_encoders(
                queries_per_table=cfg.encoder_queries_per_table,
                epochs=cfg.encoder_epochs,
                seed=cfg.seed,
                verbose=cfg.verbose,
            )
        return self.featurizer

    def train_mtmlf(
        self, name: str, w_card: float = 1.0, w_cost: float = 1.0, w_jo: float = 1.0,
        sequence_refine: bool = False,
    ) -> MTMLFQO:
        """Train one MTMLF variant (weights select the ablation)."""
        self._require_prepared()
        if name in self.models:
            return self.models[name]
        cfg = self.config
        model_config = ModelConfig(**{**cfg.model.__dict__, "w_card": w_card, "w_cost": w_cost, "w_jo": w_jo})
        model = MTMLFQO(model_config)
        model.attach_featurizer(self.db.name, self.train_featurizer())
        trainer = JointTrainer(model)
        examples = [(self.db.name, item) for item in self.train]
        trainer.train(
            examples,
            epochs=cfg.joint_epochs,
            batch_size=cfg.batch_size,
            seed=cfg.seed,
            verbose=cfg.verbose,
        )
        if sequence_refine and w_jo:
            trainer.refine_sequence_level(examples, epochs=2, seed=cfg.seed, verbose=cfg.verbose)
        self.models[name] = model
        return model

    def train_treelstm(self) -> TreeLSTMEstimator:
        self._require_prepared()
        if self.treelstm is None:
            cfg = self.config
            self.treelstm = TreeLSTMEstimator(self.db, seed=cfg.seed)
            self.treelstm.fit(
                list(self.train), epochs=cfg.treelstm_epochs, seed=cfg.seed, verbose=cfg.verbose
            )
        return self.treelstm

    def build_postgres(self) -> PostgresBaseline:
        self._require_prepared()
        if self.postgres is None:
            self.postgres = PostgresBaseline(self.db)
            self.postgres.calibrate_costs(list(self.train))
        return self.postgres

    # ------------------------------------------------------------------
    def table1(self, with_ablations: bool = True) -> list[Table1Row]:
        """Table 1: q-errors on the held-out workload."""
        self._require_prepared()
        test = list(self.test)
        rows: list[Table1Row] = []

        postgres = self.build_postgres()
        rows.append(
            Table1Row(
                "PostgreSQL",
                card=collect_node_qerrors(test, postgres.predict_cards, "card"),
                cost=collect_node_qerrors(test, postgres.predict_costs, "cost"),
            )
        )

        treelstm = self.train_treelstm()
        rows.append(
            Table1Row(
                "Tree-LSTM",
                card=collect_node_qerrors(test, lambda i: treelstm.predict(i)[0], "card"),
                cost=collect_node_qerrors(test, lambda i: treelstm.predict(i)[1], "cost"),
            )
        )

        joint = self.train_mtmlf("MTMLF-QO", sequence_refine=True)
        rows.append(
            Table1Row(
                "MTMLF-QO",
                card=collect_node_qerrors(
                    test, lambda i: joint.predict_cardinalities(self.db.name, [i])[0], "card"
                ),
                cost=collect_node_qerrors(
                    test, lambda i: joint.predict_costs(self.db.name, [i])[0], "cost"
                ),
            )
        )

        if with_ablations:
            card_only = self.train_mtmlf("MTMLF-CardEst", w_card=1.0, w_cost=0.0, w_jo=0.0)
            rows.append(
                Table1Row(
                    "MTMLF-CardEst",
                    card=collect_node_qerrors(
                        test, lambda i: card_only.predict_cardinalities(self.db.name, [i])[0], "card"
                    ),
                )
            )
            cost_only = self.train_mtmlf("MTMLF-CostEst", w_card=0.0, w_cost=1.0, w_jo=0.0)
            rows.append(
                Table1Row(
                    "MTMLF-CostEst",
                    cost=collect_node_qerrors(
                        test, lambda i: cost_only.predict_costs(self.db.name, [i])[0], "cost"
                    ),
                )
            )
        return rows

    # ------------------------------------------------------------------
    def table2(self, with_ablation: bool = True) -> list[Table2Row]:
        """Table 2: total simulated execution time per join-order source."""
        self._require_prepared()
        test = [item for item in self.test if item.optimal_order is not None]
        if not test:
            raise RuntimeError("no test queries with optimal-order labels")
        estimator = HistogramEstimator(self.db)
        planner = PostgresStylePlanner(self.db)

        def total_for_orders(orders: list[list[str]]) -> float:
            total = 0.0
            for item, order in zip(test, orders):
                total += join_order_execution_time(self.db, item, order, estimator)
            return total

        pg_orders = [planner.plan(item.query).join_order for item in test]
        optimal_orders = [item.optimal_order for item in test]
        joint = self.train_mtmlf("MTMLF-QO", sequence_refine=True)
        joint_orders = joint.predict_join_orders(self.db.name, test)

        pg_time = total_for_orders(pg_orders)
        rows = [Table2Row("PostgreSQL", pg_time)]
        optimal_time = total_for_orders(optimal_orders)
        rows.append(Table2Row("Optimal", optimal_time, improvement_ratio(pg_time, optimal_time)))
        joint_time = total_for_orders(joint_orders)
        optimal_hits = float(
            np.mean([a == b for a, b in zip(joint_orders, optimal_orders)])
        )
        rows.append(
            Table2Row(
                "MTMLF-QO",
                joint_time,
                improvement_ratio(pg_time, joint_time),
                optimal_fraction=optimal_hits,
            )
        )
        if with_ablation:
            jo_only = self.train_mtmlf("MTMLF-JoinSel", w_card=0.0, w_cost=0.0, w_jo=1.0)
            jo_orders = jo_only.predict_join_orders(self.db.name, test)
            jo_time = total_for_orders(jo_orders)
            rows.append(Table2Row("MTMLF-JoinSel", jo_time, improvement_ratio(pg_time, jo_time)))
        return rows


# ----------------------------------------------------------------------
# Cross-DB transfer: Table 3
# ----------------------------------------------------------------------


def _labeled_workload(db: Database, num_queries: int, max_tables: int, seed: int) -> list[LabeledQuery]:
    generator = WorkloadGenerator(
        db,
        WorkloadConfig(
            min_tables=min(3, max_tables),
            max_tables=max_tables,
            seed=seed,
            filter_probability=0.7,
            like_probability=0.5,
            max_filters_per_table=1,
        ),
    )
    labeler = QueryLabeler(db, max_intermediate_rows=2_000_000)
    labeled = labeler.label_many(generator.generate(num_queries), with_optimal_order=True)
    return [item for item in labeled if item.cardinality > 0]


def run_table3(
    databases: list[Database],
    num_queries: int = 80,
    max_tables: int = 4,
    mla_config: MLAConfig | None = None,
    model_config: ModelConfig | None = None,
    seed: int = 0,
) -> list[Table3Row]:
    """The Table 3 experiment: transfer MTMLF-QO to an unseen database.

    The last database is held out; (S)/(T) are pre-trained via MLA on
    the others and applied to the held-out DB with only its featurizer
    trained locally.  The controlled comparison trains a fresh MTMLF-QO
    directly on the held-out DB.
    """
    if len(databases) < 3:
        raise ValueError("need at least 3 databases (2 train + 1 test)")
    train_dbs, test_db = databases[:-1], databases[-1]
    mla_config = mla_config or MLAConfig()
    model_config = model_config or ModelConfig()

    workloads = [
        _labeled_workload(db, num_queries, max_tables, seed + i)
        for i, db in enumerate(train_dbs)
    ]
    test_workload = _labeled_workload(test_db, num_queries, max_tables, seed + len(databases))
    test_items = [item for item in test_workload if item.optimal_order is not None]
    if len(test_items) < 10:
        raise RuntimeError("too few labeled test queries for Table 3")
    holdout = test_items[: max(len(test_items) // 3, 5)]   # evaluation slice
    finetune = test_items[len(holdout):]

    # --- MLA-pretrained model, transferred with fine-tuning --------------
    meta = MetaLearner(model_config, mla_config)
    meta.pretrain(train_dbs, workloads)
    meta.transfer(test_db, fine_tune_workload=finetune)
    mla_model = meta.model

    # --- Controlled study: train from scratch on the test DB -------------
    single = MetaLearner(model_config, mla_config)
    single.prepare_featurizer(test_db)
    trainer = JointTrainer(single.model)
    trainer.train(
        [(test_db.name, item) for item in finetune],
        epochs=mla_config.joint_epochs,
        batch_size=mla_config.batch_size,
        seed=seed,
    )
    single_model = single.model

    estimator = HistogramEstimator(test_db)
    planner = PostgresStylePlanner(test_db)

    def total_time(orders: list[list[str]]) -> float:
        total = 0.0
        for item, order in zip(holdout, orders):
            total += join_order_execution_time(test_db, item, order, estimator)
        return total

    pg_time = total_time([planner.plan(item.query).join_order for item in holdout])
    mla_time = total_time(mla_model.predict_join_orders(test_db.name, holdout))
    single_time = total_time(single_model.predict_join_orders(test_db.name, holdout))

    return [
        Table3Row("PostgreSQL", pg_time),
        Table3Row("MTMLF-QO (MLA)", mla_time, improvement_ratio(pg_time, mla_time)),
        Table3Row("MTMLF-QO (single)", single_time, improvement_ratio(pg_time, single_time)),
    ]
