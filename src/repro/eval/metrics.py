"""Evaluation metrics: q-error statistics and improvement ratios."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.losses import q_error

__all__ = ["QErrorStats", "qerror_stats", "improvement_ratio", "LatencyStats", "latency_stats"]


@dataclass
class QErrorStats:
    """Median / max / mean q-error — the columns of the paper's Table 1."""

    median: float
    max: float
    mean: float
    count: int

    def as_row(self) -> tuple[float, float, float]:
        return (self.median, self.max, self.mean)

    def __str__(self) -> str:
        return f"median {self.median:.2f}  max {self.max:.2f}  mean {self.mean:.2f}"


def qerror_stats(predictions, truths, floor: float = 1.0) -> QErrorStats:
    """Aggregate q-errors of aligned prediction/truth arrays."""
    predictions = np.asarray(predictions, dtype=np.float64).reshape(-1)
    truths = np.asarray(truths, dtype=np.float64).reshape(-1)
    if predictions.shape != truths.shape:
        raise ValueError(f"shape mismatch {predictions.shape} vs {truths.shape}")
    if predictions.size == 0:
        raise ValueError("empty evaluation set")
    errors = q_error(predictions, truths, floor=floor)
    return QErrorStats(
        median=float(np.median(errors)),
        max=float(errors.max()),
        mean=float(errors.mean()),
        count=int(errors.size),
    )


def improvement_ratio(baseline_time: float, time: float) -> float:
    """The paper's "overall improvement ratio": (base - t) / base."""
    if baseline_time <= 0:
        raise ValueError("baseline time must be positive")
    return (baseline_time - time) / baseline_time


@dataclass
class LatencyStats:
    """Summary of a latency sample (seconds): the serving-layer columns."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def __str__(self) -> str:
        return (
            f"mean {1000 * self.mean:.1f} ms  p50 {1000 * self.p50:.1f} ms  "
            f"p95 {1000 * self.p95:.1f} ms  p99 {1000 * self.p99:.1f} ms  "
            f"max {1000 * self.max:.1f} ms"
        )


def latency_stats(samples) -> "LatencyStats | None":
    """Aggregate a latency sample; ``None`` for an empty one.

    Percentiles use the nearest-rank ("lower") method so every reported
    figure is an actually observed latency, not an interpolation.  NaN
    samples are rejected (``ValueError``): a NaN would silently poison
    the mean and make ``np.percentile`` order-dependent, so a recorder
    that produced one has a bug worth surfacing.
    """
    values = np.asarray(list(samples), dtype=np.float64).reshape(-1)
    if values.size == 0:
        return None
    if np.isnan(values).any():
        raise ValueError(f"latency samples contain {int(np.isnan(values).sum())} NaN value(s)")
    p50, p95, p99 = np.percentile(values, [50, 95, 99], method="lower")
    return LatencyStats(
        count=int(values.size),
        mean=float(values.mean()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        max=float(values.max()),
    )
