"""``repro.eval`` — metrics, experiment harnesses (Tables 1-3), reporting."""

from .experiments import (
    SingleDBStudy,
    StudyConfig,
    Table1Row,
    Table2Row,
    Table3Row,
    collect_node_qerrors,
    join_order_execution_time,
    run_table3,
)
from .metrics import QErrorStats, improvement_ratio, qerror_stats
from .reporting import format_table1, format_table2, format_table3

__all__ = [
    "QErrorStats",
    "qerror_stats",
    "improvement_ratio",
    "SingleDBStudy",
    "StudyConfig",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "run_table3",
    "collect_node_qerrors",
    "join_order_execution_time",
    "format_table1",
    "format_table2",
    "format_table3",
]
