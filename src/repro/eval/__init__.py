"""``repro.eval`` — metrics, experiment harnesses (Tables 1-3), reporting."""

from .experiments import (
    SingleDBStudy,
    StudyConfig,
    Table1Row,
    Table2Row,
    Table3Row,
    collect_node_qerrors,
    join_order_execution_time,
    run_table3,
    worst_legal_order,
)
from .metrics import LatencyStats, QErrorStats, improvement_ratio, latency_stats, qerror_stats
from .reporting import (
    format_fleet_report,
    format_serving_report,
    format_table1,
    format_table2,
    format_table3,
)

__all__ = [
    "QErrorStats",
    "qerror_stats",
    "improvement_ratio",
    "LatencyStats",
    "latency_stats",
    "SingleDBStudy",
    "StudyConfig",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "run_table3",
    "collect_node_qerrors",
    "join_order_execution_time",
    "worst_legal_order",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_serving_report",
    "format_fleet_report",
]
