"""Shared exception types that cut across subsystem boundaries.

Kept dependency-free so any layer (storage, optimizer, core, serve) can
raise or catch them without import cycles.
"""

from __future__ import annotations

__all__ = ["DisconnectedQueryError"]


class DisconnectedQueryError(ValueError):
    """The query's join graph is disconnected: no complete join order
    (without cross products) exists.

    A :class:`ValueError` subclass so existing ``except ValueError``
    call sites keep working, but distinct enough that policy code — the
    workload labeler, the serving feedback path — can skip exactly this
    well-understood condition instead of swallowing every ``ValueError``
    (which silently hid genuine planner and connectivity bugs).
    """
