"""Plan execution: true cardinalities and simulated latency per node.

``execute_plan`` walks a physical plan bottom-up, runs every operator
for real over the database, annotates each node with its *true*
cardinality (used as CardEst training labels and by the optimal-order
oracle) and accumulates a deterministic simulated execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.catalog import Database
from .operators import Intermediate, JoinExpansionError, WorkReport, execute_join, execute_scan
from .plan import PlanNode, ScanOp
from .timing import DEFAULT_TIMING, TimingModel

__all__ = ["ExecutionResult", "execute_plan", "ExecutionLimitError"]


class ExecutionLimitError(RuntimeError):
    """Raised when an intermediate exceeds the configured row limit."""


@dataclass
class ExecutionResult:
    """Outcome of executing one plan."""

    cardinality: int
    simulated_ms: float
    node_cardinalities: list[int]
    node_times: list[float]
    reports: list[WorkReport] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return len(self.node_cardinalities)


def execute_plan(
    plan: PlanNode,
    db: Database,
    timing: TimingModel = DEFAULT_TIMING,
    max_intermediate_rows: int | None = 20_000_000,
) -> ExecutionResult:
    """Execute ``plan`` against ``db``; annotate nodes with true cards.

    Node ordering in the result lists follows ``plan.nodes_preorder()``
    (root first) — the same order the MTMLF featurization serializes.
    """
    cards: dict[int, int] = {}
    times: dict[int, float] = {}
    reports: dict[int, WorkReport] = {}

    def run(node: PlanNode) -> Intermediate:
        if node.is_scan:
            intermediate, report = execute_scan(node, db)
            elapsed = timing.scan_time(report, used_index=node.scan_op is ScanOp.INDEX)
        else:
            left = run(node.left)
            right = run(node.right)
            try:
                intermediate, report = execute_join(
                    node, left, right, db, max_rows=max_intermediate_rows
                )
            except JoinExpansionError as exc:
                raise ExecutionLimitError(str(exc)) from exc
            elapsed = timing.join_time(report)
        if max_intermediate_rows is not None and intermediate.cardinality > max_intermediate_rows:
            raise ExecutionLimitError(
                f"intermediate of {intermediate.cardinality} rows exceeds cap {max_intermediate_rows}"
            )
        node.true_cardinality = intermediate.cardinality
        cards[id(node)] = intermediate.cardinality
        times[id(node)] = elapsed
        reports[id(node)] = report
        return intermediate

    final = run(plan)
    ordered = plan.nodes_preorder()
    return ExecutionResult(
        cardinality=final.cardinality,
        simulated_ms=sum(times.values()),
        node_cardinalities=[cards[id(n)] for n in ordered],
        node_times=[times[id(n)] for n in ordered],
        reports=[reports[id(n)] for n in ordered],
    )
