"""``repro.engine`` — vectorized execution engine and plan machinery.

Plan trees (scan/join), physical operators over row-id intermediates,
a PostgreSQL-style analytical cost model, and deterministic simulated
execution timing used by the Table 2/3 experiments.
"""

from .cost_model import DEFAULT_COST_MODEL, CostModel, TimingAlignedCostModel
from .executor import ExecutionLimitError, ExecutionResult, execute_plan
from .operators import Intermediate, WorkReport, equi_join_positions, execute_join, execute_scan
from .plan import JoinOp, PlanNode, ScanOp, join_node, left_deep_plan, scan_node
from .timing import DEFAULT_TIMING, TimingModel, over_limit_penalty_ms

__all__ = [
    "PlanNode",
    "ScanOp",
    "JoinOp",
    "scan_node",
    "join_node",
    "left_deep_plan",
    "Intermediate",
    "WorkReport",
    "execute_scan",
    "execute_join",
    "equi_join_positions",
    "execute_plan",
    "ExecutionResult",
    "ExecutionLimitError",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "TimingAlignedCostModel",
    "TimingModel",
    "DEFAULT_TIMING",
    "over_limit_penalty_ms",
]
