"""Physical operators: scans and equi-joins over row-id intermediates.

An intermediate result is *factorized by provenance*: a mapping
``table -> row-id array`` where all arrays share one length (the result
cardinality).  Joins align these arrays; column values are fetched from
base tables on demand.  This keeps execution vectorized and memory-lean.

Every operator also reports a :class:`WorkReport` of tuples touched /
matched / emitted, which the simulated timing model converts into a
deterministic "execution time" (see :mod:`repro.engine.timing`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..storage.catalog import Database
from ..storage.schema import JoinRelation
from .plan import JoinOp, PlanNode, ScanOp

__all__ = ["Intermediate", "WorkReport", "execute_scan", "execute_join", "equi_join_positions"]


@dataclass
class Intermediate:
    """A join intermediate: aligned row-id arrays keyed by base table."""

    rows: dict[str, np.ndarray]

    @property
    def cardinality(self) -> int:
        if not self.rows:
            return 0
        return len(next(iter(self.rows.values())))

    @property
    def tables(self) -> frozenset:
        return frozenset(self.rows)

    def column_values(self, db: Database, table: str, column: str) -> np.ndarray:
        """Fetch the values of ``table.column`` for the surviving rows."""
        base = db.table(table).column(column)
        return base.values[self.rows[table]]

    def take(self, positions: np.ndarray) -> "Intermediate":
        return Intermediate({t: ids[positions] for t, ids in self.rows.items()})


@dataclass
class WorkReport:
    """Tuple-level work counters for one operator invocation."""

    tuples_scanned: int = 0
    tuples_built: int = 0
    tuples_probed: int = 0
    tuples_sorted: int = 0
    pairs_examined: int = 0
    tuples_emitted: int = 0
    extra: dict = field(default_factory=dict)


def execute_scan(node: PlanNode, db: Database) -> tuple[Intermediate, WorkReport]:
    """Execute a scan leaf: apply the filter, emit surviving row ids."""
    table = db.table(node.table)
    report = WorkReport()
    if node.filter is not None and len(node.filter):
        mask = node.filter.evaluate(table)
        row_ids = np.flatnonzero(mask)
        if node.scan_op is ScanOp.INDEX:
            # An index scan touches only matching tuples (plus lookup work,
            # charged by the timing model); a seq scan reads everything.
            report.tuples_scanned = int(len(row_ids))
            report.extra["index_lookups"] = len(node.filter)
        else:
            report.tuples_scanned = table.num_rows
    else:
        row_ids = np.arange(table.num_rows, dtype=np.int64)
        report.tuples_scanned = table.num_rows
    report.tuples_emitted = int(len(row_ids))
    return Intermediate({node.table: row_ids.astype(np.int64)}), report


class JoinExpansionError(RuntimeError):
    """Raised before materializing a join whose output exceeds a cap."""


def equi_join_positions(
    left_keys: np.ndarray, right_keys: np.ndarray, max_pairs: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """All (i, j) with ``left_keys[i] == right_keys[j]`` — vectorized.

    Sort-merge style expansion using searchsorted; handles duplicate keys
    on both sides (full many-to-many semantics).  When ``max_pairs`` is
    set, the output size is computed *before* materialization and a
    :class:`JoinExpansionError` is raised if it would exceed the cap —
    this keeps runaway fan-out joins from exhausting memory.
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if left_keys.size == 0 or right_keys.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    order = np.argsort(right_keys, kind="mergesort")
    sorted_right = right_keys[order]
    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if max_pairs is not None and total > max_pairs:
        raise JoinExpansionError(f"join would emit {total} pairs (cap {max_pairs})")
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    left_pos = np.repeat(np.arange(left_keys.size, dtype=np.int64), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    right_pos = order[np.repeat(starts, counts) + within]
    return left_pos, right_pos


def _composite_keys(values_list: list[np.ndarray]) -> np.ndarray:
    """Combine one or more key columns into a single sortable key array."""
    if len(values_list) == 1:
        values = values_list[0]
        if values.dtype == object:
            return values.astype(str)
        return values
    # Multi-key join: build a structured array for lexicographic compare.
    normalized = [v.astype(str) if v.dtype == object else v for v in values_list]
    return np.rec.fromarrays(normalized)


def _join_keys(intermediate: Intermediate, db: Database, predicates: list[JoinRelation], side_tables: frozenset) -> np.ndarray:
    columns = []
    for pred in predicates:
        if pred.left in side_tables:
            columns.append(intermediate.column_values(db, pred.left, pred.left_column))
        else:
            columns.append(intermediate.column_values(db, pred.right, pred.right_column))
    return _composite_keys(columns)


def execute_join(
    node: PlanNode,
    left: Intermediate,
    right: Intermediate,
    db: Database,
    max_rows: int | None = None,
) -> tuple[Intermediate, WorkReport]:
    """Execute a join node over two intermediates.

    All three physical algorithms produce identical output; they differ
    in the work they report (and hence their simulated latency):

    - HASH: build the smaller side, probe the larger;
    - MERGE: sort both sides, then a linear merge;
    - NESTED_LOOP: examine every pair.
    """
    report = WorkReport()
    left_keys = _join_keys(left, db, node.join_predicates, left.tables)
    right_keys = _join_keys(right, db, node.join_predicates, right.tables)

    lpos, rpos = equi_join_positions(left_keys, right_keys, max_pairs=max_rows)

    n_left, n_right = left.cardinality, right.cardinality
    op = node.join_op or JoinOp.HASH
    if op is JoinOp.HASH:
        report.tuples_built = min(n_left, n_right)
        report.tuples_probed = max(n_left, n_right)
    elif op is JoinOp.MERGE:
        report.tuples_sorted = n_left + n_right
        report.tuples_probed = n_left + n_right
    else:  # NESTED_LOOP
        report.pairs_examined = n_left * n_right
    report.tuples_emitted = int(len(lpos))

    rows: dict[str, np.ndarray] = {}
    for table, ids in left.rows.items():
        rows[table] = ids[lpos]
    for table, ids in right.rows.items():
        rows[table] = ids[rpos]
    return Intermediate(rows), report
