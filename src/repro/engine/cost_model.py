"""PostgreSQL-style analytical cost model over *estimated* cardinalities.

Where :mod:`repro.engine.timing` charges true observed work after
execution, this model predicts cost before execution from cardinality
estimates — it is what the classical optimizer minimises during join
enumeration, and its outputs are the "true cost" labels for the CostEst
task (computed with true cardinalities plugged in).

The structure mirrors PostgreSQL's costing: per-tuple CPU terms, a
cheaper sequential page term, random-access penalties for index scans,
n·log n sorts for merge joins and build+probe terms for hash joins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .plan import JoinOp, PlanNode, ScanOp

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Cost weights (arbitrary units, PostgreSQL-flavoured ratios)."""

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    rows_per_page: float = 100.0
    hash_build_cost: float = 0.015
    sort_cost: float = 0.012

    # ------------------------------------------------------------------
    def scan_cost(self, base_rows: float, output_rows: float, scan_op: ScanOp) -> float:
        base_rows = max(base_rows, 1.0)
        output_rows = max(output_rows, 0.0)
        if scan_op is ScanOp.INDEX:
            lookup = self.random_page_cost * max(np.log2(base_rows), 1.0)
            return lookup + output_rows * (self.cpu_index_tuple_cost + self.random_page_cost / self.rows_per_page)
        pages = base_rows / self.rows_per_page
        return pages * self.seq_page_cost + base_rows * self.cpu_tuple_cost

    def join_cost(self, left_rows: float, right_rows: float, output_rows: float, join_op: JoinOp) -> float:
        left_rows = max(left_rows, 1.0)
        right_rows = max(right_rows, 1.0)
        output_rows = max(output_rows, 0.0)
        emit = output_rows * self.cpu_tuple_cost
        if join_op is JoinOp.HASH:
            build, probe = min(left_rows, right_rows), max(left_rows, right_rows)
            return build * self.hash_build_cost + probe * self.cpu_operator_cost + emit
        if join_op is JoinOp.MERGE:
            total = left_rows + right_rows
            log_factor = max(np.log2(max(total, 2.0)), 1.0)
            return total * self.sort_cost * log_factor + total * self.cpu_operator_cost + emit
        # Nested loop: every pair is examined.
        return left_rows * right_rows * self.cpu_operator_cost + emit

    def best_join_op(self, left_rows: float, right_rows: float, output_rows: float) -> tuple[JoinOp, float]:
        """Cheapest physical join operator for the given sizes."""
        best_op, best_cost = None, float("inf")
        for op in JoinOp:
            cost = self.join_cost(left_rows, right_rows, output_rows, op)
            if cost < best_cost:
                best_op, best_cost = op, cost
        return best_op, best_cost

    def best_scan_op(self, base_rows: float, output_rows: float, has_filter: bool) -> tuple[ScanOp, float]:
        """Cheapest scan operator (index only pays off for selective filters)."""
        seq = self.scan_cost(base_rows, output_rows, ScanOp.SEQ)
        if not has_filter:
            return ScanOp.SEQ, seq
        index = self.scan_cost(base_rows, output_rows, ScanOp.INDEX)
        return (ScanOp.INDEX, index) if index < seq else (ScanOp.SEQ, seq)

    # ------------------------------------------------------------------
    def plan_cost(self, plan: PlanNode, cardinalities: dict[frozenset, float], base_rows: dict[str, float]) -> float:
        """Total cost of a physical plan given per-subtree cardinalities.

        ``cardinalities`` maps each node's table set to its (estimated or
        true) output cardinality; ``base_rows`` maps table name to its
        unfiltered row count.
        """
        total = 0.0
        for node in plan.nodes_postorder():
            out_rows = cardinalities[node.tables]
            if node.is_scan:
                has_filter = node.filter is not None and len(node.filter) > 0
                op = node.scan_op
                if op is None:
                    op, cost = self.best_scan_op(base_rows[node.table], out_rows, has_filter)
                    node.scan_op = op
                else:
                    cost = self.scan_cost(base_rows[node.table], out_rows, op)
            else:
                left_rows = cardinalities[node.left.tables]
                right_rows = cardinalities[node.right.tables]
                op = node.join_op
                if op is None:
                    op, cost = self.best_join_op(left_rows, right_rows, out_rows)
                    node.join_op = op
                else:
                    cost = self.join_cost(left_rows, right_rows, out_rows, op)
            node.estimated_cost = cost
            total += cost
        return total


DEFAULT_COST_MODEL = CostModel()


class TimingAlignedCostModel(CostModel):
    """A cost model whose operator costs equal the simulated timing.

    Used by the optimal-order oracle: the paper's "Optimal" row is the
    plan that truly minimises (measured) execution time, so the DP must
    optimise the same objective the evaluation measures.  Formulas
    mirror :class:`repro.engine.timing.TimingModel` exactly.
    """

    def __init__(self, timing=None):
        from .timing import DEFAULT_TIMING

        object.__setattr__(self, "timing", timing or DEFAULT_TIMING)

    def scan_cost(self, base_rows: float, output_rows: float, scan_op: ScanOp) -> float:
        t = self.timing
        base_rows = max(base_rows, 0.0)
        output_rows = max(output_rows, 0.0)
        if scan_op is ScanOp.INDEX:
            return t.index_lookup_ms + output_rows * t.index_tuple_ms + output_rows * t.emit_ms
        return base_rows * t.scan_ms + output_rows * t.emit_ms

    def join_cost(self, left_rows: float, right_rows: float, output_rows: float, join_op: JoinOp) -> float:
        t = self.timing
        left_rows, right_rows = max(left_rows, 0.0), max(right_rows, 0.0)
        output_rows = max(output_rows, 0.0)
        cost = output_rows * t.emit_ms
        if join_op is JoinOp.HASH:
            cost += min(left_rows, right_rows) * t.build_ms
            cost += max(left_rows, right_rows) * t.probe_ms
        elif join_op is JoinOp.MERGE:
            total = left_rows + right_rows
            log_factor = max(np.log2(max(total, 2.0)), 1.0)
            cost += total * t.sort_ms * log_factor + total * t.probe_ms
        else:
            cost += left_rows * right_rows * t.pair_ms
        return cost
