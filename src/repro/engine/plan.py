"""Query plan trees.

A plan is a binary tree whose leaves are scans (sequential or index)
over filtered base tables and whose inner nodes are joins (hash, merge
or nested-loop) — exactly the operator set the paper considers
("we omit other physical operations, e.g. aggregate or hash",
Section 3.1).  The same tree type serves as logical plan (operators
unset) and physical plan (operators chosen).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..sql.predicates import Conjunction
from ..storage.schema import JoinRelation

__all__ = ["ScanOp", "JoinOp", "PlanNode", "scan_node", "join_node", "left_deep_plan"]


class ScanOp(Enum):
    SEQ = "SeqScan"
    INDEX = "IndexScan"


class JoinOp(Enum):
    HASH = "HashJoin"
    MERGE = "MergeJoin"
    NESTED_LOOP = "NestLoopJoin"


@dataclass
class PlanNode:
    """One node of a plan tree.

    Scan nodes have ``table``/``filter``/``scan_op`` set and no children;
    join nodes have ``left``/``right``/``join_op``/``join_predicates``.
    ``tables`` always holds the frozenset of base tables under the node.
    """

    tables: frozenset
    # Scan fields
    table: str | None = None
    filter: Conjunction | None = None
    scan_op: ScanOp | None = None
    # Join fields
    left: "PlanNode | None" = None
    right: "PlanNode | None" = None
    join_op: JoinOp | None = None
    join_predicates: list[JoinRelation] = field(default_factory=list)
    # Annotations filled in by estimation / execution
    estimated_cardinality: float | None = None
    true_cardinality: int | None = None
    estimated_cost: float | None = None

    # ------------------------------------------------------------------
    @property
    def is_scan(self) -> bool:
        return self.table is not None

    @property
    def is_join(self) -> bool:
        return self.left is not None

    def children(self) -> list["PlanNode"]:
        if self.is_scan:
            return []
        return [self.left, self.right]

    def nodes_preorder(self) -> list["PlanNode"]:
        """All nodes, root first (the serialization order used by F.iii)."""
        out = [self]
        for child in self.children():
            out.extend(child.nodes_preorder())
        return out

    def nodes_postorder(self) -> list["PlanNode"]:
        out = []
        for child in self.children():
            out.extend(child.nodes_postorder())
        out.append(self)
        return out

    def leaf_tables_in_order(self) -> list[str]:
        """Base tables left-to-right (for left-deep plans: the join order)."""
        if self.is_scan:
            return [self.table]
        return self.left.leaf_tables_in_order() + self.right.leaf_tables_in_order()

    def depth(self) -> int:
        if self.is_scan:
            return 1
        return 1 + max(self.left.depth(), self.right.depth())

    def is_left_deep(self) -> bool:
        if self.is_scan:
            return True
        return self.right.is_scan and self.left.is_left_deep()

    def pretty(self, indent: int = 0) -> str:
        """Human-readable plan rendering (EXPLAIN-style)."""
        pad = "  " * indent
        if self.is_scan:
            op = self.scan_op.value if self.scan_op else "Scan"
            cond = f" on {self.filter}" if self.filter and len(self.filter) else ""
            card = f" (rows={self.true_cardinality})" if self.true_cardinality is not None else ""
            return f"{pad}{op} {self.table}{cond}{card}"
        op = self.join_op.value if self.join_op else "Join"
        preds = ", ".join(str(p) for p in self.join_predicates)
        card = f" (rows={self.true_cardinality})" if self.true_cardinality is not None else ""
        lines = [f"{pad}{op} on [{preds}]{card}"]
        lines.append(self.left.pretty(indent + 1))
        lines.append(self.right.pretty(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()


def scan_node(table: str, filter_conj: Conjunction | None = None, scan_op: ScanOp | None = None) -> PlanNode:
    """Build a scan leaf."""
    return PlanNode(
        tables=frozenset([table]),
        table=table,
        filter=filter_conj or Conjunction(table=table, predicates=()),
        scan_op=scan_op,
    )


def join_node(
    left: PlanNode,
    right: PlanNode,
    join_predicates: list[JoinRelation],
    join_op: JoinOp | None = None,
) -> PlanNode:
    """Build a join over two sub-plans."""
    if left.tables & right.tables:
        raise ValueError("join children overlap in base tables")
    if not join_predicates:
        raise ValueError("join requires at least one join predicate (no cross products)")
    return PlanNode(
        tables=left.tables | right.tables,
        left=left,
        right=right,
        join_op=join_op,
        join_predicates=list(join_predicates),
    )


def left_deep_plan(query, order: list[str], join_op: JoinOp | None = None, scan_op: ScanOp | None = None) -> PlanNode:
    """Build a left-deep plan joining ``order``'s tables in sequence.

    Raises ``ValueError`` when the order is illegal, i.e. some table has
    no join predicate connecting it to the tables already joined — the
    legality notion of the paper's Section 4.3.
    """
    if sorted(order) != sorted(query.tables):
        raise ValueError(f"order {order} does not cover query tables {query.tables}")
    current = scan_node(order[0], query.filter_for(order[0]), scan_op)
    for table in order[1:]:
        joined = current.tables
        predicates = query.joins_between(set(joined), {table})
        if not predicates:
            raise ValueError(f"illegal join order: {table!r} does not join with {sorted(joined)}")
        right = scan_node(table, query.filter_for(table), scan_op)
        current = join_node(current, right, predicates, join_op)
    return current
