"""Deterministic simulated execution timing.

The paper's Tables 2 and 3 report wall-clock totals of executing join
orders in PostgreSQL.  Real wall-clock is neither available offline nor
reproducible, so this module defines a deterministic substitute: each
operator's :class:`WorkReport` is converted to simulated milliseconds
with PostgreSQL-flavoured weights (sequential reads cheap, random index
lookups and per-pair nested-loop work expensive, sorts n·log n).

Because the weights are applied to *true* observed tuple counts, two
plans are ranked exactly as a real system dominated by tuple-processing
costs would rank them — which is the property Tables 2/3 measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .operators import WorkReport

__all__ = ["TimingModel", "DEFAULT_TIMING", "over_limit_penalty_ms", "Stopwatch"]


class Stopwatch:
    """Monotonic duration helper for the few places that *do* measure
    real wall time (examples, benchmarks).

    ``time.time()`` jumps under NTP adjustment, so every duration in the
    repo is measured against the monotonic clock; this tiny class keeps
    the idiom in one place instead of scattering ``time.monotonic()``
    pairs.
    """

    __slots__ = ("_started",)

    def __init__(self):
        self._started = time.monotonic()

    def restart(self) -> None:
        self._started = time.monotonic()

    @property
    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    @property
    def elapsed_ms(self) -> float:
        return 1000.0 * (time.monotonic() - self._started)


@dataclass(frozen=True)
class TimingModel:
    """Cost weights (simulated milliseconds per tuple of work)."""

    scan_ms: float = 0.001          # sequential tuple read
    index_lookup_ms: float = 0.05   # per index-lookup overhead (random IO)
    index_tuple_ms: float = 0.004   # per tuple fetched through an index
    build_ms: float = 0.004         # hash-table insert
    probe_ms: float = 0.002         # hash-table probe
    sort_ms: float = 0.004          # per tuple per log-factor in sorting
    pair_ms: float = 0.0005         # nested-loop pair examination
    emit_ms: float = 0.001          # materializing an output tuple

    def scan_time(self, report: WorkReport, used_index: bool) -> float:
        if used_index:
            lookups = report.extra.get("index_lookups", 1)
            return (
                lookups * self.index_lookup_ms
                + report.tuples_scanned * self.index_tuple_ms
                + report.tuples_emitted * self.emit_ms
            )
        return report.tuples_scanned * self.scan_ms + report.tuples_emitted * self.emit_ms

    def join_time(self, report: WorkReport) -> float:
        time = report.tuples_emitted * self.emit_ms
        time += report.tuples_built * self.build_ms
        time += report.tuples_probed * self.probe_ms
        if report.tuples_sorted:
            log_factor = max(np.log2(max(report.tuples_sorted, 2)), 1.0)
            time += report.tuples_sorted * self.sort_ms * log_factor
        time += report.pairs_examined * self.pair_ms
        return time


DEFAULT_TIMING = TimingModel()


def over_limit_penalty_ms(max_intermediate_rows: int, timing: TimingModel = DEFAULT_TIMING) -> float:
    """Simulated charge for a plan that blew the intermediate-row cap.

    The moral equivalent of the paper's query timeouts: instead of
    executing a pathological order to completion, charge it as if the
    cap's worth of tuples had each been emitted and probed — strictly
    worse than any order that stayed under the cap.  Shared by the
    Table 2/3 harness and the online-adaptation regret gate so both
    penalize runaway orders identically.
    """
    return max_intermediate_rows * (timing.emit_ms + timing.probe_ms)
