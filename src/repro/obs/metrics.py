"""Thread-safe metrics substrate: counters, gauges, mergeable histograms.

Every layer of the system (serving, adaptation, federation, the kernel
profiler, the lock monitor) previously kept its own ad-hoc counters.
This module is the shared substrate they migrate onto:

- :class:`Counter` — monotone accumulator (float increments allowed, so
  second-totals from the kernel profiler fit);
- :class:`Gauge` — last-written value with a ``update_max`` convenience;
- :class:`Histogram` — **fixed-bucket** distribution.  Two histograms
  with identical bounds merge exactly (bucket-wise addition), which is
  what makes per-shard recording equivalent to centralized recording —
  the property the hypothesis tests in ``tests/test_obs.py`` pin down.
  Percentiles are *exact within buckets*: the reported quantile lies in
  the same bucket as the true nearest-rank sample, and never below it;

- :class:`MetricsRegistry` — the named, labeled factory-and-directory
  for all of the above, plus windowed time series: every metric owns a
  bounded :class:`TimeSeriesRing` that :meth:`MetricsRegistry.tick`
  appends to, giving rate-over-time without unbounded growth.

Locking: each metric guards its own state with a private lock; the
registry lock covers only the name→metric directory.  No metric method
calls back into the registry, so the order registry→metric is the only
one that occurs and the hierarchy is trivially cycle-free.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "TimeSeriesRing",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
]

# Default histogram bounds for latencies in seconds: roughly exponential
# from 100 µs to one minute, with an overflow bucket above.  18 buckets
# keeps merge payloads small while the <2.5x bucket ratio bounds the
# percentile quantization error.
DEFAULT_LATENCY_BOUNDS: "tuple[float, ...]" = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

# Points kept per metric time series (one per registry tick).
_SERIES_CAPACITY = 240


class TimeSeriesRing:
    """Bounded ``(timestamp, value...)`` ring; oldest points evicted.

    Not locked itself — the owning metric appends under its own lock and
    hands out copies, so readers never see a half-written point.
    """

    def __init__(self, capacity: int = _SERIES_CAPACITY):
        self._points: "deque[tuple]" = deque(maxlen=max(1, capacity))

    def append(self, point: tuple) -> None:
        self._points.append(point)

    def points(self) -> "list[tuple]":
        return list(self._points)

    def __len__(self) -> int:
        return len(self._points)


class Counter:
    """Monotone accumulator.  ``inc`` rejects negative amounts."""

    kind = "counter"

    def __init__(self, name: str, labels: "dict[str, str]"):
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock
        self.series = TimeSeriesRing()  # guarded-by: _lock

    def inc(self, amount: "float | int" = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def merge(self, other: "Counter") -> None:
        amount = other.value  # taken under other's lock, outside ours
        with self._lock:
            self._value += amount

    def tick(self, now: float) -> None:
        with self._lock:
            self.series.append((now, self._value))

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "name": self.name,
                "labels": dict(self.labels),
                "value": self._value,
                "series": self.series.points(),
            }


class Gauge:
    """Last-written value; ``update_max`` keeps a running high-water mark."""

    kind = "gauge"

    def __init__(self, name: str, labels: "dict[str, str]"):
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock
        self.series = TimeSeriesRing()  # guarded-by: _lock

    def set(self, value: "float | int") -> None:
        with self._lock:
            self._value = float(value)

    def update_max(self, value: "float | int") -> None:
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def merge(self, other: "Gauge") -> None:
        # Merging shard gauges keeps the maximum — the only aggregation
        # that is order-independent for the high-water-mark use case.
        self.update_max(other.value)

    def tick(self, now: float) -> None:
        with self._lock:
            self.series.append((now, self._value))

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "name": self.name,
                "labels": dict(self.labels),
                "value": self._value,
                "series": self.series.points(),
            }


@dataclass(frozen=True)
class HistogramSummary:
    """Frozen view of one histogram: exact count/sum/min/max, bucketed
    percentiles (see :meth:`Histogram.percentile` for the guarantee)."""

    count: int
    sum: float
    min: float
    max: float
    p50: float
    p95: float
    p99: float

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Histogram:
    """Fixed-bucket histogram; memory is O(buckets), never O(samples).

    A sample ``v`` lands in the first bucket whose upper bound is
    ``>= v``; samples above the last bound land in the overflow bucket.
    ``count``/``sum``/``min``/``max`` are tracked exactly, so means are
    exact and only percentiles are quantized.

    **Percentile guarantee** (exact within buckets): ``percentile(q)``
    returns a value in the same bucket as the true nearest-rank sample,
    and never smaller than it — the bucket's upper bound, clipped to the
    observed maximum.  Merging histograms with identical bounds is exact:
    bucket-wise addition loses nothing the buckets hadn't already lost.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: "dict[str, str]",
        bounds: "tuple[float, ...]" = DEFAULT_LATENCY_BOUNDS,
    ):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError(f"histogram {name!r}: empty bounds")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r}: bounds must strictly increase")
        self.name = name
        self.labels = dict(labels)
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # guarded-by: _lock  (last = overflow)
        self._count = 0  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._min = math.inf  # guarded-by: _lock
        self._max = -math.inf  # guarded-by: _lock
        self.series = TimeSeriesRing()  # guarded-by: _lock

    def observe(self, value: "float | int") -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"histogram {self.name!r}: NaN observation")
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> "list[int]":
        with self._lock:
            return list(self._counts)

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} buckets)"
            )
        # Freeze the other side first; never hold both locks at once.
        with other._lock:
            counts = list(other._counts)
            count, total = other._count, other._sum
            low, high = other._min, other._max
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._count += count
            self._sum += total
            if low < self._min:
                self._min = low
            if high > self._max:
                self._max = high

    def percentile(self, q: float) -> "float | None":
        """Nearest-rank percentile, exact within buckets (None if empty)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> "float | None":  # holds: _lock
        if self._count == 0:
            return None
        rank = max(1, math.ceil(q / 100.0 * self._count))
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index == len(self.bounds):
                    return self._max  # overflow bucket: max is the only bound
                return min(self.bounds[index], self._max)
        return self._max

    def summary(self) -> "HistogramSummary | None":
        with self._lock:
            if self._count == 0:
                return None
            return HistogramSummary(
                count=self._count,
                sum=self._sum,
                min=self._min,
                max=self._max,
                p50=self._percentile_locked(50.0),
                p95=self._percentile_locked(95.0),
                p99=self._percentile_locked(99.0),
            )

    def tick(self, now: float) -> None:
        with self._lock:
            self.series.append((now, self._count, self._sum))

    def to_dict(self) -> dict:
        with self._lock:
            empty = self._count == 0
            return {
                "kind": self.kind,
                "name": self.name,
                "labels": dict(self.labels),
                "count": self._count,
                "sum": self._sum,
                "min": None if empty else self._min,
                "max": None if empty else self._max,
                "p50": self._percentile_locked(50.0),
                "p95": self._percentile_locked(95.0),
                "p99": self._percentile_locked(99.0),
                "bounds": list(self.bounds),
                "bucket_counts": list(self._counts),
                "series": self.series.points(),
            }


def _label_key(labels: "dict[str, str] | None") -> "tuple[tuple[str, str], ...]":
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Named, labeled directory of metrics; get-or-create semantics.

    The same ``(name, labels)`` pair always returns the same metric
    object, so call sites never cache handles defensively.  Asking for
    an existing name with a different metric kind (or histogram bounds)
    is a programming error and raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: "dict[tuple, object]" = {}  # guarded-by: _lock

    def _get_or_create(self, cls, name: str, labels: "dict[str, str] | None", **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, dict(labels or {}), **kwargs)
                self._metrics[key] = metric
                return metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, not {cls.kind}"
            )
        bounds = kwargs.get("bounds")
        if bounds is not None and tuple(float(b) for b in bounds) != metric.bounds:
            raise ValueError(f"histogram {name!r} already registered with other bounds")
        return metric

    def counter(self, name: str, labels: "dict[str, str] | None" = None) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, labels: "dict[str, str] | None" = None) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: "dict[str, str] | None" = None,
        bounds: "tuple[float, ...]" = DEFAULT_LATENCY_BOUNDS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, bounds=bounds)

    def metrics(self) -> "list[object]":
        with self._lock:
            return list(self._metrics.values())

    def find(self, name: str, labels: "dict[str, str] | None" = None):
        """Existing metric for ``(name, labels)``, or None (no creation)."""
        with self._lock:
            return self._metrics.get((name, _label_key(labels)))

    def tick(self, now: "float | None" = None) -> None:
        """Append one time-series point to every metric's ring."""
        if now is None:
            now = time.monotonic()
        for metric in self.metrics():  # snapshot outside each metric's lock
            metric.tick(now)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry (e.g. a per-shard one) into this one.

        Counters and histograms add; gauges keep the maximum.  Metrics
        absent here are created with the other side's kind and bounds.
        """
        for metric in other.metrics():
            kwargs = {"bounds": metric.bounds} if isinstance(metric, Histogram) else {}
            mine = self._get_or_create(type(metric), metric.name, metric.labels, **kwargs)
            mine.merge(metric)

    def snapshot(self) -> "list[dict]":
        """JSON-able dump of every metric, sorted by (name, labels)."""
        entries = [metric.to_dict() for metric in self.metrics()]
        entries.sort(key=lambda e: (e["name"], sorted(e["labels"].items())))
        return entries
