"""Structured trace spans with request-scoped trace IDs.

A *trace* is one causally-linked unit of work — a serving request, an
adaptation cycle, a federation round — identified by an integer trace
ID minted by :meth:`TraceRecorder.new_trace`.  The ID is plain data: it
travels across threads inside the request object / queue tuple, so a
span recorded by a drain worker or the feedback thread lands on the
same trace as the client-side enqueue.  *Spans* are named, timed
intervals on a trace (zero-duration spans are *events*, e.g.
``cache.hit``), recorded into one bounded ring.

Disabled-path discipline (same as ``nn.kernels.profiled``): the gate is
a single int attribute, ``TraceRecorder.on``.  When it is 0,
``new_trace`` returns 0, ``span`` returns the module-level
:data:`NOOP_SPAN` singleton, and ``record``/``event`` return before
touching the clock — no allocation, no lock, one int check.

Span lifecycle outside this package must use the context-manager form
(``with tracer.span(tid, name) as sp``), which cannot leak an open
span; the imperative ``start_span``/``end_span`` pair exists for the
recorder's own plumbing and is rejected elsewhere by the analyzer's
``obs-discipline`` checker.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque

__all__ = ["Span", "TraceRecorder", "NOOP_SPAN", "maybe_span"]


class Span:
    """One recorded interval: immutable once in the ring."""

    __slots__ = ("trace_id", "name", "start_s", "end_s", "thread", "attrs")

    def __init__(
        self,
        trace_id: int,
        name: str,
        start_s: float,
        end_s: float,
        thread: str,
        attrs: "dict | None" = None,
    ):
        self.trace_id = trace_id
        self.name = name
        self.start_s = start_s
        self.end_s = end_s
        self.thread = thread
        self.attrs = attrs

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def is_event(self) -> bool:
        return self.end_s == self.start_s

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "thread": self.thread,
            "attrs": self.attrs or {},
        }

    def __repr__(self) -> str:  # debugging aid only
        return (
            f"Span(trace={self.trace_id}, name={self.name!r}, "
            f"dur={self.duration_s * 1e3:.3f}ms)"
        )


class _NoopSpan:
    """Shared do-nothing span: the disabled path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """Open span handle; records itself on ``__exit__``/``end_span``."""

    __slots__ = ("_recorder", "trace_id", "name", "start_s", "attrs")

    def __init__(self, recorder: "TraceRecorder", trace_id: int, name: str):
        self._recorder = recorder
        self.trace_id = trace_id
        self.name = name
        self.start_s = 0.0
        self.attrs: "dict | None" = None

    def set(self, key: str, value) -> "_LiveSpan":
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value
        return self

    def __enter__(self) -> "_LiveSpan":
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.set("error", exc_type.__name__)
        self._recorder.end_span(self)
        return False


class TraceRecorder:
    """Bounded ring of spans; thread-safe; zero-alloc when disabled."""

    def __init__(self, capacity: int = 4096, enabled: bool = True):
        self._lock = threading.Lock()
        self._ring: "deque[Span]" = deque(maxlen=max(1, capacity))  # guarded-by: _lock
        self._dropped = 0  # guarded-by: _lock
        self._ids = itertools.count(1)
        # Hot-path gate, read without the lock (single int, same
        # discipline as nn.kernels._PROFILE_DEPTH).
        self.on = 1 if enabled else 0

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.on = 1

    def disable(self) -> None:
        self.on = 0

    def new_trace(self) -> int:
        """Mint a trace ID (0 — the "not traced" ID — when disabled)."""
        if not self.on:
            return 0
        return next(self._ids)

    # -- span recording -------------------------------------------------
    def span(self, trace_id: int, name: str):
        """Context manager timing one interval on ``trace_id``.

        ``with tracer.span(tid, "decode") as sp: sp.set("replica", 0)``.
        The disabled path returns the shared :data:`NOOP_SPAN`.
        """
        if not self.on or not trace_id:
            return NOOP_SPAN
        return _LiveSpan(self, trace_id, name)

    def start_span(self, trace_id: int, name: str):
        """Imperative form of :meth:`span` (obs-internal; callers
        elsewhere must use the context-manager form — enforced by the
        ``obs-discipline`` checker, because a returned handle can leak
        without its ``end_span``)."""
        handle = self.span(trace_id, name)
        if handle is not NOOP_SPAN:
            handle.start_s = time.perf_counter()
        return handle

    def end_span(self, handle) -> None:
        """Close and record a handle from :meth:`start_span`."""
        if handle is NOOP_SPAN:
            return
        self.record(
            handle.trace_id,
            handle.name,
            handle.start_s,
            time.perf_counter(),
            handle.attrs,
        )

    def record(
        self,
        trace_id: int,
        name: str,
        start_s: float,
        end_s: float,
        attrs: "dict | None" = None,
    ) -> None:
        """Append a finished span (used for derived spans, e.g. queue
        wait reconstructed from a request's enqueue timestamp)."""
        if not self.on or not trace_id:
            return
        span = Span(trace_id, name, start_s, end_s, threading.current_thread().name, attrs)
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self._dropped += 1
            self._ring.append(span)

    def event(self, trace_id: int, name: str, attrs: "dict | None" = None) -> None:
        """Zero-duration span (``cache.hit``, ``gate.accept``, ...)."""
        if not self.on or not trace_id:
            return
        now = time.perf_counter()
        self.record(trace_id, name, now, now, attrs)

    # -- readers --------------------------------------------------------
    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def spans(self) -> "list[Span]":
        with self._lock:
            return list(self._ring)

    def trace(self, trace_id: int) -> "list[Span]":
        return sorted(
            (s for s in self.spans() if s.trace_id == trace_id),
            key=lambda s: (s.start_s, s.end_s),
        )

    def traces(self) -> "dict[int, list[Span]]":
        grouped: "dict[int, list[Span]]" = {}
        for span in self.spans():
            grouped.setdefault(span.trace_id, []).append(span)
        for spans in grouped.values():
            spans.sort(key=lambda s: (s.start_s, s.end_s))
        return grouped

    def complete_traces(self, required: "set[str]") -> "list[int]":
        """Trace IDs whose span-name set covers ``required``."""
        return sorted(
            tid
            for tid, spans in self.traces().items()
            if required <= {s.name for s in spans}
        )

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._dropped = 0

    def to_dict(self) -> dict:
        with self._lock:
            spans = list(self._ring)
            dropped = self._dropped
            capacity = self._ring.maxlen
        return {
            "capacity": capacity,
            "dropped": dropped,
            "spans": [span.to_dict() for span in spans],
        }


def maybe_span(telemetry, trace_id: int, name: str):
    """``telemetry.tracer.span(...)`` tolerating ``telemetry=None``.

    The standard guard for call sites where telemetry is optional:
    ``with maybe_span(self.telemetry, tid, "feedback.label"): ...``.
    """
    if telemetry is None:
        return NOOP_SPAN
    return telemetry.tracer.span(trace_id, name)
