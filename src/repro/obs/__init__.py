"""Unified telemetry: metrics registry, trace spans, per-tenant SLOs.

:class:`Telemetry` bundles the three observability primitives behind
one handle that threads through the serving, adaptation, and federation
layers:

- ``telemetry.registry`` — :class:`~repro.obs.metrics.MetricsRegistry`
  of named counters/gauges/histograms (always live: it replaces the
  layers' former ad-hoc counters, so its cost *is* the old cost);
- ``telemetry.tracer`` — :class:`~repro.obs.trace.TraceRecorder` for
  request-scoped spans; gated by a single int (``telemetry.on``) with a
  zero-allocation disabled path;
- ``telemetry.slo`` — :class:`~repro.obs.slo.SLOTracker` of per-tenant
  rolling error-budget burn rates, surfaced in ``FleetReport``.

``telemetry=None`` everywhere means "no telemetry at all" and is the
baseline the CI overhead smoke compares against;
``Telemetry(TelemetryConfig(enabled=False))`` keeps the handle but
takes the disabled fast path — within 3% of the None baseline by CI
contract (see ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .export import (
    read_snapshot,
    render_snapshot,
    telemetry_snapshot,
    write_snapshot,
)
from .metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
)
from .slo import SLOObjective, SLOStatus, SLOTracker
from .trace import NOOP_SPAN, Span, TraceRecorder, maybe_span

__all__ = [
    "Telemetry",
    "TelemetryConfig",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "DEFAULT_LATENCY_BOUNDS",
    "TraceRecorder",
    "Span",
    "NOOP_SPAN",
    "maybe_span",
    "SLOTracker",
    "SLOObjective",
    "SLOStatus",
    "telemetry_snapshot",
    "write_snapshot",
    "read_snapshot",
    "render_snapshot",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """Construction-time knobs for a :class:`Telemetry` bundle."""

    enabled: bool = True          # tracing + SLO recording on?
    trace_capacity: int = 4096    # span ring size
    slo_latency_s: float = 0.25   # default per-tenant objective ...
    slo_target: float = 0.95      # ... 95% of requests under 250 ms
    slo_window: int = 1024        # rolling requests per tenant

    def __post_init__(self):
        if self.trace_capacity < 1:
            raise ValueError(f"trace_capacity must be >= 1, got {self.trace_capacity}")


class Telemetry:
    """One registry + tracer + SLO tracker, shared across layers."""

    def __init__(self, config: "TelemetryConfig | None" = None):
        self.config = config or TelemetryConfig()
        self.registry = MetricsRegistry()
        self.tracer = TraceRecorder(
            capacity=self.config.trace_capacity, enabled=self.config.enabled
        )
        self.slo = SLOTracker(
            objective=SLOObjective(
                latency_s=self.config.slo_latency_s, target=self.config.slo_target
            ),
            window=self.config.slo_window,
        )

    @property
    def on(self) -> int:
        """Hot-path gate (0/1): read this, not ``config.enabled``."""
        return self.tracer.on

    def enable(self) -> None:
        self.tracer.enable()

    def disable(self) -> None:
        self.tracer.disable()

    @classmethod
    def disabled(cls, config: "TelemetryConfig | None" = None) -> "Telemetry":
        base = config or TelemetryConfig()
        if base.enabled:
            base = TelemetryConfig(
                enabled=False,
                trace_capacity=base.trace_capacity,
                slo_latency_s=base.slo_latency_s,
                slo_target=base.slo_target,
                slo_window=base.slo_window,
            )
        return cls(base)

    def snapshot(self, tick: bool = True) -> dict:
        return telemetry_snapshot(self, tick=tick)
