"""Per-tenant latency SLO tracking with rolling error-budget burn rate.

The ROADMAP's fleet open item: a federation round that helps the median
tenant but violates one tenant's latency SLO must be *visible and
gateable*.  :class:`SLOTracker` is the substrate: the serving layer
records every completed request's latency under the tenant's name, and
the tracker keeps a rolling window of meet/violate outcomes per tenant.

Semantics (window = the last ``window`` requests per tenant):

- **objective** — "fraction ``target`` of requests complete within
  ``latency_s``" (e.g. 95% under 250 ms);
- **error budget** — the allowed violation fraction, ``1 - target``;
- **burn rate** — observed violation fraction divided by the budget.
  1.0 means violations arrive exactly at the sustainable rate; above
  1.0 the tenant is **breached** — the window's violation fraction
  exceeds the objective's allowance.

A rolling request-count window (rather than wall-clock) keeps the math
deterministic under simulated load and free of clock reads on the
record path.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

__all__ = ["SLOObjective", "SLOStatus", "SLOTracker"]


@dataclass(frozen=True)
class SLOObjective:
    """``target`` fraction of requests must finish within ``latency_s``."""

    latency_s: float = 0.25
    target: float = 0.95

    def __post_init__(self):
        if not self.latency_s > 0:
            raise ValueError(f"SLO latency must be positive, got {self.latency_s}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1), got {self.target}")

    @property
    def budget(self) -> float:
        """Allowed violation fraction (the error budget)."""
        return 1.0 - self.target


@dataclass(frozen=True)
class SLOStatus:
    """Frozen per-tenant view at one instant."""

    tenant: str
    objective: SLOObjective
    total: int            # lifetime requests recorded
    window: int           # requests currently in the rolling window
    violations: int       # violations within the window
    burn_rate: float      # violation_rate / objective.budget

    @property
    def violation_rate(self) -> float:
        return self.violations / self.window if self.window else 0.0

    @property
    def breached(self) -> bool:
        return self.burn_rate > 1.0

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "latency_s": self.objective.latency_s,
            "target": self.objective.target,
            "total": self.total,
            "window": self.window,
            "violations": self.violations,
            "violation_rate": self.violation_rate,
            "burn_rate": self.burn_rate,
            "breached": self.breached,
        }


class _TenantWindow:
    """Rolling outcome ring for one tenant (locked by the tracker)."""

    __slots__ = ("objective", "outcomes", "total", "violations")

    def __init__(self, objective: SLOObjective, window: int):
        self.objective = objective
        self.outcomes: "deque[bool]" = deque(maxlen=window)
        self.total = 0
        self.violations = 0  # violations within `outcomes` (kept in sync)

    def record(self, latency_s: float) -> None:
        violated = latency_s > self.objective.latency_s
        if len(self.outcomes) == self.outcomes.maxlen and self.outcomes[0]:
            self.violations -= 1  # the evicted outcome was a violation
        self.outcomes.append(violated)
        self.total += 1
        if violated:
            self.violations += 1


class SLOTracker:
    """Thread-safe rolling SLO state for any number of tenants.

    Tenants appear on first :meth:`record`; per-tenant objectives may be
    set up front via :meth:`set_objective` (changing an objective resets
    that tenant's window — old outcomes were judged against old terms).
    """

    def __init__(self, objective: "SLOObjective | None" = None, window: int = 1024):
        if window < 1:
            raise ValueError(f"SLO window must be >= 1, got {window}")
        self.default_objective = objective or SLOObjective()
        self.window = window
        self._lock = threading.Lock()
        self._tenants: "dict[str, _TenantWindow]" = {}  # guarded-by: _lock

    def set_objective(self, tenant: str, objective: SLOObjective) -> None:
        with self._lock:
            self._tenants[tenant] = _TenantWindow(objective, self.window)

    def record(self, tenant: str, latency_s: float) -> None:
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                state = _TenantWindow(self.default_objective, self.window)
                self._tenants[tenant] = state
            state.record(latency_s)

    def _status_locked(self, tenant: str, state: _TenantWindow) -> SLOStatus:  # holds: _lock
        window = len(state.outcomes)
        rate = state.violations / window if window else 0.0
        return SLOStatus(
            tenant=tenant,
            objective=state.objective,
            total=state.total,
            window=window,
            violations=state.violations,
            burn_rate=rate / state.objective.budget,
        )

    def status(self, tenant: str) -> "SLOStatus | None":
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                return None
            return self._status_locked(tenant, state)

    def statuses(self) -> "dict[str, SLOStatus]":
        with self._lock:
            return {
                tenant: self._status_locked(tenant, state)
                for tenant, state in self._tenants.items()
            }

    def breached(self) -> "tuple[str, ...]":
        """Tenants currently burning error budget faster than allowed."""
        return tuple(
            tenant
            for tenant, status in sorted(self.statuses().items())
            if status.breached
        )

    def to_dict(self) -> dict:
        return {
            "window": self.window,
            "tenants": {
                tenant: status.to_dict()
                for tenant, status in sorted(self.statuses().items())
            },
        }
