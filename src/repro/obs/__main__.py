"""CLI: ``python -m repro.obs SNAPSHOT.json [--section ...]``.

Renders a telemetry snapshot file (written by
:func:`repro.obs.write_snapshot`, e.g. by ``examples/serve_demo.py`` or
``benchmarks/bench_obs_overhead.py``) as text: the metrics registry,
per-tenant SLO state, and recent traces.  ``--format json`` re-emits
the (validated) payload for piping into other tools.
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import read_snapshot, render_metrics, render_slo, render_snapshot, render_traces


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render a telemetry snapshot (metrics / SLO / traces).",
    )
    parser.add_argument("snapshot", help="path to a snapshot JSON file")
    parser.add_argument(
        "--section",
        choices=("all", "metrics", "slo", "traces"),
        default="all",
        help="which part of the snapshot to render (default: all)",
    )
    parser.add_argument(
        "--max-traces",
        type=int,
        default=8,
        metavar="N",
        help="most recent traces to render (default: 8)",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    args = parser.parse_args(argv)

    try:
        payload = read_snapshot(args.snapshot)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: cannot read snapshot {args.snapshot!r}: {error}", file=sys.stderr)
        return 1

    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    if args.section == "metrics":
        print(render_metrics(payload))
    elif args.section == "slo":
        print(render_slo(payload))
    elif args.section == "traces":
        print(render_traces(payload, max_traces=args.max_traces))
    else:
        print(render_snapshot(payload, max_traces=args.max_traces))
    return 0


if __name__ == "__main__":
    sys.exit(main())
