"""Telemetry snapshot exporters and text renderers.

One JSON payload carries the whole telemetry state — registry metrics,
trace ring, SLO windows — written atomically (temp file + fsync +
``os.replace``, the ``BENCH_*.json`` idiom) so a reader never sees a
torn snapshot.  ``python -m repro.obs`` renders these files; the same
renderers back the tests so the CLI output is pinned.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = [
    "SNAPSHOT_VERSION",
    "telemetry_snapshot",
    "write_snapshot",
    "read_snapshot",
    "render_metrics",
    "render_traces",
    "render_slo",
    "render_snapshot",
]

SNAPSHOT_VERSION = 1


def telemetry_snapshot(telemetry, tick: bool = True) -> dict:
    """JSON-able dump of a :class:`repro.obs.Telemetry` bundle.

    ``tick=True`` (default) appends one time-series point to every
    metric first, so even a single end-of-run snapshot carries a
    non-empty series.
    """
    if tick:
        telemetry.registry.tick()
    return {
        "version": SNAPSHOT_VERSION,
        "enabled": bool(telemetry.on),
        "metrics": telemetry.registry.snapshot(),
        "traces": telemetry.tracer.to_dict(),
        "slo": telemetry.slo.to_dict(),
    }


def write_snapshot(path: "str | os.PathLike", payload: dict) -> Path:
    """Atomically write ``payload`` as JSON; returns the final path."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def read_snapshot(path: "str | os.PathLike") -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(f"unsupported snapshot version: {version!r}")
    return payload


# -- text renderers (shared by the CLI and tests) -----------------------

def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def render_metrics(payload: dict) -> str:
    entries = payload.get("metrics", [])
    if not entries:
        return "metrics: (none)"
    lines = ["metrics:"]
    width = max(len(e["name"] + _format_labels(e["labels"])) for e in entries)
    for entry in entries:
        label = f"{entry['name']}{_format_labels(entry['labels'])}"
        if entry["kind"] == "histogram":
            detail = (
                f"count={entry['count']} mean="
                f"{_format_value(entry['sum'] / entry['count'] if entry['count'] else None)}"
                f" p50={_format_value(entry['p50'])}"
                f" p95={_format_value(entry['p95'])}"
                f" p99={_format_value(entry['p99'])}"
                f" max={_format_value(entry['max'])}"
            )
        else:
            detail = f"{entry['kind']} {_format_value(entry['value'])}"
        lines.append(f"  {label:<{width}}  {detail}")
    return "\n".join(lines)


def render_traces(payload: dict, max_traces: int = 8) -> str:
    traces_blob = payload.get("traces", {})
    spans = traces_blob.get("spans", [])
    if not spans:
        return "traces: (none)"
    grouped: "dict[int, list[dict]]" = {}
    for span in spans:
        grouped.setdefault(span["trace_id"], []).append(span)
    shown = sorted(grouped)[-max_traces:]
    lines = [
        f"traces: {len(grouped)} recorded, {traces_blob.get('dropped', 0)} dropped"
        + (f", last {len(shown)} shown" if len(shown) < len(grouped) else "")
    ]
    for trace_id in shown:
        trace = sorted(grouped[trace_id], key=lambda s: (s["start_s"], s["end_s"]))
        origin = trace[0]["start_s"]
        lines.append(f"  trace {trace_id}:")
        for span in trace:
            offset_ms = (span["start_s"] - origin) * 1e3
            duration_ms = (span["end_s"] - span["start_s"]) * 1e3
            attrs = span.get("attrs") or {}
            suffix = "".join(f" {k}={v}" for k, v in sorted(attrs.items()))
            shape = (
                f"@{offset_ms:9.3f}ms  event"
                if duration_ms == 0
                else f"@{offset_ms:9.3f}ms  {duration_ms:9.3f}ms"
            )
            lines.append(f"    {shape}  {span['name']}{suffix}  [{span['thread']}]")
    return "\n".join(lines)


def render_slo(payload: dict) -> str:
    tenants = payload.get("slo", {}).get("tenants", {})
    if not tenants:
        return "slo: (no tenants)"
    lines = ["slo:"]
    width = max(len(name) for name in tenants)
    for name in sorted(tenants):
        status = tenants[name]
        flag = "  BREACHED" if status["breached"] else ""
        lines.append(
            f"  {name:<{width}}  target {status['target']:.0%} < "
            f"{status['latency_s'] * 1e3:g}ms | window {status['window']}"
            f" | violations {status['violations']}"
            f" ({status['violation_rate']:.1%})"
            f" | burn {status['burn_rate']:.2f}x{flag}"
        )
    return "\n".join(lines)


def render_snapshot(payload: dict, max_traces: int = 8) -> str:
    state = "enabled" if payload.get("enabled") else "disabled"
    return "\n".join(
        [
            f"telemetry snapshot (v{payload.get('version')}, tracing {state})",
            "",
            render_metrics(payload),
            "",
            render_slo(payload),
            "",
            render_traces(payload, max_traces=max_traces),
        ]
    )
