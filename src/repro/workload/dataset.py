"""Dataset containers and train/validation/test splitting.

The paper uses 90/10 train/validation splits of generated queries with
the JOB queries as the test set; for JoinSel it uses 85/10/5.  These
helpers implement the deterministic splitting and simple batching used
by the trainers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .labeler import LabeledQuery

__all__ = ["QueryDataset", "split_dataset", "traffic_stream"]


@dataclass
class QueryDataset:
    """An ordered collection of labeled queries."""

    items: list[LabeledQuery]

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return QueryDataset(self.items[index])
        return self.items[index]

    def __iter__(self):
        return iter(self.items)

    def with_optimal_order(self) -> "QueryDataset":
        """Subset having a JoinSel label."""
        return QueryDataset([q for q in self.items if q.optimal_order is not None])

    def batches(self, batch_size: int, rng: np.random.Generator | None = None):
        """Yield shuffled batches of items."""
        order = np.arange(len(self.items))
        if rng is not None:
            rng.shuffle(order)
        for start in range(0, len(order), batch_size):
            yield [self.items[i] for i in order[start:start + batch_size]]

    def shuffled(self, rng: np.random.Generator) -> "QueryDataset":
        order = rng.permutation(len(self.items))
        return QueryDataset([self.items[i] for i in order])


def split_dataset(
    dataset: QueryDataset | list[LabeledQuery],
    fractions: tuple[float, ...] = (0.9, 0.1),
    seed: int = 0,
) -> tuple[QueryDataset, ...]:
    """Split into len(fractions) parts (fractions must sum to ~1)."""
    items = dataset.items if isinstance(dataset, QueryDataset) else list(dataset)
    if abs(sum(fractions) - 1.0) > 1e-6:
        raise ValueError(f"fractions must sum to 1, got {sum(fractions)}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(items))
    shuffled = [items[i] for i in order]
    out = []
    start = 0
    for i, fraction in enumerate(fractions):
        if i == len(fractions) - 1:
            out.append(QueryDataset(shuffled[start:]))
        else:
            count = int(round(fraction * len(items)))
            out.append(QueryDataset(shuffled[start:start + count]))
            start += count
    return tuple(out)


def traffic_stream(
    pool: list[LabeledQuery], occurrences: int = 1, seed: int = 0
) -> list[tuple[int, LabeledQuery]]:
    """A shuffled serving stream of ``(pool index, item)`` pairs.

    Repeats every pool entry ``occurrences`` times and shuffles
    deterministically — the request schedule serving benchmarks and the
    fleet stress tests drive through ``OptimizerService.optimize``.
    Returning the pool index lets callers attribute each response back
    to its query (e.g. for latency ledgers) even after shuffling.
    """
    if occurrences < 1:
        raise ValueError(f"occurrences must be >= 1, got {occurrences}")
    stream = [(index, item) for index, item in enumerate(pool) for _ in range(occurrences)]
    rng = np.random.default_rng(seed)
    return [stream[i] for i in rng.permutation(len(stream))]
