"""Query labeling: true cardinalities, true costs, optimal join orders.

The paper's training data is (E(P), Card, Cost, P_t): for every query it
derives the initial plan, executes it in PostgreSQL to obtain the true
cardinality and cost of *every sub-plan node*, and (for queries joining
at most 8 tables) derives the optimal join order with ECQO.

``QueryLabeler`` reproduces that: the initial plan comes from the
classical planner, execution in :mod:`repro.engine` yields per-node true
cardinalities and simulated per-node latencies (the cost labels), and
:func:`repro.optimizer.optimal_join_order` supplies the JoinSel label.

Skips are *accounted for*, not swallowed: a query is only dropped for
the two well-understood reasons — execution exceeded the intermediate
row cap (:class:`ExecutionLimitError`) or the join graph is disconnected
(:class:`DisconnectedQueryError`) — and the reason is recorded on the
labeler (:attr:`QueryLabeler.last_skip_reason`, :attr:`skip_counts`) so
callers such as the serving feedback loop can report why experience was
rejected.  Any other error is a genuine planner/connectivity bug and
propagates.  When only the optimal-order derivation is skipped, the
query is still labeled and the reason lands in ``extras``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.executor import ExecutionLimitError, execute_plan
from ..engine.plan import PlanNode
from ..errors import DisconnectedQueryError
from ..optimizer.planner import PostgresStylePlanner, plan_with_order
from ..optimizer.selectivity import HistogramEstimator, TrueCardinalityOracle
from ..optimizer.optimal import optimal_join_order
from ..sql.query import Query
from ..storage.catalog import Database

__all__ = ["LabeledQuery", "QueryLabeler", "SKIP_OVER_LIMIT", "SKIP_DISCONNECTED"]

# Canonical skip-reason labels (keys of QueryLabeler.skip_counts and the
# values of LabeledQuery.extras["optimal_order_skip"]).
SKIP_OVER_LIMIT = "over_limit"
SKIP_DISCONNECTED = "disconnected"


@dataclass
class LabeledQuery:
    """A query with its initial plan and ground-truth labels.

    ``node_cardinalities``/``node_costs`` follow the plan's preorder
    node ordering (root first); costs are cumulative per sub-plan (the
    simulated latency of executing the subtree), matching the paper's
    "cardinality and cost of the sub-plan rooted at each node".
    """

    query: Query
    plan: PlanNode
    node_cardinalities: list[int]
    node_costs: list[float]
    total_time_ms: float
    optimal_order: list[str] | None = None
    extras: dict = field(default_factory=dict)

    @property
    def cardinality(self) -> int:
        return self.node_cardinalities[0]

    @property
    def cost(self) -> float:
        return self.node_costs[0]

    @property
    def num_nodes(self) -> int:
        return len(self.node_cardinalities)


def _subtree_costs(plan: PlanNode, node_times: list[float]) -> list[float]:
    """Cumulative per-subtree latency, preorder-aligned with node_times."""
    order = plan.nodes_preorder()
    time_of = {id(node): t for node, t in zip(order, node_times)}

    memo: dict[int, float] = {}

    def total(node: PlanNode) -> float:
        if id(node) not in memo:
            memo[id(node)] = time_of[id(node)] + sum(total(c) for c in node.children())
        return memo[id(node)]

    return [total(node) for node in order]


class QueryLabeler:
    """Labels queries against a database."""

    def __init__(
        self,
        db: Database,
        planner: PostgresStylePlanner | None = None,
        max_optimal_tables: int = 8,
        max_intermediate_rows: int | None = 5_000_000,
    ):
        self.db = db
        self.planner = planner or PostgresStylePlanner(db)
        self.max_optimal_tables = max_optimal_tables
        self.max_intermediate_rows = max_intermediate_rows
        # Why the last label()/label_with_order() call returned None
        # (SKIP_* constant), and running totals per reason.  Callers that
        # need per-query accounting (the feedback loop) read these.
        self.last_skip_reason: str | None = None
        self.last_skip_detail: str | None = None
        self.skip_counts: dict[str, int] = {}
        self._order_estimator: HistogramEstimator | None = None

    # ------------------------------------------------------------------
    def _record_skip(self, reason: str, error: BaseException) -> None:
        self.last_skip_reason = reason
        self.last_skip_detail = str(error)
        self.skip_counts[reason] = self.skip_counts.get(reason, 0) + 1

    def _derive_optimal(self, query: Query, extras: dict) -> list[str] | None:
        """The ECQO optimal-order label; skip reasons land in ``extras``."""
        if query.num_tables > self.max_optimal_tables:
            return None
        try:
            oracle = TrueCardinalityOracle(
                self.db, max_intermediate_rows=self.max_intermediate_rows
            )
            return optimal_join_order(query, self.db, oracle=oracle)
        except ExecutionLimitError as error:
            extras["optimal_order_skip"] = SKIP_OVER_LIMIT
            extras["optimal_order_skip_detail"] = str(error)
        except DisconnectedQueryError as error:
            extras["optimal_order_skip"] = SKIP_DISCONNECTED
            extras["optimal_order_skip_detail"] = str(error)
        return None

    def label(self, query: Query, with_optimal_order: bool = False) -> LabeledQuery | None:
        """Label one query; returns None when execution exceeds limits.

        The initial plan P is the classical planner's choice (the paper
        provides "Q's initial plan" from the existing DBMS).  Only the
        two well-understood skip conditions return None (with the reason
        recorded on the labeler); other errors propagate — they are bugs,
        not over-limit queries.
        """
        self.last_skip_reason = self.last_skip_detail = None
        try:
            planned = self.planner.plan(query)
            result = execute_plan(
                planned.plan, self.db, max_intermediate_rows=self.max_intermediate_rows
            )
        except ExecutionLimitError as error:
            self._record_skip(SKIP_OVER_LIMIT, error)
            return None
        except DisconnectedQueryError as error:
            self._record_skip(SKIP_DISCONNECTED, error)
            return None

        extras: dict = {}
        optimal = None
        if with_optimal_order:
            optimal = self._derive_optimal(query, extras)

        return LabeledQuery(
            query=query,
            plan=planned.plan,
            node_cardinalities=result.node_cardinalities,
            node_costs=_subtree_costs(planned.plan, result.node_times),
            total_time_ms=result.simulated_ms,
            optimal_order=optimal,
            extras=extras,
        )

    def label_with_order(
        self, query: Query, order: list[str], with_optimal_order: bool = False
    ) -> LabeledQuery | None:
        """Label the execution of an externally-chosen join order.

        The serving feedback path uses this to turn a *served* join order
        into fresh (E(P), Card, Cost, P_t) experience: the order becomes
        a left-deep physical plan (operators chosen by the classical cost
        model, exactly like the Table 2 execution harness), the plan is
        executed under the labeler's intermediate-row bound, and the
        optimal-order label is derived like :meth:`label` does.  Returns
        None with the skip reason recorded for over-limit/disconnected;
        an *illegal* order over a connected graph raises ``ValueError`` —
        a serving layer that emitted one has a bug worth surfacing.
        """
        self.last_skip_reason = self.last_skip_detail = None
        if not query.is_connected():
            # left_deep_plan would report this as an "illegal join
            # order" ValueError; classify it as what it is — no order
            # over this query is executable.
            self._record_skip(
                SKIP_DISCONNECTED,
                DisconnectedQueryError(f"query join graph over {query.tables} is disconnected"),
            )
            return None
        if self._order_estimator is None:
            self._order_estimator = HistogramEstimator(self.db)
        try:
            plan = plan_with_order(query, order, self._order_estimator)
            result = execute_plan(
                plan, self.db, max_intermediate_rows=self.max_intermediate_rows
            )
        except ExecutionLimitError as error:
            self._record_skip(SKIP_OVER_LIMIT, error)
            return None
        except DisconnectedQueryError as error:
            self._record_skip(SKIP_DISCONNECTED, error)
            return None

        extras: dict = {"served_order": list(order)}
        optimal = None
        if with_optimal_order:
            optimal = self._derive_optimal(query, extras)

        return LabeledQuery(
            query=query,
            plan=plan,
            node_cardinalities=result.node_cardinalities,
            node_costs=_subtree_costs(plan, result.node_times),
            total_time_ms=result.simulated_ms,
            optimal_order=optimal,
            extras=extras,
        )

    def label_many(
        self, queries: list[Query], with_optimal_order: bool = False
    ) -> list[LabeledQuery]:
        """Label a workload, dropping (and counting) over-limit queries."""
        labeled = []
        for query in queries:
            item = self.label(query, with_optimal_order=with_optimal_order)
            if item is not None:
                labeled.append(item)
        return labeled
