"""Query labeling: true cardinalities, true costs, optimal join orders.

The paper's training data is (E(P), Card, Cost, P_t): for every query it
derives the initial plan, executes it in PostgreSQL to obtain the true
cardinality and cost of *every sub-plan node*, and (for queries joining
at most 8 tables) derives the optimal join order with ECQO.

``QueryLabeler`` reproduces that: the initial plan comes from the
classical planner, execution in :mod:`repro.engine` yields per-node true
cardinalities and simulated per-node latencies (the cost labels), and
:func:`repro.optimizer.optimal_join_order` supplies the JoinSel label.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.executor import ExecutionLimitError, execute_plan
from ..engine.plan import PlanNode
from ..optimizer.planner import PostgresStylePlanner
from ..optimizer.selectivity import TrueCardinalityOracle
from ..optimizer.optimal import optimal_join_order
from ..sql.query import Query
from ..storage.catalog import Database

__all__ = ["LabeledQuery", "QueryLabeler"]


@dataclass
class LabeledQuery:
    """A query with its initial plan and ground-truth labels.

    ``node_cardinalities``/``node_costs`` follow the plan's preorder
    node ordering (root first); costs are cumulative per sub-plan (the
    simulated latency of executing the subtree), matching the paper's
    "cardinality and cost of the sub-plan rooted at each node".
    """

    query: Query
    plan: PlanNode
    node_cardinalities: list[int]
    node_costs: list[float]
    total_time_ms: float
    optimal_order: list[str] | None = None
    extras: dict = field(default_factory=dict)

    @property
    def cardinality(self) -> int:
        return self.node_cardinalities[0]

    @property
    def cost(self) -> float:
        return self.node_costs[0]

    @property
    def num_nodes(self) -> int:
        return len(self.node_cardinalities)


def _subtree_costs(plan: PlanNode, node_times: list[float]) -> list[float]:
    """Cumulative per-subtree latency, preorder-aligned with node_times."""
    order = plan.nodes_preorder()
    time_of = {id(node): t for node, t in zip(order, node_times)}

    memo: dict[int, float] = {}

    def total(node: PlanNode) -> float:
        if id(node) not in memo:
            memo[id(node)] = time_of[id(node)] + sum(total(c) for c in node.children())
        return memo[id(node)]

    return [total(node) for node in order]


class QueryLabeler:
    """Labels queries against a database."""

    def __init__(
        self,
        db: Database,
        planner: PostgresStylePlanner | None = None,
        max_optimal_tables: int = 8,
        max_intermediate_rows: int | None = 5_000_000,
    ):
        self.db = db
        self.planner = planner or PostgresStylePlanner(db)
        self.max_optimal_tables = max_optimal_tables
        self.max_intermediate_rows = max_intermediate_rows

    def label(self, query: Query, with_optimal_order: bool = False) -> LabeledQuery | None:
        """Label one query; returns None when execution exceeds limits.

        The initial plan P is the classical planner's choice (the paper
        provides "Q's initial plan" from the existing DBMS).
        """
        try:
            planned = self.planner.plan(query)
            result = execute_plan(
                planned.plan, self.db, max_intermediate_rows=self.max_intermediate_rows
            )
        except (ExecutionLimitError, ValueError):
            return None

        optimal = None
        if with_optimal_order and query.num_tables <= self.max_optimal_tables:
            try:
                oracle = TrueCardinalityOracle(
                    self.db, max_intermediate_rows=self.max_intermediate_rows
                )
                optimal = optimal_join_order(query, self.db, oracle=oracle)
            except (ExecutionLimitError, ValueError):
                optimal = None

        return LabeledQuery(
            query=query,
            plan=planned.plan,
            node_cardinalities=result.node_cardinalities,
            node_costs=_subtree_costs(planned.plan, result.node_times),
            total_time_ms=result.simulated_ms,
            optimal_order=optimal,
        )

    def label_many(
        self, queries: list[Query], with_optimal_order: bool = False
    ) -> list[LabeledQuery]:
        """Label a workload, silently dropping over-limit queries."""
        labeled = []
        for query in queries:
            item = self.label(query, with_optimal_order=with_optimal_order)
            if item is not None:
                labeled.append(item)
        return labeled
