"""``repro.workload`` — JOB-like query generation and ground-truth labeling."""

from .dataset import QueryDataset, split_dataset, traffic_stream
from .generator import WorkloadConfig, WorkloadGenerator, generate_single_table_queries
from .labeler import LabeledQuery, QueryLabeler

__all__ = [
    "WorkloadConfig",
    "WorkloadGenerator",
    "generate_single_table_queries",
    "LabeledQuery",
    "QueryLabeler",
    "QueryDataset",
    "split_dataset",
    "traffic_stream",
]
