"""JOB-like workload generation.

The paper trains on 150K queries "similar to the JOB queries": multi-way
PK-FK joins over the IMDB schema with correlated range, equality and
LIKE predicates.  ``WorkloadGenerator`` reproduces that query shape over
any :class:`Database`:

- the touched tables are a random connected subgraph of the join graph
  (random-walk sampling), so every query is executable;
- join predicates are exactly the schema edges inside the subgraph;
- filters are drawn per table: numeric comparisons/BETWEEN anchored at
  actual data values (so selectivities are realistic), string equality,
  IN lists and LIKE patterns built from substrings of actual values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sql.predicates import (
    BetweenPredicate,
    Comparison,
    CompareOp,
    Conjunction,
    InPredicate,
    LikePredicate,
)
from ..sql.query import Query
from ..storage.catalog import Database

__all__ = ["WorkloadConfig", "WorkloadGenerator", "generate_single_table_queries"]


@dataclass
class WorkloadConfig:
    """Knobs for workload generation."""

    min_tables: int = 2
    max_tables: int = 6
    max_filters_per_table: int = 2
    filter_probability: float = 0.7     # chance a table gets any filter
    like_probability: float = 0.3       # among string predicates
    in_probability: float = 0.2
    seed: int = 0


class WorkloadGenerator:
    """Generates random executable SPJ queries over a database."""

    def __init__(self, db: Database, config: WorkloadConfig | None = None):
        self.db = db
        self.config = config or WorkloadConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self._key_columns = self._collect_key_columns()

    def _collect_key_columns(self) -> dict[str, set]:
        """PK/FK columns per table (excluded from filter predicates)."""
        keys: dict[str, set] = {name: set() for name in self.db.table_names}
        for name in self.db.table_names:
            pk = self.db.table(name).primary_key
            if pk:
                keys[name].add(pk)
        for relation in self.db.join_schema.relations:
            keys[relation.left].add(relation.left_column)
            keys[relation.right].add(relation.right_column)
        return keys

    # ------------------------------------------------------------------
    def sample_tables(self, num_tables: int) -> list[str]:
        """Random connected subgraph of the join graph via a random walk."""
        schema = self.db.join_schema
        candidates = [t for t in schema.tables if schema.neighbors(t)]
        if not candidates:
            raise ValueError("join schema has no joinable tables")
        start = str(self.rng.choice(candidates))
        chosen = [start]
        frontier = set(schema.neighbors(start))
        while len(chosen) < num_tables and frontier:
            nxt = str(self.rng.choice(sorted(frontier)))
            chosen.append(nxt)
            frontier |= set(schema.neighbors(nxt))
            frontier -= set(chosen)
        return chosen

    def _numeric_predicate(self, table: str, column: str):
        values = self.db.table(table).column(column).numeric_values()
        if values.size == 0:
            return None
        anchor = float(self.rng.choice(values))
        roll = self.rng.random()
        if roll < 0.3:
            return Comparison(table, column, CompareOp.LE, anchor)
        if roll < 0.6:
            return Comparison(table, column, CompareOp.GE, anchor)
        if roll < 0.8:
            other = float(self.rng.choice(values))
            low, high = sorted((anchor, other))
            return BetweenPredicate(table, column, low, high)
        return Comparison(table, column, CompareOp.EQ, anchor)

    def _string_predicate(self, table: str, column: str):
        col = self.db.table(table).column(column)
        if len(col) == 0:
            return None
        value = str(self.rng.choice(col.values))
        roll = self.rng.random()
        if roll < self.config.like_probability and len(value) >= 2:
            # Substring LIKE: '%mid%', prefix 'pre%' or suffix '%suf'.
            kind = self.rng.integers(0, 3)
            span = max(2, len(value) // 2)
            if kind == 0:
                start = self.rng.integers(0, max(len(value) - span, 0) + 1)
                return LikePredicate(table, column, f"%{value[start:start + span]}%")
            if kind == 1:
                return LikePredicate(table, column, f"{value[:span]}%")
            return LikePredicate(table, column, f"%{value[-span:]}")
        if roll < self.config.like_probability + self.config.in_probability:
            pool = col.dictionary if col.dictionary is not None else np.unique(col.values.astype(str))
            k = int(self.rng.integers(2, min(5, len(pool)) + 1))
            picks = tuple(str(v) for v in self.rng.choice(pool, size=k, replace=False))
            return InPredicate(table, column, picks)
        return Comparison(table, column, CompareOp.EQ, value)

    def sample_filters(self, table: str) -> Conjunction:
        """Sample a conjunction of filters for one table (may be empty)."""
        predicates = []
        if self.rng.random() < self.config.filter_probability:
            table_obj = self.db.table(table)
            eligible = [c for c in table_obj.column_order if c not in self._key_columns[table]]
            if eligible:
                count = int(self.rng.integers(1, self.config.max_filters_per_table + 1))
                count = min(count, len(eligible))
                columns = self.rng.choice(eligible, size=count, replace=False)
                for column in columns:
                    if table_obj.column(column).is_numeric:
                        pred = self._numeric_predicate(table, column)
                    else:
                        pred = self._string_predicate(table, column)
                    if pred is not None:
                        predicates.append(pred)
        return Conjunction(table=table, predicates=tuple(predicates))

    def generate_query(self, num_tables: int | None = None) -> Query:
        """Generate one executable query."""
        if num_tables is None:
            num_tables = int(self.rng.integers(self.config.min_tables, self.config.max_tables + 1))
        tables = self.sample_tables(num_tables)
        joins = []
        for i, a in enumerate(tables):
            for b in tables[i + 1:]:
                relation = self.db.join_schema.relation_between(a, b)
                if relation is not None:
                    joins.append(relation)
        filters = {}
        for table in tables:
            conj = self.sample_filters(table)
            if len(conj):
                filters[table] = conj
        return Query(tables=tables, joins=joins, filters=filters)

    def generate(self, num_queries: int) -> list[Query]:
        """Generate a workload of ``num_queries`` queries."""
        return [self.generate_query() for _ in range(num_queries)]


def generate_single_table_queries(
    db: Database, table: str, num_queries: int, seed: int = 0
) -> list[Query]:
    """Single-table filter queries for training the per-table encoders.

    Algorithm 1 line 4 trains each ``Enc_j`` "with a CardEst task on a
    single table": these are the queries it trains on.
    """
    config = WorkloadConfig(min_tables=1, max_tables=1, filter_probability=1.0, seed=seed)
    generator = WorkloadGenerator(db, config)
    queries = []
    for _ in range(num_queries):
        conj = generator.sample_filters(table)
        filters = {table: conj} if len(conj) else {}
        queries.append(Query(tables=[table], joins=[], filters=filters))
    return queries
