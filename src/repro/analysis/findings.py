"""Findings: the unit of output of every static checker.

A :class:`Finding` is one violation at one source location.  Its
:meth:`fingerprint` deliberately excludes the line number — baselines
keyed on fingerprints survive unrelated edits that shift code up or
down, and go stale only when the violating construct itself changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One checker violation at one source location."""

    path: str       # repo-relative posix path of the file
    line: int       # 1-indexed line of the violating construct
    checker: str    # stable checker id (e.g. "guarded-by")
    symbol: str     # enclosing ClassName.method / function, or ""
    message: str    # human-readable description, names not line numbers

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining (line-number free)."""
        digest = hashlib.sha1(self.message.encode()).hexdigest()[:12]
        return f"{self.checker}:{self.path}:{self.symbol}:{digest}"

    def to_dict(self) -> dict:
        out = asdict(self)
        out["fingerprint"] = self.fingerprint
        return out

    def format(self) -> str:
        where = f" ({self.symbol})" if self.symbol else ""
        return f"{self.path}:{self.line}: [{self.checker}] {self.message}{where}"
