"""Runtime concurrency checking: traced locks + a global lock-order graph.

Static analysis pins lexical discipline; this module checks the
*dynamic* properties no AST walk can see:

- **lock-order inversions** — every traced acquisition records a
  ``held -> acquired`` edge in a global directed graph.  A cycle in
  that graph means two threads can acquire the same pair of locks in
  opposite orders: a latent deadlock, even if this run got lucky with
  scheduling.  Detection is on-edge-insert, so the violation surfaces
  the moment the second ordering first occurs — no deadlock required.
- **long holds / long waits under a hot mutex** — each traced lock
  records how long it was held and how long acquirers blocked; holds or
  waits beyond the configured thresholds become findings.  A
  fine-grained service mutex held across a model decode shows up here
  even when the static blocking-under-mutex rule was structurally
  evaded.

Usage inside a stress test::

    monitor = LockMonitor(max_hold_s=0.25)
    instrument_service(service, monitor)      # before service.start()
    instrument_collector(collector, monitor)  # before collector.start()
    ... drive traffic ...
    monitor.assert_clean()                    # raises LockOrderError on a cycle

Tracing is cooperative (only wrapped locks are observed) and cheap
enough for test traffic; it is not enabled in production paths.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field

__all__ = [
    "LockOrderError",
    "HoldViolation",
    "TracedLock",
    "LockMonitor",
    "instrument_service",
    "instrument_collector",
    "instrument_model",
]


class LockOrderError(RuntimeError):
    """The acquisition-order graph contains a cycle (potential deadlock)."""


@dataclass
class HoldViolation:
    """A lock was held (or waited for) longer than the threshold."""

    kind: str        # "hold" or "wait"
    lock: str
    seconds: float
    thread: str
    stack: str = ""


@dataclass
class _Edge:
    src: str
    dst: str
    thread: str
    stack: str = ""


class TracedLock:
    """A Lock/RLock wrapper that reports acquisitions to a monitor.

    Quacks enough like its inner lock to back a ``threading.Condition``
    (``acquire``/``release``/``_is_owned``); reentrant acquisitions of a
    wrapped RLock are counted but only the outermost one records edges
    and hold time.
    """

    def __init__(self, inner, name: str, monitor: "LockMonitor"):
        self._inner = inner
        self.name = name
        self._monitor = monitor

    def acquire(self, blocking: bool = True, timeout: float = -1):
        started = time.monotonic()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            try:
                self._monitor._on_acquired(self, waited_s=time.monotonic() - started)
            except LockOrderError:
                # raise_on_cycle mode: don't leave the lock held behind a
                # raising __enter__ — back the acquisition out first.
                self._monitor._drop_entry(self)
                self._inner.release()
                raise
        return acquired

    def release(self):
        self._monitor._on_release(self)
        self._inner.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info):
        self.release()
        return False

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        return inner_locked() if inner_locked is not None else False

    def _is_owned(self) -> bool:
        """Condition support: is this lock held by the current thread?"""
        return self._monitor._held_depth(self) > 0


class LockMonitor:
    """Global acquisition-order graph plus hold/wait timing findings.

    Thread-safe; one monitor typically spans every lock of a test.
    ``raise_on_cycle=True`` raises :class:`LockOrderError` inside the
    acquiring thread the moment an inversion closes a cycle (useful for
    targeted tests); either way the violation is recorded and
    :meth:`assert_clean` / :meth:`check` re-raise it from the test
    thread, so a worker loop that swallows exceptions cannot hide it.
    """

    def __init__(
        self,
        max_hold_s: float | None = None,
        max_wait_s: float | None = None,
        raise_on_cycle: bool = False,
        capture_stacks: bool = True,
        registry=None,
    ):
        self.max_hold_s = max_hold_s
        self.max_wait_s = max_wait_s
        self.raise_on_cycle = raise_on_cycle
        self.capture_stacks = capture_stacks
        # Optional repro.obs.MetricsRegistry: every traced hold/wait
        # duration lands in a per-lock histogram, not just the ones
        # beyond the violation thresholds.
        self.registry = registry
        self._glock = threading.Lock()
        self._edges: dict[str, set[str]] = {}
        self._edge_examples: dict[tuple[str, str], _Edge] = {}
        self.cycles: list[str] = []          # rendered cycle descriptions
        self.hold_violations: list[HoldViolation] = []
        self._tls = threading.local()

    # -- instrumentation -------------------------------------------------
    def wrap(self, lock, name: str) -> TracedLock:
        return TracedLock(lock, name, self)

    def lock(self, name: str) -> TracedLock:
        return self.wrap(threading.Lock(), name)

    def rlock(self, name: str) -> TracedLock:
        return self.wrap(threading.RLock(), name)

    # -- per-thread held stack -------------------------------------------
    def _stack(self) -> list[dict]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _held_depth(self, lock: TracedLock) -> int:
        for entry in self._stack():
            if entry["lock"] is lock:
                return entry["depth"]
        return 0

    def _short_stack(self) -> str:
        if not self.capture_stacks:
            return ""
        frames = traceback.extract_stack(limit=10)[:-3]
        return " <- ".join(f"{f.name}:{f.lineno}" for f in reversed(frames[-5:]))

    # -- events ----------------------------------------------------------
    def _observe(self, name: str, lock_name: str, seconds: float) -> None:
        """Record a hold/wait duration; runs outside ``_glock``."""
        if self.registry is not None:
            self.registry.histogram(name, {"lock": lock_name}).observe(seconds)

    def _on_acquired(self, lock: TracedLock, waited_s: float) -> None:
        thread = threading.current_thread().name
        self._observe("lock.wait_s", lock.name, waited_s)
        if self.max_wait_s is not None and waited_s > self.max_wait_s:
            with self._glock:
                self.hold_violations.append(
                    HoldViolation("wait", lock.name, waited_s, thread, self._short_stack())
                )
        stack = self._stack()
        for entry in stack:
            if entry["lock"] is lock:  # reentrant RLock acquire: no new edges
                entry["depth"] += 1
                return
        held_names = [entry["lock"].name for entry in stack]
        stack.append({"lock": lock, "depth": 1, "acquired_at": time.monotonic()})
        if held_names:
            self._record_edges(held_names, lock.name, thread)

    def _on_release(self, lock: TracedLock) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            entry = stack[index]
            if entry["lock"] is lock:
                entry["depth"] -= 1
                if entry["depth"] == 0:
                    held_s = time.monotonic() - entry["acquired_at"]
                    del stack[index]
                    self._observe("lock.hold_s", lock.name, held_s)
                    if self.max_hold_s is not None and held_s > self.max_hold_s:
                        with self._glock:
                            self.hold_violations.append(
                                HoldViolation(
                                    "hold", lock.name, held_s,
                                    threading.current_thread().name, self._short_stack(),
                                )
                            )
                return
        # Release of a lock this monitor never saw acquired on this
        # thread (e.g. Condition internals after a fork of ownership):
        # ignore rather than corrupt the stack.

    def _drop_entry(self, lock: TracedLock) -> None:
        """Remove a just-pushed stack entry without hold-time accounting."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index]["lock"] is lock:
                del stack[index]
                return

    def _record_edges(self, held_names: list[str], acquired: str, thread: str) -> None:
        with self._glock:
            for src in held_names:
                if src == acquired:
                    continue
                successors = self._edges.setdefault(src, set())
                if acquired in successors:
                    continue
                cycle = self._find_path(acquired, src)
                successors.add(acquired)
                key = (src, acquired)
                if key not in self._edge_examples:
                    self._edge_examples[key] = _Edge(src, acquired, thread, self._short_stack())
                if cycle is not None:
                    description = self._render_cycle(src, acquired, cycle, thread)
                    self.cycles.append(description)
                    if self.raise_on_cycle:
                        raise LockOrderError(description)

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """DFS: a path start -> ... -> goal in the current edge set."""
        seen = {start}
        frontier = [(start, [start])]
        while frontier:
            node, path = frontier.pop()
            if node == goal:
                return path
            for succ in self._edges.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append((succ, path + [succ]))
        return None

    def _render_cycle(self, src: str, dst: str, back_path: list[str], thread: str) -> str:
        # back_path runs dst -> ... -> src; closing it with dst again
        # renders the full cycle the new edge (src -> dst) completes.
        chain = " -> ".join(back_path + [back_path[0]])
        lines = [
            f"lock-order inversion: thread {thread!r} acquired {dst!r} while "
            f"holding {src!r}, but the reverse order {' -> '.join(back_path)} "
            f"was already observed (cycle: {chain})",
        ]
        for a, b in zip(back_path, back_path[1:]):
            example = self._edge_examples.get((a, b))
            if example is not None:
                lines.append(f"  {a} -> {b} first seen on {example.thread!r} at {example.stack}")
        return "\n".join(lines)

    # -- verdicts --------------------------------------------------------
    def edges(self) -> dict[str, set[str]]:
        with self._glock:
            return {src: set(dst) for src, dst in self._edges.items()}

    def check(self) -> list[HoldViolation]:
        """Raise on any recorded cycle; return timing violations."""
        with self._glock:
            if self.cycles:
                raise LockOrderError("\n\n".join(self.cycles))
            return list(self.hold_violations)

    def assert_clean(self) -> None:
        """Raise on cycles *and* on hold/wait threshold violations."""
        violations = self.check()
        if violations:
            rendered = "; ".join(
                f"{v.kind} of {v.lock} for {v.seconds:.3f}s on {v.thread} ({v.stack})"
                for v in violations
            )
            raise AssertionError(f"lock timing violations: {rendered}")

    def report(self) -> dict:
        with self._glock:
            return {
                "edges": {src: sorted(dst) for src, dst in sorted(self._edges.items())},
                "cycles": list(self.cycles),
                "hold_violations": [
                    {"kind": v.kind, "lock": v.lock, "seconds": v.seconds, "thread": v.thread}
                    for v in self.hold_violations
                ],
            }


# -- repo-specific instrumentation helpers -------------------------------
# Each helper swaps an object's internal lock for a traced one *before*
# its threads start, rebuilding any Condition that wrapped the original
# lock so waiters keep releasing the traced lock (and the monitor keeps
# an accurate held-set across waits).

def instrument_service(service, monitor: LockMonitor, name: str | None = None):
    """Trace an :class:`~repro.serve.service.OptimizerService`'s mutex."""
    label = name or f"service[{service.db_name}]._mutex"
    traced = monitor.wrap(threading.Lock(), label)
    service._mutex = traced
    service._nonempty = threading.Condition(traced)
    return service


def instrument_collector(collector, monitor: LockMonitor, name: str | None = None):
    """Trace a :class:`~repro.serve.feedback.FeedbackCollector`'s mutex."""
    label = name or f"feedback[{collector.db.name}]._mutex"
    traced = monitor.wrap(threading.Lock(), label)
    collector._mutex = traced
    collector._wakeup = threading.Condition(traced)
    collector._idle = threading.Condition(traced)
    return collector


def instrument_model(model, monitor: LockMonitor, name: str | None = None):
    """Trace a :class:`~repro.core.model.MTMLFQO`'s inference RLock.

    Call before building sessions/services so every ``with
    model._infer_lock`` goes through the traced wrapper.
    """
    label = name or f"model[v{model.version}]._infer_lock"
    model._infer_lock = monitor.wrap(threading.RLock(), label)
    return model
