"""Hygiene checkers: small, repo-wide mechanical invariants.

- **atomic-write** — durable artifacts go through
  :func:`repro.nn.serialize.atomic_savez` (tmp + fsync + ``os.replace``);
  direct ``np.savez``/``np.save``/``pickle.dump`` calls anywhere else can
  leave a truncated file on a crash mid-write.
- **thread-discipline** — every ``threading.Thread`` is constructed with
  an explicit ``daemon=`` argument.  Daemon threads can't wedge
  interpreter shutdown; a deliberate non-daemon thread states
  ``daemon=False`` and its owner is expected to join it.
- **silent-except** — no ``except Exception/BaseException/bare: pass``.
  Worker loops must *count* or re-raise what they swallow; an invisible
  failure in a drain/feedback/adaptation loop is how experience flow
  silently stops.
- **wall-clock** — ``time.time()`` is wall clock and jumps under NTP;
  all latency/interval math uses ``time.monotonic()`` or
  ``time.perf_counter()``.
- **scratch-privacy** — ``ScratchArena`` / ``KVCache`` instances must
  never live at module scope or on a class body.  Arenas hand out
  reusable buffers and caches hold projections of one specific memory;
  shared across sessions (or decodes) they are write-after-free and
  stale-read bugs waiting for a second thread.  Both belong to exactly
  one owner: an arena to one ``InferenceSession``, a cache to one
  decode.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from ..findings import Finding
from ..linter import SourceModule
from .base import Checker, dotted_name, iter_functions

__all__ = [
    "AtomicWriteChecker",
    "ThreadDisciplineChecker",
    "SilentExceptChecker",
    "WallClockChecker",
    "ScratchPrivacyChecker",
]


def _enclosing_symbols(tree: ast.AST) -> dict[int, str]:
    """Map statement ids to their enclosing function qualname."""
    owners: dict[int, str] = {}
    for qual, _, func in iter_functions(tree):
        for node in ast.walk(func):
            owners.setdefault(id(node), qual)
    return owners


class _CallChecker(Checker):
    """Shared walk for checkers that flag specific call patterns."""

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        owners = _enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            message = self.match(module, node)
            if message is not None:
                findings.append(
                    self.finding(module, node, message, symbol=owners.get(id(node), ""))
                )
        return findings

    def match(self, module: SourceModule, node: ast.AST) -> str | None:
        raise NotImplementedError


class AtomicWriteChecker(_CallChecker):
    name = "atomic-write"
    description = "durable writes go through atomic_savez"

    # Files allowed to call the raw primitives (the atomic writer itself).
    def __init__(self, exempt_globs=("*nn/serialize.py",)):
        self.exempt_globs = tuple(exempt_globs)

    _RAW_WRITERS = {
        "np.savez", "np.savez_compressed", "np.save",
        "numpy.savez", "numpy.savez_compressed", "numpy.save",
        "pickle.dump",
    }

    def match(self, module, node):
        if any(fnmatch(module.rel_path, glob) for glob in self.exempt_globs):
            return None
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in self._RAW_WRITERS:
                return (
                    f"direct {name}() — write durable artifacts through "
                    f"repro.nn.serialize.atomic_savez so a crash mid-save "
                    f"cannot leave a truncated file"
                )
        return None


class ThreadDisciplineChecker(_CallChecker):
    name = "thread-discipline"
    description = "threads are constructed with an explicit daemon="

    def match(self, module, node):
        if not isinstance(node, ast.Call):
            return None
        name = dotted_name(node.func)
        if name not in ("threading.Thread", "Thread"):
            return None
        if any(kw.arg == "daemon" for kw in node.keywords):
            return None
        return (
            "threading.Thread without an explicit daemon= argument — pass "
            "daemon=True, or daemon=False with the owner responsible for "
            "joining it"
        )


class SilentExceptChecker(Checker):
    name = "silent-except"
    description = "no except Exception/BaseException/bare handlers that only pass"

    _BROAD = {"Exception", "BaseException"}

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        owners = _enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is not None:
                name = dotted_name(node.type)
                if name is None or name.rsplit(".", 1)[-1] not in self._BROAD:
                    continue
                caught = name
            else:
                caught = "everything (bare except)"
            if all(self._is_noop(stmt) for stmt in node.body):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"handler catches {caught} and does nothing — count, "
                        f"log, or re-raise; a silent swallow in a worker loop "
                        f"hides real failures",
                        symbol=owners.get(id(node), ""),
                    )
                )
        return findings

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            return True
        return isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)


class WallClockChecker(_CallChecker):
    name = "wall-clock"
    description = "interval math uses monotonic clocks"

    def match(self, module, node):
        if isinstance(node, ast.Call) and dotted_name(node.func) == "time.time":
            return (
                "time.time() is wall clock (jumps under NTP) — use "
                "time.monotonic() or time.perf_counter() for durations"
            )
        return None


class ScratchPrivacyChecker(Checker):
    """No module-level or class-body ``ScratchArena`` / ``KVCache``.

    Both types are deliberately unsynchronized and owner-scoped (see
    ``repro.nn.kernels.ScratchArena`` / ``repro.nn.attention.KVCache``).
    An instance created at import time is process-global by construction
    — shared buffers across sessions, or projections outliving the
    decode (and model hot-swaps) they were computed for.
    """

    name = "scratch-privacy"
    description = "ScratchArena/KVCache instances are owner-scoped, never global"

    _OWNER_SCOPED = frozenset({"ScratchArena", "KVCache"})

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        self._scan(module, module.tree.body, "<module>", findings)
        return findings

    def _scan(self, module, body, where, findings) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                self._scan(module, stmt.body, f"class {stmt.name}", findings)
                continue
            # Walk the statement but never descend into function bodies:
            # code in a def runs per call with the instance as owner.
            stack: list[ast.AST] = [stmt]
            while stack:
                node = stack.pop()
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                if isinstance(node, ast.Call):
                    name = dotted_name(node.func)
                    leaf = name.rsplit(".", 1)[-1] if name else None
                    if leaf in self._OWNER_SCOPED:
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"{leaf}() instantiated at {where} scope — scratch "
                                f"buffers and KV projections must be private to one "
                                f"session/decode, not process-global; create them in "
                                f"the owner's __init__ (or per decode) instead",
                                symbol=where,
                            )
                        )
                stack.extend(ast.iter_child_nodes(node))
