"""Checker interface and shared AST utilities.

Every checker is a small object with a stable ``name`` (the id used by
``# analysis: ignore[name]`` suppressions and baselines) and a
``check(module) -> list[Finding]`` method.  Checkers are configured by
constructor arguments so tests can point them at fixture conventions;
module-level defaults encode this repo's actual invariants.
"""

from __future__ import annotations

import ast
import re

from ..findings import Finding
from ..linter import SourceModule

__all__ = [
    "Checker",
    "dotted_name",
    "self_attr",
    "iter_functions",
    "lock_attrs_of_class",
    "GUARDED_BY_RE",
    "HOLDS_RE",
    "COARSE_LOCK_RE",
]

# "# guarded-by: _mutex" on a field's __init__ assignment line.
GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(\w+)")
# "# holds: _mutex[, _other]" on a def line: the method documents that
# its callers own the lock(s) (the repo's *_locked suffix, spelled out).
HOLDS_RE = re.compile(r"#\s*holds:\s*([\w, ]+)")
# "# analysis: coarse-lock" on a lock's creation line: held across long
# operations by design (e.g. the model's inference lock), so the
# blocking-under-mutex rule does not apply to it.
COARSE_LOCK_RE = re.compile(r"#\s*analysis:\s*coarse-lock")


class Checker:
    """Base class; subclasses set ``name`` and implement ``check``."""

    name = "checker"
    description = ""

    def check(self, module: SourceModule) -> list[Finding]:
        raise NotImplementedError

    def finding(self, module: SourceModule, node: ast.AST, message: str, symbol: str = "") -> Finding:
        return Finding(
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            checker=self.name,
            symbol=symbol,
            message=message,
        )


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attr(node: ast.AST) -> str | None:
    """``x`` when ``node`` is exactly ``self.x``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def iter_functions(tree: ast.AST):
    """Yield ``(qualname, class_node_or_None, func_node)`` for every
    function/method, with qualnames like ``Class.method`` or ``func``."""

    def walk(node: ast.AST, prefix: str, cls: ast.ClassDef | None):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, cls, child
                yield from walk(child, f"{qual}.", cls)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.", child)
            else:
                yield from walk(child, prefix, cls)

    yield from walk(tree, "", None)


_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}


def lock_attrs_of_class(
    cls: ast.ClassDef, module: SourceModule
) -> tuple[dict[str, str], set[str]]:
    """Discover a class's lock attributes from its ``__init__``.

    Returns ``(aliases, coarse)``: ``aliases`` maps each lock-ish
    attribute to its root lock (``self._cond = threading.Condition(self._mutex)``
    makes ``_cond`` an alias of ``_mutex``; a standalone
    ``threading.Lock()`` maps to itself), and ``coarse`` holds the roots
    whose creation line carries ``# analysis: coarse-lock``.
    """
    aliases: dict[str, str] = {}
    coarse: set[str] = set()
    for item in cls.body:
        if not (isinstance(item, ast.FunctionDef) and item.name == "__init__"):
            continue
        for node in ast.walk(item):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = self_attr(node.targets[0])
            if target is None:
                continue
            value = node.value
            # self.A = self.B -> plain alias.
            source = self_attr(value)
            if source is not None and source in aliases:
                aliases[target] = aliases[source]
                continue
            if not isinstance(value, ast.Call):
                continue
            factory = dotted_name(value.func)
            if factory is None:
                continue
            leaf = factory.rsplit(".", 1)[-1]
            if leaf not in _LOCK_FACTORIES:
                continue
            root = target
            if leaf == "Condition" and value.args:
                wrapped = self_attr(value.args[0])
                if wrapped is not None:
                    root = aliases.get(wrapped, wrapped)
            aliases[target] = root
            if COARSE_LOCK_RE.search(module.comment_on(node.lineno)):
                coarse.add(root)
    return aliases, coarse
