"""Symbolic shape / dtype / dual-mode parity checkers.

These wrap :mod:`repro.analysis.shapes` — the abstract interpreter over
``@shape_spec``-annotated modules — in the standard :class:`Checker`
interface, so its findings flow through the same suppression, baseline
and fingerprint machinery as every AST lint.

Three checkers, three failure classes:

- ``shape-spec`` — interprets every annotated method/function body over
  symbolic dims and reports shape mismatches, unintended implicit
  broadcasts, and declared-dtype violations at call boundaries.
- ``dtype-lattice`` — lexical dtype-creep scan: any concrete ``dtype=``
  or ``astype(...)`` outside the canonical {float64, int64, bool} set.
  Scoped to the numeric core (``nn/``, ``core/``) where the canonical-
  dtype rule applies; tools and tests may use narrow dtypes freely.
- ``dual-mode-parity`` — every ``forward``/``infer_forward`` (more
  generally ``m``/``infer_m``) pair must declare identical symbolic
  output specs, declare and *read* the same parameter set, and apply
  the same structural ops.

Cross-file resolution: when the checked file is a real file inside a
``repro`` package checkout, the interpreter loads specs for the whole
``nn``/``core`` library so e.g. ``core/trans_jo.py`` sees the decoder's
specs.  Findings are still anchored to the checked module only — each
file reports its own classes, so a repo sweep never duplicates them.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from ..findings import Finding
from ..linter import SourceModule
from ..shapes import (
    Problem,
    SpecRegistry,
    collect_registry,
    decorated_function_names,
    dtype_problems,
    interpret_class,
    interpret_function,
    library_registry,
    parity_problems,
)
from .base import Checker

__all__ = ["ShapeChecker", "DtypeChecker", "DualModeParityChecker"]

# Where the canonical-dtype rule (and the annotated substrate) lives.
_NUMERIC_SCOPE = ("*nn/*.py", "*core/*.py")


def _registries(module: SourceModule) -> tuple[SpecRegistry, set, set]:
    """``(registry, own class names, own function names)`` for a file.

    The registry collects the module *with* the on-disk nn/core library
    as context (own definitions win, so a scratch copy with seeded
    violations is interpreted as written, not as checked in); synthetic
    paths (fixtures) resolve against themselves only.  The name sets
    anchor findings: a file only ever reports its own definitions, so a
    repo sweep never duplicates them.
    """
    library = library_registry(module.rel_path)
    registry = collect_registry([module], context=library)
    own_classes = {
        node.name for node in module.tree.body if isinstance(node, ast.ClassDef)
    }
    return registry, own_classes, decorated_function_names(module.tree)


class _InterpreterChecker(Checker):
    """Shared plumbing: run the interpreter, keep a subset of kinds."""

    kinds: tuple[str, ...] = ()

    def check(self, module: SourceModule) -> list[Finding]:
        registry, own_classes, own_functions = _registries(module)
        problems = self._problems(registry, own_classes, own_functions)
        return sorted(
            Finding(
                path=module.rel_path,
                line=problem.lineno,
                checker=self.name,
                symbol=problem.symbol,
                message=problem.message,
            )
            for problem in problems
            if problem.kind in self.kinds
        )

    def _problems(self, registry, own_classes, own_functions) -> list[Problem]:
        raise NotImplementedError


class ShapeChecker(_InterpreterChecker):
    """Abstract interpretation of every ``@shape_spec`` body."""

    name = "shape-spec"
    description = (
        "symbolic shape/dtype interpretation of @shape_spec-annotated "
        "methods: mismatches, implicit broadcasts, declared-dtype breaks"
    )
    kinds = ("mismatch", "broadcast", "dtype")

    def _problems(self, registry, own_classes, own_functions) -> list[Problem]:
        problems: list[Problem] = []
        for name in sorted(own_classes):
            problems.extend(interpret_class(registry, registry.classes[name]))
        for name in sorted(own_functions):
            problems.extend(interpret_function(registry, registry.functions[name]))
        return problems


class DtypeChecker(Checker):
    """Lexical dtype-lattice discipline over the numeric core."""

    name = "dtype-lattice"
    description = (
        "dtype creep in nn/ and core/: concrete dtypes outside the "
        "canonical {float64, int64, bool} set"
    )

    def __init__(self, scope: tuple[str, ...] = _NUMERIC_SCOPE):
        self.scope = tuple(scope)

    def check(self, module: SourceModule) -> list[Finding]:
        if not any(fnmatch(module.rel_path, pattern) for pattern in self.scope):
            return []
        return sorted(
            Finding(
                path=module.rel_path,
                line=problem.lineno,
                checker=self.name,
                symbol=problem.symbol,
                message=problem.message,
            )
            for problem in dtype_problems(module.tree)
        )


class DualModeParityChecker(_InterpreterChecker):
    """Static parity of every tape/no-tape method pair."""

    name = "dual-mode-parity"
    description = (
        "forward/infer_forward pairs must declare identical output "
        "specs and read the same parameters"
    )
    kinds = ("parity",)

    def _problems(self, registry, own_classes, own_functions) -> list[Problem]:
        problems: list[Problem] = []
        for name in sorted(own_classes):
            problems.extend(parity_problems(registry, registry.classes[name]))
        return problems
