"""Lock-discipline checker: entry-point locking + no blocking under a mutex.

Two rules:

**Entry-lock rule.**  Classes registered in ``entry_rules`` (by default:
``MTMLFQO``) must take their inference lock in every public entry point
matching the registered name patterns — either a lexical
``with self.<lock>:`` in the method body, or a delegation call to
another entry point of the same class (``predict_join_order`` calling
``self.predict_join_orders`` is compliant).

**Blocking-under-mutex rule.**  Inside a ``with self.<lock>:`` block for
any lock created in the class's ``__init__`` (``threading.Lock`` /
``RLock`` / ``Condition``), the following are findings:

- ``time.sleep(...)``;
- zero-argument ``.join()`` calls (a thread join; ``str.join`` always
  takes an argument);
- calls whose name is in the configured blocking set — model decodes,
  trainer runs, engine executions, checkpoint IO;
- ``.wait(...)`` on anything *other* than the lock object the ``with``
  entered (``Condition.wait`` releases its own lock while sleeping;
  ``Event.wait`` under someone else's mutex just blocks holding it).

Locks that are long-held *by design* (the model's coarse inference
lock, the coordinator's round lock) opt out with an
``# analysis: coarse-lock`` comment on their creation line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatch

from ..findings import Finding
from ..linter import SourceModule
from .base import Checker, dotted_name, iter_functions, lock_attrs_of_class, self_attr

__all__ = ["EntryLockRule", "LockDisciplineChecker", "BLOCKING_CALLS"]

# Callable names (last dotted segment) that block for model/engine/IO
# timescales — never acceptable while holding a fine-grained mutex.
BLOCKING_CALLS = frozenset(
    {
        "predict_join_orders",
        "predict_join_order",
        "predict_cardinalities",
        "predict_costs",
        "beam_candidates_batch",
        "beam_candidates",
        "label_with_order",
        "label_many",
        "join_order_execution_time",
        "evaluate_regret_gate",
        "save_checkpoint",
        "load_checkpoint",
        "run_round",
        "train_encoders",
    }
)


@dataclass(frozen=True)
class EntryLockRule:
    """Entry points of ``class_name`` matching ``patterns`` must take ``lock``."""

    class_name: str
    lock: str
    patterns: tuple[str, ...]


# Explicit entry points, not "predict_*": predict_log_nodes is the
# shared forward building block the trainer calls with grad enabled —
# it must stay lock-free (its inference-side callers hold the lock).
DEFAULT_ENTRY_RULES = (
    EntryLockRule(
        "MTMLFQO",
        "_infer_lock",
        (
            "predict_cardinalities",
            "predict_costs",
            "predict_join_order",
            "predict_join_orders",
            "beam_candidates",
            "beam_candidates_batch",
        ),
    ),
)


class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    description = "entry points take their lock; nothing blocks under a mutex"

    def __init__(self, entry_rules=DEFAULT_ENTRY_RULES, blocking_calls=BLOCKING_CALLS):
        self.entry_rules = {rule.class_name: rule for rule in entry_rules}
        self.blocking_calls = frozenset(blocking_calls)

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    def _check_class(self, module: SourceModule, cls: ast.ClassDef) -> list[Finding]:
        findings: list[Finding] = []
        aliases, coarse = lock_attrs_of_class(cls, module)
        rule = self.entry_rules.get(cls.name)
        for func in cls.body:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            symbol = f"{cls.name}.{func.name}"
            if rule is not None and self._is_entry(func.name, rule):
                if not self._takes_lock(func, rule):
                    findings.append(
                        self.finding(
                            module,
                            func,
                            f"public inference entry point does not acquire "
                            f"self.{rule.lock} (and does not delegate to one "
                            f"that does)",
                            symbol=symbol,
                        )
                    )
            if aliases:
                self._walk_blocking(module, func, aliases, coarse, [], symbol, findings)
        return findings

    # -- entry-lock rule -----------------------------------------------
    @staticmethod
    def _is_entry(name: str, rule: EntryLockRule) -> bool:
        return not name.startswith("_") and any(fnmatch(name, p) for p in rule.patterns)

    @staticmethod
    def _takes_lock(func: ast.FunctionDef, rule: EntryLockRule) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.With):
                for item in node.items:
                    if self_attr(item.context_expr) == rule.lock:
                        return True
            if isinstance(node, ast.Call):
                callee = node.func
                if (
                    isinstance(callee, ast.Attribute)
                    and isinstance(callee.value, ast.Name)
                    and callee.value.id == "self"
                    and LockDisciplineChecker._is_entry(callee.attr, rule)
                ):
                    return True
        return False

    # -- blocking-under-mutex rule -------------------------------------
    def _walk_blocking(self, module, node, aliases, coarse, held, symbol, findings) -> None:
        """``held`` is a stack of (root lock name, context expr dump)."""
        if isinstance(node, ast.With):
            entered = list(held)
            for item in node.items:
                attr = self_attr(item.context_expr)
                if attr is not None and attr in aliases:
                    root = aliases[attr]
                    if root not in coarse:
                        entered.append((root, ast.dump(item.context_expr)))
            for child in node.body:
                self._walk_blocking(module, child, aliases, coarse, entered, symbol, findings)
            return
        if held and isinstance(node, ast.Call):
            self._check_call(module, node, held, symbol, findings)
        for child in ast.iter_child_nodes(node):
            self._walk_blocking(module, child, aliases, coarse, held, symbol, findings)

    def _check_call(self, module, call: ast.Call, held, symbol, findings) -> None:
        locks = ", ".join(sorted({name for name, _ in held}))
        name = dotted_name(call.func)
        leaf = name.rsplit(".", 1)[-1] if name else (
            call.func.attr if isinstance(call.func, ast.Attribute) else None
        )
        if leaf is None:
            return
        if name == "time.sleep":
            findings.append(
                self.finding(module, call, f"time.sleep while holding {locks}", symbol=symbol)
            )
        elif leaf == "join" and not call.args and not call.keywords:
            findings.append(
                self.finding(
                    module, call,
                    f"zero-argument .join() (thread join) while holding {locks}",
                    symbol=symbol,
                )
            )
        elif leaf in self.blocking_calls:
            findings.append(
                self.finding(
                    module, call,
                    f"blocking call {leaf}() while holding {locks}",
                    symbol=symbol,
                )
            )
        elif leaf == "wait" and isinstance(call.func, ast.Attribute):
            waited = ast.dump(call.func.value)
            if all(expr != waited for _, expr in held):
                findings.append(
                    self.finding(
                        module, call,
                        f"waiting on a primitive that is not the held lock "
                        f"while holding {locks} (only Condition.wait on the "
                        f"entered lock releases it)",
                        symbol=symbol,
                    )
                )
