"""Telemetry-usage discipline for the ``repro.obs`` substrate.

Two rules keep instrumentation from degrading the code it observes:

- **balanced spans** — the imperative ``start_span``/``end_span`` pair
  is an obs-internal implementation detail; outside the ``obs`` package
  every span must use the context-manager form (``with tracer.span(...)``
  / ``with maybe_span(...)``), which cannot leak an unclosed span past
  an exception.
- **no recording under a service mutex** — metric and SLO recording
  takes the metric's private lock; doing it while lexically holding one
  of the enclosing class's own locks both serializes unrelated request
  threads behind telemetry and threads the service lock into the
  metric-lock order.  Record after releasing, the way
  ``ServiceStats.note_completed`` does.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..linter import SourceModule
from .base import Checker, dotted_name, iter_functions, lock_attrs_of_class, self_attr

__all__ = ["ObsDisciplineChecker"]

# Attribute leaves that record into a metric: Counter.inc,
# Histogram.observe, Gauge.update_max.  (Gauge.set is excluded — "set"
# is far too generic a method name to match on its leaf alone.)
_RECORDING_LEAVES = frozenset({"inc", "observe", "update_max"})
# Dotted-name suffixes that record through a telemetry handle even
# though their leaf ("record") is generic: SLOTracker.record and
# TraceRecorder.record reached via *.slo / *.tracer.
_RECORDING_SUFFIXES = ("slo.record", "tracer.record")

_IMPERATIVE_SPAN_LEAVES = frozenset({"start_span", "end_span"})


class ObsDisciplineChecker(Checker):
    """Spans balanced by construction; no telemetry under a mutex."""

    name = "obs-discipline"
    description = (
        "spans use the context-manager form outside obs/; "
        "no metric recording while holding a service lock"
    )

    def __init__(self, internal_prefixes: "tuple[str, ...]" = ("repro/obs/",)):
        # Modules whose rel_path contains one of these fragments may use
        # the imperative span API (they implement it).
        self.internal_prefixes = internal_prefixes

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        if not self._is_internal(module):
            self._check_imperative_spans(module, findings)
        self._check_recording_under_lock(module, findings)
        return findings

    def _is_internal(self, module: SourceModule) -> bool:
        path = module.rel_path.replace("\\", "/")
        return any(prefix in path for prefix in self.internal_prefixes)

    # -- rule 1: context-manager spans only ----------------------------
    def _check_imperative_spans(self, module: SourceModule, findings: list[Finding]) -> None:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            leaf = node.func.attr
            if leaf in _IMPERATIVE_SPAN_LEAVES:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"imperative {leaf}() outside repro.obs — an exception "
                        f"between start and end leaks an unclosed span; use "
                        f"'with tracer.span(...)' / 'with maybe_span(...)'",
                    )
                )

    # -- rule 2: no recording while holding an own lock ----------------
    def _check_recording_under_lock(self, module: SourceModule, findings: list[Finding]) -> None:
        for qualname, cls, func in iter_functions(module.tree):
            if cls is None:
                continue
            aliases, _ = lock_attrs_of_class(cls, module)
            if not aliases:
                continue
            for stmt in ast.walk(func):
                if not isinstance(stmt, ast.With):
                    continue
                held = self._held_lock(stmt, aliases)
                if held is None:
                    continue
                for call in self._body_walk(stmt):
                    label = self._recording_call(call)
                    if label is not None:
                        findings.append(
                            self.finding(
                                module,
                                call,
                                f"{label} while holding self.{held} — telemetry "
                                f"recording takes the metric's own lock; move it "
                                f"after the 'with self.{held}:' block",
                                symbol=qualname,
                            )
                        )
        return None

    @staticmethod
    def _held_lock(node: ast.With, aliases: "dict[str, str]") -> "str | None":
        for item in node.items:
            attr = self_attr(item.context_expr)
            if attr is not None and attr in aliases:
                return attr
        return None

    @staticmethod
    def _body_walk(with_node: ast.With):
        """Calls lexically inside the with body (including nested withs)."""
        for stmt in with_node.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    yield node

    @staticmethod
    def _recording_call(call: ast.Call) -> "str | None":
        if not isinstance(call.func, ast.Attribute):
            return None
        leaf = call.func.attr
        if leaf in _RECORDING_LEAVES:
            return f"{leaf}()"
        if leaf == "record":
            dotted = dotted_name(call.func)
            if dotted is not None and any(
                dotted.endswith(suffix) for suffix in _RECORDING_SUFFIXES
            ):
                return f"{dotted}()"
        return None
