"""Checker registry.

``all_checkers()`` returns one instance of every checker with its
repo-default configuration — this is what the CLI and CI run.  Tests
construct checkers directly with fixture-specific configuration.
"""

from __future__ import annotations

from .base import Checker
from .grad_mode import GradModeChecker, GradModeScope, RawKernelChecker
from .guarded_by import GuardedByChecker
from .hygiene import (
    AtomicWriteChecker,
    ScratchPrivacyChecker,
    SilentExceptChecker,
    ThreadDisciplineChecker,
    WallClockChecker,
)
from .lock_discipline import EntryLockRule, LockDisciplineChecker
from .obs_discipline import ObsDisciplineChecker
from .shapes import DtypeChecker, DualModeParityChecker, ShapeChecker

__all__ = [
    "Checker",
    "GuardedByChecker",
    "LockDisciplineChecker",
    "EntryLockRule",
    "GradModeChecker",
    "GradModeScope",
    "RawKernelChecker",
    "AtomicWriteChecker",
    "ThreadDisciplineChecker",
    "SilentExceptChecker",
    "WallClockChecker",
    "ScratchPrivacyChecker",
    "ObsDisciplineChecker",
    "ShapeChecker",
    "DtypeChecker",
    "DualModeParityChecker",
    "all_checkers",
]


def all_checkers() -> list[Checker]:
    return [
        GuardedByChecker(),
        LockDisciplineChecker(),
        GradModeChecker(),
        RawKernelChecker(),
        AtomicWriteChecker(),
        ThreadDisciplineChecker(),
        SilentExceptChecker(),
        WallClockChecker(),
        ScratchPrivacyChecker(),
        ObsDisciplineChecker(),
        ShapeChecker(),
        DtypeChecker(),
        DualModeParityChecker(),
    ]
