"""Guarded-by checker: annotated fields are only mutated under their lock.

Declaration — either form, in the class's ``__init__``::

    self._queue = deque()   # guarded-by: _mutex

or a class-level registry for fields that cannot carry a comment::

    _guarded_by_ = {"_queue": "_mutex"}

Rule: every *access* to a guarded field must sit lexically inside a
``with self.<lock>:`` block for the declared lock (a
``threading.Condition`` built on that lock counts — acquiring the
condition acquires the lock).  Both directions are checked:

- **mutations** — ``self.f = ...``, ``self.f += ...``, ``del self.f``,
  ``self.f[k] = ...``, or a call to a known mutating method like
  ``self.f.append(...)``;
- **reads** — any ``self.f`` in load context outside the lock.  A read
  racing a write sees torn or stale state just as surely as two writes
  corrupt it (the bug class behind ``optimize()``'s old unsynchronized
  ``self._running`` fast path), so an annotation means *all* access is
  serialized, not just stores.

An access that the mutation rules already claimed (the ``self.f`` inside
``self.f.append(...)`` or ``self.f[k] = v``) is never double-reported as
a read.

Escape hatches, both meaning "my caller holds the lock":

- methods whose name ends in ``_locked`` (the repo's suffix convention);
- a ``# holds: <lock>`` comment on the ``def`` line.

``__init__`` is exempt: no other thread can hold a reference before
construction completes.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..linter import SourceModule
from .base import (
    GUARDED_BY_RE,
    HOLDS_RE,
    Checker,
    dotted_name,
    iter_functions,
    lock_attrs_of_class,
    self_attr,
)

__all__ = ["GuardedByChecker", "MUTATORS"]

# Method names that mutate their receiver in place (list/dict/set/deque/
# OrderedDict surface used across the repo).
MUTATORS = {
    "append", "appendleft", "extend", "extendleft", "insert", "remove",
    "pop", "popleft", "popitem", "clear", "add", "discard", "update",
    "setdefault", "move_to_end", "sort", "reverse", "rotate",
}

_EXEMPT_METHODS = {"__init__", "__new__", "__del__"}


class GuardedByChecker(Checker):
    name = "guarded-by"
    description = "annotated fields accessed only under their declared lock"

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    # -- per class -----------------------------------------------------
    def _check_class(self, module: SourceModule, cls: ast.ClassDef) -> list[Finding]:
        guarded = self._guarded_fields(module, cls)
        if not guarded:
            return []
        aliases, _ = lock_attrs_of_class(cls, module)
        resolve = lambda name: aliases.get(name, name)
        guarded = {field: resolve(lock) for field, lock in guarded.items()}

        findings: list[Finding] = []
        for func in cls.body:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if func.name in _EXEMPT_METHODS or func.name.endswith("_locked"):
                continue
            held = self._declared_holds(module, func, resolve)
            symbol = f"{cls.name}.{func.name}"
            # Attribute nodes the mutation rules already claimed (the
            # `self.f` inside `self.f.append(...)` / `self.f[k] = v`),
            # so the read rule never reports the same access twice.
            consumed: set[int] = set()
            self._walk(module, func, guarded, resolve, held, symbol, findings, consumed)
        return findings

    def _guarded_fields(self, module: SourceModule, cls: ast.ClassDef) -> dict[str, str]:
        guarded: dict[str, str] = {}
        # Class-level registry: _guarded_by_ = {"field": "_lock"}.
        for item in cls.body:
            if (
                isinstance(item, ast.Assign)
                and len(item.targets) == 1
                and isinstance(item.targets[0], ast.Name)
                and item.targets[0].id == "_guarded_by_"
                and isinstance(item.value, ast.Dict)
            ):
                for key, value in zip(item.value.keys, item.value.values):
                    if isinstance(key, ast.Constant) and isinstance(value, ast.Constant):
                        guarded[str(key.value)] = str(value.value)
        # Comment annotations on __init__ assignments.
        for item in cls.body:
            if not (isinstance(item, ast.FunctionDef) and item.name == "__init__"):
                continue
            for node in ast.walk(item):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                match = GUARDED_BY_RE.search(module.comment_on(node.lineno))
                if match is None:
                    continue
                for target in targets:
                    field = self_attr(target)
                    if field is not None:
                        guarded[field] = match.group(1)
        return guarded

    @staticmethod
    def _declared_holds(module: SourceModule, func: ast.FunctionDef, resolve) -> list[str]:
        match = HOLDS_RE.search(module.comment_on(func.lineno))
        if match is None:
            return []
        return [resolve(name.strip()) for name in match.group(1).split(",") if name.strip()]

    # -- statement walk with a lock stack ------------------------------
    def _walk(self, module, node, guarded, resolve, held, symbol, findings, consumed) -> None:
        if isinstance(node, ast.With):
            entered = list(held)
            for item in node.items:
                attr = self_attr(item.context_expr)
                if attr is not None:
                    entered.append(resolve(attr))
            # The context expressions themselves (`with self._mutex:`)
            # run before the lock is held, but naming a lock is not an
            # access to guarded state — recurse only into the body.
            for child in node.body:
                self._walk(module, child, guarded, resolve, entered, symbol, findings, consumed)
            return
        self._check_node(module, node, guarded, held, symbol, findings, consumed)
        for child in ast.iter_child_nodes(node):
            self._walk(module, child, guarded, resolve, held, symbol, findings, consumed)

    def _check_node(self, module, node, guarded, held, symbol, findings, consumed) -> None:
        def flag(field: str, verb: str, at: ast.AST) -> None:
            lock = guarded[field]
            if lock not in held:
                findings.append(
                    self.finding(
                        module,
                        at,
                        f"self.{field} is declared guarded-by {lock} but is "
                        f"{verb} without holding it",
                        symbol=symbol,
                    )
                )

        def mutated_target(target: ast.AST) -> None:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    mutated_target(element)
                return
            if isinstance(target, (ast.Subscript, ast.Starred)):
                mutated_target(target.value)
                return
            field = self_attr(target)
            if field is not None and field in guarded:
                # Claim the node whether or not it flags: an in-lock
                # mutation must not resurface as a "read" finding when
                # the walk reaches the Attribute itself.
                consumed.add(id(target))
                flag(field, "mutated", node)

        if isinstance(node, ast.Assign):
            for target in node.targets:
                mutated_target(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            mutated_target(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                mutated_target(target)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in MUTATORS:
                field = self_attr(func.value)
                if field is not None and field in guarded:
                    consumed.add(id(func.value))
                    flag(field, "mutated", node)
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            if id(node) not in consumed:
                field = self_attr(node)
                if field is not None and field in guarded:
                    flag(field, "read", node)
