"""No-tape-in-serving checker: forward passes in decode/serve paths run
under ``nn.no_grad()``.

The autodiff tape records every tensor op while grad is enabled; a
serving path that forgets ``no_grad`` silently allocates tape nodes for
every request — exactly the class of leak PR 5 fixed by making grad
mode thread-local.  This checker pins the convention statically: inside
the registered *serving scopes* (inference methods of the model, the
beam driver, everything under ``serve/``), every call to a registered
*forward op* must sit lexically inside a ``with nn.no_grad():`` (or
bare ``no_grad()``) block.

Training code (``core/trainer.py``, losses) is intentionally outside
the scopes — it needs the tape.

A second checker, :class:`RawKernelChecker`, pins the dual-mode nn
substrate's central invariant from the other side: the raw-ndarray
fast path (``nn.kernels.*`` ops and ``infer_*`` methods) skips all
autograd bookkeeping, so a call site that could run with the tape on
would silently train on garbage gradients (the kernels never record
them).  Every such call must therefore be statically unreachable with
grad enabled: lexically under ``with no_grad():``, inside a branch
guarded by ``no_tape_active()`` / ``not is_grad_enabled()``, or inside
a function that is itself part of the ``infer_*`` namespace (whose
callers carry the same obligation, inductively).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatch

from ..findings import Finding
from ..linter import SourceModule
from .base import Checker, dotted_name, iter_functions

__all__ = ["GradModeChecker", "GradModeScope", "FORWARD_CALLS", "RawKernelChecker", "KERNEL_OPS"]

# Calls that run module forwards / record tape ops when grad is enabled.
FORWARD_CALLS = frozenset(
    {
        "forward_batch",
        "predict_log_nodes",
        "encode_filter",
        "column_embedding",
        "step_logits_batch",
    }
)


@dataclass(frozen=True)
class GradModeScope:
    """Functions matching ``qualname_glob`` in files matching ``path_glob``."""

    path_glob: str
    qualname_glob: str


# predict_log_nodes / forward_batch are deliberately NOT scopes: they
# are the shared forward building blocks the trainer calls with the
# tape on; the no_grad obligation sits on their inference-side callers.
DEFAULT_SCOPES = (
    GradModeScope("*core/model.py", "MTMLFQO.predict_cardinalities"),
    GradModeScope("*core/model.py", "MTMLFQO.predict_costs"),
    GradModeScope("*core/model.py", "MTMLFQO.predict_join_order"),
    GradModeScope("*core/model.py", "MTMLFQO.predict_join_orders"),
    GradModeScope("*core/model.py", "MTMLFQO._decode_candidate_chunks"),
    GradModeScope("*core/model.py", "MTMLFQO._rerank_by_cost*"),
    GradModeScope("*core/model.py", "MTMLFQO._node_content"),
    GradModeScope("*core/beam.py", "drive_beam_states"),
    GradModeScope("*/serve/*.py", "*"),
)


class GradModeChecker(Checker):
    name = "grad-mode"
    description = "serving-path forward calls wrapped in nn.no_grad()"

    def __init__(self, scopes=DEFAULT_SCOPES, forward_calls=FORWARD_CALLS):
        self.scopes = tuple(scopes)
        self.forward_calls = frozenset(forward_calls)

    def _in_scope(self, rel_path: str, qualname: str) -> bool:
        return any(
            fnmatch(rel_path, scope.path_glob) and fnmatch(qualname, scope.qualname_glob)
            for scope in self.scopes
        )

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for qual, _, func in iter_functions(module.tree):
            if not self._in_scope(module.rel_path, qual):
                continue
            self._walk(module, func, under_no_grad=False, symbol=qual, findings=findings)
        return findings

    @staticmethod
    def _enters_no_grad(node: ast.With) -> bool:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                name = dotted_name(expr.func)
                if name is not None and name.rsplit(".", 1)[-1] == "no_grad":
                    return True
        return False

    def _walk(self, module, node, under_no_grad, symbol, findings) -> None:
        if isinstance(node, ast.With) and self._enters_no_grad(node):
            for child in node.body:
                self._walk(module, child, True, symbol, findings)
            return
        if not under_no_grad and isinstance(node, ast.Call):
            name = dotted_name(node.func)
            leaf = name.rsplit(".", 1)[-1] if name else None
            if leaf in self.forward_calls:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"forward call {leaf}() on a serving path outside "
                        f"nn.no_grad() — this records autodiff tape per request",
                        symbol=symbol,
                    )
                )
        for child in ast.iter_child_nodes(node):
            # Nested defs get their own iter_functions visit.
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self._walk(module, child, under_no_grad, symbol, findings)


# The raw-ndarray compute kernels of repro.nn.kernels.  A call like
# ``kernels.linear(...)`` / ``nn.kernels.softmax(...)`` is a fast-path
# entry; ScratchArena/profiled/KernelProfile are mode-neutral plumbing.
KERNEL_OPS = frozenset(
    {
        "matmul",
        "linear",
        "layer_norm",
        "relu",
        "sigmoid",
        "softmax",
        "log_softmax",
        "masked_fill",
    }
)

# Predicates that statically prove the tape is off on a branch.
_NO_TAPE_PREDICATES = frozenset({"no_tape_active"})
_GRAD_PREDICATES = frozenset({"is_grad_enabled"})


class RawKernelChecker(Checker):
    """``kernels.*`` / ``infer_*`` call sites must be tape-unreachable.

    A call is accepted when it is

    - lexically inside ``with no_grad():``, or
    - in the then-branch of ``if no_tape_active():`` or
      ``if not is_grad_enabled():`` (also as a conjunct of an ``and``),
      or in the else-branch of ``if is_grad_enabled():``, or
    - inside a function whose own (qual)name marks it ``infer_*`` — its
      callers carry the obligation instead — or a function *defined* on
      an already-guarded line (a nested helper of a guarded branch).

    ``nn.kernels`` itself is exempt: it defines the ops.
    """

    name = "raw-kernel"
    description = "raw kernels / infer_* entry points unreachable with the tape on"

    def __init__(self, exempt_globs=("*nn/kernels.py",), kernel_ops=KERNEL_OPS):
        self.exempt_globs = tuple(exempt_globs)
        self.kernel_ops = frozenset(kernel_ops)

    def check(self, module: SourceModule) -> list[Finding]:
        if any(fnmatch(module.rel_path, glob) for glob in self.exempt_globs):
            return []
        findings: list[Finding] = []
        for child in module.tree.body:
            self._walk(module, child, guarded=False, symbol="<module>", findings=findings)
        return findings

    # -- guard recognition --------------------------------------------------
    @staticmethod
    def _predicate_leaf(expr: ast.AST) -> str | None:
        """Leaf name of a bare or ``nn.``-dotted predicate call."""
        if isinstance(expr, ast.Call) and not expr.args and not expr.keywords:
            name = dotted_name(expr.func)
            if name is not None:
                return name.rsplit(".", 1)[-1]
        return None

    @classmethod
    def _proves_no_tape(cls, test: ast.AST) -> bool:
        """True if ``test`` being truthy implies the tape is off."""
        leaf = cls._predicate_leaf(test)
        if leaf in _NO_TAPE_PREDICATES:
            return True
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            if cls._predicate_leaf(test.operand) in _GRAD_PREDICATES:
                return True
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            return any(cls._proves_no_tape(value) for value in test.values)
        return False

    @classmethod
    def _proves_tape(cls, test: ast.AST) -> bool:
        """True if ``test`` being *falsy* implies the tape is off."""
        return cls._predicate_leaf(test) in _GRAD_PREDICATES

    @staticmethod
    def _is_infer_function(qualname: str) -> bool:
        return any(part.startswith("infer_") for part in qualname.split("."))

    def _is_raw_call(self, node: ast.Call) -> str | None:
        name = dotted_name(node.func)
        if name is None:
            return None
        parts = name.split(".")
        leaf = parts[-1]
        if leaf.startswith("infer_"):
            return leaf
        if len(parts) >= 2 and parts[-2] == "kernels" and leaf in self.kernel_ops:
            return name
        return None

    # -- walk ---------------------------------------------------------------
    def _walk(self, module, node, guarded, symbol, findings) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{symbol}.{node.name}" if symbol != "<module>" else node.name
            # An infer_* function is itself a raw entry point (callers are
            # checked); a helper defined under a guard inherits the guard.
            inner_guarded = guarded or self._is_infer_function(qual)
            for child in node.body:
                self._walk(module, child, inner_guarded, qual, findings)
            return
        if isinstance(node, ast.ClassDef):
            qual = f"{symbol}.{node.name}" if symbol != "<module>" else node.name
            for child in node.body:
                self._walk(module, child, guarded, qual, findings)
            return
        if isinstance(node, ast.With) and GradModeChecker._enters_no_grad(node):
            for child in node.body:
                self._walk(module, child, True, symbol, findings)
            for item in node.items:
                self._walk(module, item.context_expr, guarded, symbol, findings)
            return
        if isinstance(node, ast.If) and not guarded:
            self._walk(module, node.test, guarded, symbol, findings)
            body_guarded = self._proves_no_tape(node.test)
            orelse_guarded = self._proves_tape(node.test)
            for child in node.body:
                self._walk(module, child, body_guarded, symbol, findings)
            for child in node.orelse:
                self._walk(module, child, orelse_guarded, symbol, findings)
            return
        if not guarded and isinstance(node, ast.Call):
            raw = self._is_raw_call(node)
            if raw is not None:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"raw fast-path call {raw}() reachable with the tape on — "
                        f"wrap it in nn.no_grad(), guard it with no_tape_active(), "
                        f"or move it into an infer_* function",
                        symbol=symbol,
                    )
                )
        for child in ast.iter_child_nodes(node):
            self._walk(module, child, guarded, symbol, findings)
