"""No-tape-in-serving checker: forward passes in decode/serve paths run
under ``nn.no_grad()``.

The autodiff tape records every tensor op while grad is enabled; a
serving path that forgets ``no_grad`` silently allocates tape nodes for
every request — exactly the class of leak PR 5 fixed by making grad
mode thread-local.  This checker pins the convention statically: inside
the registered *serving scopes* (inference methods of the model, the
beam driver, everything under ``serve/``), every call to a registered
*forward op* must sit lexically inside a ``with nn.no_grad():`` (or
bare ``no_grad()``) block.

Training code (``core/trainer.py``, losses) is intentionally outside
the scopes — it needs the tape.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatch

from ..findings import Finding
from ..linter import SourceModule
from .base import Checker, dotted_name, iter_functions

__all__ = ["GradModeChecker", "GradModeScope", "FORWARD_CALLS"]

# Calls that run module forwards / record tape ops when grad is enabled.
FORWARD_CALLS = frozenset(
    {
        "forward_batch",
        "predict_log_nodes",
        "encode_filter",
        "column_embedding",
        "step_logits_batch",
    }
)


@dataclass(frozen=True)
class GradModeScope:
    """Functions matching ``qualname_glob`` in files matching ``path_glob``."""

    path_glob: str
    qualname_glob: str


# predict_log_nodes / forward_batch are deliberately NOT scopes: they
# are the shared forward building blocks the trainer calls with the
# tape on; the no_grad obligation sits on their inference-side callers.
DEFAULT_SCOPES = (
    GradModeScope("*core/model.py", "MTMLFQO.predict_cardinalities"),
    GradModeScope("*core/model.py", "MTMLFQO.predict_costs"),
    GradModeScope("*core/model.py", "MTMLFQO.predict_join_order"),
    GradModeScope("*core/model.py", "MTMLFQO.predict_join_orders"),
    GradModeScope("*core/model.py", "MTMLFQO._decode_candidate_chunks"),
    GradModeScope("*core/model.py", "MTMLFQO._rerank_by_cost*"),
    GradModeScope("*core/model.py", "MTMLFQO._node_content"),
    GradModeScope("*core/beam.py", "drive_beam_states"),
    GradModeScope("*/serve/*.py", "*"),
)


class GradModeChecker(Checker):
    name = "grad-mode"
    description = "serving-path forward calls wrapped in nn.no_grad()"

    def __init__(self, scopes=DEFAULT_SCOPES, forward_calls=FORWARD_CALLS):
        self.scopes = tuple(scopes)
        self.forward_calls = frozenset(forward_calls)

    def _in_scope(self, rel_path: str, qualname: str) -> bool:
        return any(
            fnmatch(rel_path, scope.path_glob) and fnmatch(qualname, scope.qualname_glob)
            for scope in self.scopes
        )

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for qual, _, func in iter_functions(module.tree):
            if not self._in_scope(module.rel_path, qual):
                continue
            self._walk(module, func, under_no_grad=False, symbol=qual, findings=findings)
        return findings

    @staticmethod
    def _enters_no_grad(node: ast.With) -> bool:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                name = dotted_name(expr.func)
                if name is not None and name.rsplit(".", 1)[-1] == "no_grad":
                    return True
        return False

    def _walk(self, module, node, under_no_grad, symbol, findings) -> None:
        if isinstance(node, ast.With) and self._enters_no_grad(node):
            for child in node.body:
                self._walk(module, child, True, symbol, findings)
            return
        if not under_no_grad and isinstance(node, ast.Call):
            name = dotted_name(node.func)
            leaf = name.rsplit(".", 1)[-1] if name else None
            if leaf in self.forward_calls:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"forward call {leaf}() on a serving path outside "
                        f"nn.no_grad() — this records autodiff tape per request",
                        symbol=symbol,
                    )
                )
        for child in ast.iter_child_nodes(node):
            # Nested defs get their own iter_functions visit.
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self._walk(module, child, under_no_grad, symbol, findings)
