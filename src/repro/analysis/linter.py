"""The AST lint framework: source model, suppressions, baseline, runner.

The linter walks Python sources, hands each parsed module to every
registered checker (see :mod:`repro.analysis.checks`), and filters the
resulting findings through two explicit escape hatches:

- **inline suppression** — ``# analysis: ignore[checker-id]`` on the
  violating line (or ``# analysis: ignore`` for every checker).  The
  repo convention is to follow the tag with a justification in the same
  comment;
- **baseline file** — one fingerprint per line (see
  :meth:`repro.analysis.findings.Finding.fingerprint`), ``#`` comments
  required to justify each entry.  The baseline is for violations that
  cannot be annotated inline (generated code, third-party idioms); a
  healthy tree keeps it empty.

Both are deliberate, reviewable artifacts: a finding never disappears
silently.
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from pathlib import Path

from .findings import Finding

__all__ = ["SourceModule", "Baseline", "Linter"]

# Inline suppression: "# analysis: ignore" or "# analysis: ignore[a, b]".
_SUPPRESS_RE = re.compile(r"#\s*analysis:\s*ignore(?:\[([\w\-, ]+)\])?")


class SourceModule:
    """One parsed source file plus its comment-level annotations.

    Checkers read ``tree`` (the AST), ``comments`` (a ``{line: text}``
    map — AST nodes carry no comments, so annotation conventions like
    ``# guarded-by: _mutex`` live here) and ``rel_path`` (posix-style,
    for findings and path-scoped checker registries).
    """

    def __init__(self, text: str, rel_path: str):
        self.text = text
        self.rel_path = rel_path
        self.tree = ast.parse(text, filename=rel_path)
        self.comments: dict[int, str] = {}
        self.suppressions: dict[int, set[str]] = {}
        try:
            for token in tokenize.generate_tokens(io.StringIO(text).readline):
                if token.type != tokenize.COMMENT:
                    continue
                line = token.start[0]
                self.comments[line] = token.string
                match = _SUPPRESS_RE.search(token.string)
                if match:
                    names = match.group(1)
                    if names is None:
                        self.suppressions[line] = {"*"}
                    else:
                        self.suppressions.setdefault(line, set()).update(
                            name.strip() for name in names.split(",") if name.strip()
                        )
        except tokenize.TokenError:
            pass  # a parseable file with a tokenize edge case: no comments

    @classmethod
    def from_path(cls, path: Path, root: Path) -> "SourceModule":
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(path.read_text(), rel)

    def comment_on(self, line: int) -> str:
        return self.comments.get(line, "")

    def suppressed(self, finding: Finding) -> bool:
        names = self.suppressions.get(finding.line)
        return bool(names) and ("*" in names or finding.checker in names)


class Baseline:
    """Fingerprint allowlist loaded from (and written to) a text file.

    Format: one fingerprint per line; blank lines and ``#`` comments
    ignored.  Unmatched entries are reported via :attr:`unused` so a
    stale baseline is visible, not silently carried forever.
    """

    def __init__(self, entries: set[str] | None = None):
        self.entries = set(entries or ())
        self.used: set[str] = set()

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        entries = set()
        for raw in Path(path).read_text().splitlines():
            line = raw.split("#", 1)[0].strip()
            if line:
                entries.add(line)
        return cls(entries)

    def contains(self, finding: Finding) -> bool:
        if finding.fingerprint in self.entries:
            self.used.add(finding.fingerprint)
            return True
        return False

    @property
    def unused(self) -> set[str]:
        return self.entries - self.used

    @staticmethod
    def render(findings: list[Finding]) -> str:
        lines = [
            "# repro.analysis baseline — every entry needs a justification comment.",
            "# Regenerate with: python -m repro.analysis --write-baseline",
        ]
        for finding in sorted(findings):
            lines.append(f"{finding.fingerprint}  # {finding.format()}")
        return "\n".join(lines) + "\n"


class Linter:
    """Runs a set of checkers over files/trees and filters suppressions.

    :attr:`stats` accumulates per-checker counters across every run
    issued through this instance: ``{checker: {"findings": n,
    "seconds": s}}``, with unparseable files counted under
    ``parse-error``.  Counted findings are post-suppression — what a
    caller actually sees.
    """

    def __init__(self, checkers=None):
        if checkers is None:
            from .checks import all_checkers

            checkers = all_checkers()
        self.checkers = list(checkers)
        self.stats: dict[str, dict[str, float]] = {
            checker.name: {"findings": 0, "seconds": 0.0}
            for checker in self.checkers
        }

    def _stat(self, name: str) -> dict[str, float]:
        return self.stats.setdefault(name, {"findings": 0, "seconds": 0.0})

    def run_module(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for checker in self.checkers:
            start = time.perf_counter()
            found = [
                f for f in checker.check(module) if not module.suppressed(f)
            ]
            stat = self._stat(checker.name)
            stat["seconds"] += time.perf_counter() - start
            stat["findings"] += len(found)
            findings.extend(found)
        return sorted(findings)

    def run_source(self, text: str, rel_path: str = "<string>") -> list[Finding]:
        return self.run_module(SourceModule(text, rel_path))

    def run_paths(self, paths: list[str | Path], root: str | Path | None = None) -> list[Finding]:
        """Lint every ``.py`` file under ``paths`` (files or directories)."""
        root = Path(root) if root is not None else Path.cwd()
        files: list[Path] = []
        for entry in paths:
            entry = Path(entry)
            if entry.is_dir():
                files.extend(sorted(entry.rglob("*.py")))
            else:
                files.append(entry)
        findings: list[Finding] = []
        for path in files:
            try:
                module = SourceModule.from_path(path, root)
            except SyntaxError as error:
                findings.append(
                    Finding(
                        path=path.as_posix(),
                        line=error.lineno or 1,
                        checker="parse-error",
                        symbol="",
                        message=f"file does not parse: {error.msg}",
                    )
                )
                self._stat("parse-error")["findings"] += 1
                continue
            findings.extend(self.run_module(module))
        return sorted(findings)
