"""CLI: ``python -m repro.analysis [paths...] [--fail-on-findings]``.

Runs every registered checker over the given paths (default:
``src/repro`` when run from the repo root, else the installed package
directory) and prints findings as text or JSON.  Exit status:

- ``0`` — clean (or findings present but ``--fail-on-findings`` not set);
- ``1`` — findings outside the baseline with ``--fail-on-findings``;
- ``2`` — the baseline file contains stale (unmatched) entries, which
  must be pruned so the allowlist never outlives its violations.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .checks import all_checkers
from .linter import Baseline, Linter

DEFAULT_BASELINE = "analysis-baseline.txt"


def _default_paths() -> list[str]:
    if os.path.isdir(os.path.join("src", "repro")):
        return [os.path.join("src", "repro")]
    return [os.path.dirname(os.path.dirname(os.path.abspath(__file__)))]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static concurrency & invariant analysis for the repro codebase.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file of accepted fingerprints (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument("--no-baseline", action="store_true", help="ignore any baseline file")
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit clean",
    )
    parser.add_argument(
        "--fail-on-findings",
        action="store_true",
        help="exit 1 when any non-baselined finding remains (CI mode)",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="CHECKER",
        help="run only the named checker (repeatable); see --list-checkers",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="list registered checker names and descriptions, then exit",
    )
    args = parser.parse_args(argv)

    checkers = all_checkers()
    if args.list_checkers:
        width = max(len(checker.name) for checker in checkers)
        for checker in checkers:
            print(f"{checker.name:<{width}}  {checker.description}")
        return 0
    if args.only:
        known = {checker.name: checker for checker in checkers}
        unknown = [name for name in args.only if name not in known]
        if unknown:
            parser.error(
                f"unknown checker(s): {', '.join(unknown)} "
                f"(choose from {', '.join(sorted(known))})"
            )
        checkers = [known[name] for name in args.only]

    paths = args.paths or _default_paths()
    linter = Linter(checkers)
    findings = linter.run_paths(paths)

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.write_baseline:
        Path(baseline_path).write_text(Baseline.render(findings))
        print(f"wrote {len(findings)} fingerprint(s) to {baseline_path}")
        return 0

    baseline = Baseline()
    if not args.no_baseline and os.path.exists(baseline_path):
        baseline = Baseline.load(baseline_path)
    new_findings = [f for f in findings if not baseline.contains(f)]

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in new_findings],
                    "baselined": len(findings) - len(new_findings),
                    "stale_baseline_entries": sorted(baseline.unused),
                    "count": len(new_findings),
                    "checkers": {
                        name: {
                            "findings": int(stat["findings"]),
                            "seconds": round(stat["seconds"], 6),
                        }
                        for name, stat in sorted(linter.stats.items())
                    },
                },
                indent=2,
            )
        )
    else:
        for finding in new_findings:
            print(finding.format())
        baselined = len(findings) - len(new_findings)
        summary = f"{len(new_findings)} finding(s)"
        if baselined:
            summary += f", {baselined} baselined"
        if baseline.unused:
            summary += f", {len(baseline.unused)} stale baseline entr(y/ies)"
        print(summary)

    if baseline.unused:
        for stale in sorted(baseline.unused):
            print(f"stale baseline entry (no matching finding): {stale}", file=sys.stderr)
        return 2
    if new_findings and args.fail_on_findings:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
