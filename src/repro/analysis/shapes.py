"""Symbolic shape/dtype abstract interpretation for the nn substrate.

This module is the engine behind the ``shape-spec``, ``dtype-lattice``
and ``dual-mode-parity`` checkers (:mod:`repro.analysis.checks.shapes`).
It never imports numpy or executes model code: every layer in
``repro.nn`` declares its symbolic signature with the runtime-inert
``@shape_spec`` decorator (see :mod:`repro.nn.spec`), and this module
re-reads those declarations *from the AST* and abstractly interprets
the decorated method bodies over:

- a **symbolic dimension algebra** (:class:`Dim`): sums of rational
  multiples of symbol products, so ``4*hidden_dim``, ``dim`` vs
  ``num_heads*head_dim`` (via the auto-derived equation
  ``head_dim = dim/num_heads``) and slice extents like
  ``(t+1) - t == 1`` all normalize and compare structurally;
- an **abstract dtype lattice**: ``bool < int64 < float32 < float64``
  plus ``any`` (unknown).  The substrate's canonical dtype is
  **float64** — ``nn.tensor`` coerces every tensor to it — so any op
  whose abstract result is a *different* concrete float (dtype creep
  via numpy promotion, e.g. a stray ``float32`` literal) is a finding.

Interpretation is deliberately conservative: any construct outside the
nn idiom subset (advanced indexing, data-dependent control flow …)
evaluates to ``ANY`` and produces **no** finding.  Findings are emitted
only for *provable* violations — a matmul whose inner dims are distinct
class-level symbols, a declared output spec the body cannot produce, a
rank-equal broadcast that silently stretches a declared size-1 dim.

Dual-mode parity (``forward`` vs ``infer_forward`` et al.) is checked
from three angles, so a desynced kernel edit fails statically:

1. both siblings must declare the same ``out`` spec and ``params`` set;
2. the *parameter-bearing attribute reads* of the two bodies must be
   the same set (the tape method's ``if no_tape_active():`` dispatch
   prologue is excluded; parameter-free modules like ``Dropout`` —
   an inference-mode identity — do not count);
3. the *mode-symmetric op set* (relu/sigmoid/tanh/softmax/log_softmax/
   masked_fill) of the two bodies must be equal, with tape spellings
   (``x.relu()``, ``functional.softmax``) normalized to kernel ones.
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path

__all__ = [
    "Dim",
    "SymTensor",
    "ANY",
    "STAR",
    "CANONICAL_DTYPE",
    "promote",
    "parse_shape",
    "Problem",
    "ClassInfo",
    "SpecRegistry",
    "collect_registry",
    "library_registry",
    "interpret_class",
    "parity_problems",
    "dtype_problems",
    "MODE_PAIR_PREFIX",
    "mode_pairs",
]


# ---------------------------------------------------------------------------
# Symbolic dimension algebra
# ---------------------------------------------------------------------------
class Dim:
    """A symbolic dimension: sum of terms ``coeff * prod(sym**pow)``.

    Normal form keeps terms sorted by factor tuple with like terms
    merged, so structural equality is semantic equality over the free
    symbols (division is exact by construction — the only ``//`` the
    collector admits is one whose exactness the constructor checks,
    e.g. ``dim // num_heads`` after ``dim % num_heads == 0``).
    """

    __slots__ = ("terms",)

    def __init__(self, terms):
        merged: dict[tuple, Fraction] = {}
        for coeff, factors in terms:
            coeff = Fraction(coeff)
            if coeff == 0:
                continue
            merged[factors] = merged.get(factors, Fraction(0)) + coeff
        self.terms = tuple(
            sorted((f, c) for f, c in merged.items() if c != 0)
        )

    # -- constructors -------------------------------------------------------
    @staticmethod
    def const(value) -> "Dim":
        return Dim([(Fraction(value), ())])

    @staticmethod
    def sym(name: str) -> "Dim":
        return Dim([(Fraction(1), ((name, 1),))])

    # -- predicates ---------------------------------------------------------
    @property
    def is_const(self) -> bool:
        return all(not factors for factors, _ in self.terms)

    @property
    def const_value(self):
        if not self.terms:
            return 0
        if self.is_const:
            return self.terms[0][1]
        return None

    @property
    def is_one(self) -> bool:
        return self.const_value == 1

    def free_symbols(self) -> set[str]:
        return {sym for factors, _ in self.terms for sym, _ in factors}

    @property
    def is_fresh(self) -> bool:
        """True when the dim involves an engine-generated placeholder."""
        return any(sym.startswith("?") for sym in self.free_symbols())

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: "Dim") -> "Dim":
        return Dim([(c, f) for f, c in self.terms] + [(c, f) for f, c in other.terms])

    def __sub__(self, other: "Dim") -> "Dim":
        return self + other * Dim.const(-1)

    def __mul__(self, other: "Dim") -> "Dim":
        out = []
        for f1, c1 in self.terms:
            for f2, c2 in other.terms:
                powers: dict[str, int] = {}
                for sym, power in itertools.chain(f1, f2):
                    powers[sym] = powers.get(sym, 0) + power
                factors = tuple(sorted((s, p) for s, p in powers.items() if p))
                out.append((c1 * c2, factors))
        return Dim(out)

    def __truediv__(self, other: "Dim") -> "Dim | None":
        """Division by a single-term dim; None when not representable."""
        if len(other.terms) != 1:
            return None
        factors, coeff = other.terms[0]
        inverse = Dim([(1 / coeff, tuple((s, -p) for s, p in factors))])
        return self * inverse

    def subst(self, mapping: dict[str, "Dim"]) -> "Dim":
        """Substitute symbols by dims (symbols absent stay themselves)."""
        result = Dim([])
        for factors, coeff in self.terms:
            term = Dim([(coeff, ())])
            for sym, power in factors:
                base = mapping.get(sym, Dim.sym(sym))
                if power >= 0:
                    for _ in range(power):
                        term = term * base
                else:
                    for _ in range(-power):
                        divided = term / base
                        if divided is None:  # keep symbolic, unsubstituted
                            divided = term * Dim([(Fraction(1), ((sym, -1),))])
                        term = divided
            result = result + term
        return result

    # -- identity -----------------------------------------------------------
    def __eq__(self, other) -> bool:
        return isinstance(other, Dim) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash(self.terms)

    def __repr__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for factors, coeff in self.terms:
            syms = "*".join(
                sym if power == 1 else f"{sym}^{power}" for sym, power in factors
            )
            if not syms:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append(syms)
            else:
                parts.append(f"{coeff}*{syms}")
        return "+".join(parts)


_FRESH_COUNTER = itertools.count()


def fresh_dim(hint: str = "") -> Dim:
    """An engine-generated placeholder dim; never provably (un)equal."""
    return Dim.sym(f"?{hint}{next(_FRESH_COUNTER)}")


def provably_different(a: Dim, b: Dim) -> bool:
    """Structurally different with no fresh placeholder on either side."""
    return a != b and not a.is_fresh and not b.is_fresh


# ---------------------------------------------------------------------------
# Abstract dtype lattice
# ---------------------------------------------------------------------------
# The canonical float of the substrate.  The ISSUE phrases dtype creep as
# "not float32", but nn.tensor documents and enforces float64 as the sole
# tensor dtype (``_as_array`` coerces; kernels allocate float64): the
# invariant worth pinning is "the canonical float, and only it" — so the
# lattice flags any concrete float that is not float64.
CANONICAL_DTYPE = "float64"
_DTYPES = ("bool", "int64", "float32", "float64")


def promote(a: str, b: str) -> str:
    """Numpy-style promotion over the abstract lattice."""
    if a == "any" or b == "any":
        return "any"
    return _DTYPES[max(_DTYPES.index(a), _DTYPES.index(b))]


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------
class _Star:
    """Leading-wildcard marker: 'any number of leading dims'."""

    def __repr__(self) -> str:
        return "..."


STAR = _Star()


@dataclass(frozen=True)
class SymTensor:
    """Abstract tensor: a dim tuple (optionally ``STAR``-led) + dtype."""

    dims: tuple
    dtype: str = CANONICAL_DTYPE

    @property
    def has_star(self) -> bool:
        return bool(self.dims) and self.dims[0] is STAR

    def __repr__(self) -> str:
        inner = ", ".join(repr(d) for d in self.dims)
        return f"({inner}):{self.dtype}"


class _Any:
    def __repr__(self) -> str:
        return "ANY"


ANY = _Any()


@dataclass(frozen=True)
class Scalar:
    """A (possibly symbolic) 0-d value; ``dim`` is None when unknown."""

    dim: Dim | None = None
    dtype: str = "int64"


@dataclass
class ListVal:
    """A homogeneous list being accumulated (``outputs.append(h)``)."""

    elem: object = ANY


@dataclass(frozen=True)
class TupleVal:
    items: tuple = ()


@dataclass(frozen=True)
class ShapeVal:
    """``x.shape`` of a known symbolic tensor."""

    tensor: SymTensor


@dataclass(frozen=True)
class ModuleRef:
    """A reference to a sub-module attribute with bound ctor symbols."""

    class_name: str
    bindings: tuple  # tuple of (callee symbol, Dim in caller space)
    attr: str = ""


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------
def _dim_from_ast(node: ast.AST, env: dict | None = None) -> Dim | None:
    """Dim for an arithmetic AST over ints / symbols, else None."""
    env = env or {}
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, int):
            return None
        return Dim.const(node.value)
    if isinstance(node, ast.Name):
        bound = env.get(node.id)
        return bound if isinstance(bound, Dim) else Dim.sym(node.id)
    if isinstance(node, ast.Attribute):  # config.d_model -> d_model
        return Dim.sym(node.attr)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _dim_from_ast(node.operand, env)
        return None if inner is None else inner * Dim.const(-1)
    if isinstance(node, ast.BinOp):
        left = _dim_from_ast(node.left, env)
        right = _dim_from_ast(node.right, env)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return left / right
    return None


def parse_shape(spec: str) -> tuple | None:
    """Parse a spec string like ``"(B, L, dim)"`` / ``"(..., d)"``.

    Returns a tuple of :class:`Dim` (with ``STAR`` allowed only in the
    leading position), or None when the string does not parse.
    """
    try:
        tree = ast.parse(spec, mode="eval").body
    except SyntaxError:
        return None
    elements = list(tree.elts) if isinstance(tree, ast.Tuple) else [tree]
    dims: list = []
    for index, element in enumerate(elements):
        if isinstance(element, ast.Constant) and element.value is Ellipsis:
            if index != 0:
                return None
            dims.append(STAR)
            continue
        dim = _dim_from_ast(element)
        if dim is None:
            return None
        dims.append(dim)
    return tuple(dims)


@dataclass
class MethodSpec:
    """One ``@shape_spec`` declaration plus its function AST."""

    name: str
    inputs: dict  # arg name -> SymTensor | TupleVal | None
    out: object  # SymTensor | TupleVal | None
    params: tuple | None
    node: ast.FunctionDef
    lineno: int
    raw_out: object = None  # normalized out spec text for parity compare

    def arg_names(self) -> list[str]:
        args = [a.arg for a in self.node.args.args]
        return args[1:] if args and args[0] == "self" else args


def _spec_value(shape, dtype: str):
    """SymTensor / TupleVal for a declared shape string or tuple of them."""
    if isinstance(shape, str):
        dims = parse_shape(shape)
        return None if dims is None else SymTensor(dims, dtype)
    if isinstance(shape, tuple):
        items = tuple(_spec_value(s, dtype) for s in shape)
        return None if any(i is None for i in items) else TupleVal(items)
    return None


def _parse_decorator(func: ast.FunctionDef) -> MethodSpec | None:
    for decorator in func.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = _dotted(decorator.func)
        if name is None or name.rsplit(".", 1)[-1] != "shape_spec":
            continue
        kwargs: dict = {}
        for keyword in decorator.keywords:
            try:
                kwargs[keyword.arg] = ast.literal_eval(keyword.value)
            except ValueError:
                return None
        dtypes = kwargs.get("dtypes") or {}
        inputs = {
            arg: _spec_value(shape, dtypes.get(arg, CANONICAL_DTYPE))
            for arg, shape in (kwargs.get("inputs") or {}).items()
        }
        out_shape = kwargs.get("out")
        return MethodSpec(
            name=func.name,
            inputs=inputs,
            out=_spec_value(out_shape, dtypes.get("out", CANONICAL_DTYPE))
            if out_shape is not None
            else None,
            params=tuple(kwargs["params"]) if "params" in kwargs else None,
            node=func,
            lineno=decorator.lineno,
            raw_out=out_shape,
        )
    return None


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# Class collection
# ---------------------------------------------------------------------------
@dataclass
class AttrInfo:
    kind: str  # "param" | "module" | "module_list" | "scalar" | "other"
    shape: tuple | None = None  # for params
    class_name: str | None = None  # for module / module_list
    bindings: tuple = ()  # (callee ctor symbol, Dim) for module kinds
    dim: Dim | None = None  # for scalars


@dataclass
class ClassInfo:
    name: str
    rel_path: str
    node: ast.ClassDef
    attrs: dict = field(default_factory=dict)  # attr -> AttrInfo
    equations: dict = field(default_factory=dict)  # symbol -> Dim
    methods: dict = field(default_factory=dict)  # name -> MethodSpec
    func_nodes: dict = field(default_factory=dict)  # name -> FunctionDef


@dataclass
class SpecRegistry:
    classes: dict = field(default_factory=dict)  # name -> ClassInfo
    functions: dict = field(default_factory=dict)  # name -> MethodSpec

    def class_for(self, name: str | None) -> ClassInfo | None:
        return self.classes.get(name) if name else None

    def is_param_bearing(self, class_name: str | None, _seen=None) -> bool:
        """Does the class (transitively) own trainable parameters?

        Unknown classes default to True — better a parity mismatch that
        makes someone annotate than a silently ignored parameter.
        """
        if class_name in ("Dropout",):
            return False
        info = self.classes.get(class_name)
        if info is None:
            return True
        _seen = _seen or set()
        if class_name in _seen:
            return False
        _seen.add(class_name)
        for attr in info.attrs.values():
            if attr.kind == "param":
                return True
            if attr.kind in ("module", "module_list") and self.is_param_bearing(
                attr.class_name, _seen
            ):
                return True
        return False


_PARAM_FACTORIES = frozenset({"Parameter"})


def _ground(dim: Dim | None, env: dict) -> Dim | None:
    """Fresh-out symbols that are not ctor params / __init__ locals.

    List-comprehension variables (``Linear(a, b) for a, b in zip(...)``)
    and module-level constants are not part of the class's symbol space;
    letting them through as named symbols would make unrelated dims
    spuriously comparable.
    """
    if dim is None:
        return None
    unknown = {
        s for s in dim.free_symbols() if s not in env and not s.startswith("?")
    }
    return fresh_dim("g") if unknown else dim


def _param_shape(call: ast.Call, env: dict) -> tuple | None:
    """Heuristic shape of ``Parameter(<initializer>)`` from the AST."""
    if not call.args:
        return None
    init = call.args[0]
    shape_node = None
    if isinstance(init, ast.Call):
        for keyword in init.keywords:
            if keyword.arg in ("size", "shape"):
                shape_node = keyword.value
        if shape_node is None and init.args:
            # np.zeros(out_features) / xavier_uniform((a, b), rng)
            first = init.args[0]
            shape_node = first
    if shape_node is None:
        return None
    elements = (
        list(shape_node.elts)
        if isinstance(shape_node, (ast.Tuple, ast.List))
        else [shape_node]
    )
    dims = []
    for element in elements:
        dim = _ground(_dim_from_ast(element, env), env)
        if dim is None:
            return None
        dims.append(dim)
    return tuple(dims)


def _ctor_bindings(
    class_info: ClassInfo, call: ast.Call, env: dict
) -> tuple:
    """Map callee ctor params to caller-space dims for a submodule ctor."""
    init = class_info.func_nodes.get("__init__")
    if init is None:
        return ()
    names = [a.arg for a in init.args.args][1:]  # drop self
    bindings: list = []
    for index, arg in enumerate(call.args):
        if index >= len(names):
            break
        dim = _ground(_dim_from_ast(arg, env), env)
        bindings.append((names[index], dim if dim is not None else fresh_dim(names[index])))
    for keyword in call.keywords:
        if keyword.arg in names and all(b[0] != keyword.arg for b in bindings):
            dim = _ground(_dim_from_ast(keyword.value, env), env)
            if dim is not None:
                bindings.append((keyword.arg, dim))
    return tuple(bindings)


def _index_class_functions(info: ClassInfo) -> None:
    """First-pass scan: every method node + declared spec, before any
    attr collection runs.  ``_ctor_bindings`` reads the *callee's*
    ``__init__`` params, so this must be complete for all classes before
    the first caller is collected — collection order must not matter."""
    for item in info.node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.func_nodes[item.name] = item
            spec = _parse_decorator(item)
            if spec is not None:
                info.methods[item.name] = spec


def _collect_class(cls: ast.ClassDef, rel_path: str, registry: SpecRegistry) -> ClassInfo:
    info = registry.classes[cls.name]
    init = info.func_nodes.get("__init__")
    if init is None:
        return info
    # __init__ locals start as their own symbols (ctor int params).
    env: dict = {a.arg: Dim.sym(a.arg) for a in init.args.args[1:]}
    for stmt in init.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        value = stmt.value
        # local rebinding, e.g. ``ff_dim = ff_dim or 4 * dim``
        if isinstance(target, ast.Name):
            dim = _dim_from_ast(value, env)
            if dim is not None:
                env[target.id] = dim
            # unparseable (BoolOp default fill-in): keep the symbol
            continue
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        attr = target.attr
        if isinstance(value, ast.Call):
            callee = _dotted(value.func)
            leaf = callee.rsplit(".", 1)[-1] if callee else None
            if leaf in _PARAM_FACTORIES:
                info.attrs[attr] = AttrInfo("param", shape=_param_shape(value, env))
                continue
            if leaf == "ModuleList" and value.args:
                elem = value.args[0]
                inner_call = None
                if isinstance(elem, (ast.List, ast.ListComp)):
                    candidates = (
                        [elem.elt] if isinstance(elem, ast.ListComp) else elem.elts
                    )
                    for candidate in candidates:
                        if isinstance(candidate, ast.Call):
                            inner_call = candidate
                            break
                if inner_call is not None:
                    inner_name = _dotted(inner_call.func)
                    inner_leaf = inner_name.rsplit(".", 1)[-1] if inner_name else None
                    inner_info = registry.class_for(inner_leaf)
                    info.attrs[attr] = AttrInfo(
                        "module_list",
                        class_name=inner_leaf,
                        bindings=_ctor_bindings(inner_info, inner_call, env)
                        if inner_info
                        else (),
                    )
                    continue
                info.attrs[attr] = AttrInfo("module_list")
                continue
            callee_info = registry.class_for(leaf)
            if callee_info is not None or (leaf and leaf[:1].isupper()):
                info.attrs[attr] = AttrInfo(
                    "module",
                    class_name=leaf,
                    bindings=_ctor_bindings(callee_info, value, env)
                    if callee_info
                    else (),
                )
                continue
            info.attrs[attr] = AttrInfo("other")
            continue
        dim = _ground(_dim_from_ast(value, env), env)
        if dim is not None:
            info.attrs[attr] = AttrInfo("scalar", dim=dim)
            # derived-dim equation, e.g. head_dim = dim // num_heads
            if not dim.is_const and dim != Dim.sym(attr):
                info.equations[attr] = dim
        else:
            info.attrs[attr] = AttrInfo("other")
    return info


def decorated_function_names(tree: ast.AST) -> set:
    """Names of the tree's top-level ``@shape_spec``-decorated functions."""
    return {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and _parse_decorator(node) is not None
    }


def collect_registry(modules, context: SpecRegistry | None = None) -> SpecRegistry:
    """Build a :class:`SpecRegistry` from parsed source modules.

    ``context`` pre-seeds the registry (e.g. with the on-disk library)
    so ctor calls into classes defined elsewhere still resolve their
    parameter bindings; ``modules``' own definitions override it.
    """
    registry = SpecRegistry()
    if context is not None:
        registry.classes.update(context.classes)
        registry.functions.update(context.functions)
    for module in modules:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                info = ClassInfo(node.name, module.rel_path, node)
                registry.classes[node.name] = info
                _index_class_functions(info)
    for module in modules:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                _collect_class(node, module.rel_path, registry)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                spec = _parse_decorator(node)
                if spec is not None:
                    registry.functions[node.name] = spec
    return registry


# ---------------------------------------------------------------------------
# Cross-file library loading (so core/ files see nn/ specs)
# ---------------------------------------------------------------------------
_LIBRARY_CACHE: dict[str, SpecRegistry] = {}
_SPEC_DIRS = ("nn", "core")


def library_registry(rel_path: str) -> SpecRegistry | None:
    """Registry over the whole ``repro`` package owning ``rel_path``.

    Works only when the analyzed file actually exists on disk (the CLI
    and the repo-sweep tests); fixture sources with synthetic paths get
    a self-contained per-module registry instead.
    """
    from .linter import SourceModule

    parts = Path(rel_path).parts
    if "repro" not in parts or not Path(rel_path).exists():
        return None
    package = Path(*parts[: parts.index("repro") + 1])
    key = str(package.resolve())
    cached = _LIBRARY_CACHE.get(key)
    if cached is not None:
        return cached
    modules = []
    for sub in _SPEC_DIRS:
        directory = package / sub
        if directory.is_dir():
            for path in sorted(directory.glob("*.py")):
                try:
                    modules.append(
                        SourceModule(path.read_text(), path.as_posix())
                    )
                except SyntaxError:
                    continue
    registry = collect_registry(modules)
    _LIBRARY_CACHE[key] = registry
    return registry


# ---------------------------------------------------------------------------
# Problems
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Problem:
    kind: str  # "mismatch" | "broadcast" | "dtype" | "parity"
    lineno: int
    symbol: str  # Class.method
    message: str


# ---------------------------------------------------------------------------
# Abstract interpreter
# ---------------------------------------------------------------------------
_ELEMENTWISE_METHODS = frozenset(
    {"relu", "sigmoid", "tanh", "exp", "log", "abs", "clip", "copy"}
)
_REDUCTIONS = frozenset({"sum", "mean", "max", "min"})
_SYMMETRIC_OPS = frozenset(
    {"relu", "sigmoid", "tanh", "softmax", "log_softmax", "masked_fill"}
)
_SHAPE_PRESERVING_FUNCS = frozenset(
    {
        "softmax",
        "log_softmax",
        "relu",
        "sigmoid",
        "tanh",
        "gelu",
        "exp",
        "sqrt",
        "ascontiguousarray",
        "asarray",
        "abs",
    }
)


class _Interpreter:
    """Abstractly executes one decorated method body."""

    def __init__(self, registry: SpecRegistry, cls: ClassInfo, spec: MethodSpec):
        self.registry = registry
        self.cls = cls
        self.spec = spec
        self.problems: list[Problem] = []
        self.symbol = f"{cls.name}.{spec.name}" if cls is not None else spec.name
        self.env: dict = {}
        for arg in spec.arg_names():
            declared = spec.inputs.get(arg)
            if declared is not None:
                self.env[arg] = declared
            else:
                # undeclared args are scalars named after themselves —
                # int dims like `length` flow into zeros()/reshape();
                # anything used as a tensor degrades to ANY at the op
                self.env[arg] = Scalar(Dim.sym(arg), "any")
        self.is_tape_method = not spec.name.startswith("infer_")

    # -- problem helpers ----------------------------------------------------
    def problem(self, kind: str, node: ast.AST, message: str) -> None:
        self.problems.append(
            Problem(kind, getattr(node, "lineno", 1), self.symbol, message)
        )

    # -- class-space substitution -------------------------------------------
    def _class_subst(self, dims: tuple) -> tuple:
        """Apply the class's derived-dim equations (head_dim -> dim/heads)."""
        if self.cls is None or not self.cls.equations:
            return dims
        return tuple(
            d if d is STAR else d.subst(self.cls.equations) for d in dims
        )

    # -- entry --------------------------------------------------------------
    def run(self) -> list[Problem]:
        self._exec_body(self.spec.node.body, self.env)
        return self.problems

    # -- statements ----------------------------------------------------------
    def _exec_body(self, body, env) -> None:
        for stmt in body:
            self._exec(stmt, env)

    def _exec(self, stmt, env) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            value = self.eval(stmt.value, env)
            self._bind(stmt.targets[0], value, env)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id, ANY)
                env[stmt.target.id] = self._binop(
                    current, self.eval(stmt.value, env), stmt
                )
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_return(stmt, self.eval(stmt.value, env))
        elif isinstance(stmt, ast.If):
            if self.is_tape_method and self._is_no_tape_test(stmt.test):
                # the fast-path dispatch prologue: not this mode's body
                self._exec_body(stmt.orelse, env)
                return
            before = dict(env)
            self._exec_body(stmt.body, env)
            after_body = dict(env)
            env.clear()
            env.update(before)
            self._exec_body(stmt.orelse, env)
            for key, value in after_body.items():
                env[key] = _join(env.get(key), value)
        elif isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.For):
                self._bind_loop_target(stmt, env)
            before = dict(env)
            self._exec_body(stmt.body, env)
            for key in list(env):
                if key in before and env[key] is not before[key]:
                    env[key] = _join(before[key], env[key])
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.With):
            self._exec_body(stmt.body, env)
        # raise/assert/pass/try: nothing shape-relevant in the idiom subset

    def _bind(self, target, value, env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, ast.Tuple):
            items = None
            if isinstance(value, TupleVal):
                items = value.items
            elif isinstance(value, ShapeVal) and not value.tensor.has_star:
                items = tuple(Scalar(d) for d in value.tensor.dims)
            for index, element in enumerate(target.elts):
                if isinstance(element, ast.Name):
                    if items is not None and index < len(items):
                        env[element.id] = items[index]
                    else:
                        env[element.id] = ANY

    def _bind_loop_target(self, stmt: ast.For, env) -> None:
        iterable = self.eval(stmt.iter, env)
        target = stmt.target
        if isinstance(iterable, ModuleRef):  # for layer in self.layers
            self._bind(target, iterable, env)
        elif isinstance(iterable, TupleVal) and isinstance(target, ast.Tuple):
            # for i, layer in enumerate(self.layers)
            self._bind(target, iterable, env)
        elif isinstance(iterable, ListVal):
            self._bind(target, iterable.elem if iterable.elem is not None else ANY, env)
        else:
            self._bind(target, ANY, env)

    @staticmethod
    def _is_no_tape_test(test: ast.AST) -> bool:
        if isinstance(test, ast.Call):
            name = _dotted(test.func)
            if name and name.rsplit(".", 1)[-1] == "no_tape_active":
                return True
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            inner = test.operand
            if isinstance(inner, ast.Call):
                name = _dotted(inner.func)
                if name and name.rsplit(".", 1)[-1] == "is_grad_enabled":
                    return True
        return False

    # -- return check --------------------------------------------------------
    def _check_return(self, node, value) -> None:
        declared = self.spec.out
        if declared is None or value is ANY:
            return
        if isinstance(declared, TupleVal):
            if isinstance(value, TupleVal) and len(value.items) == len(declared.items):
                for want, got in zip(declared.items, value.items):
                    self._compare_out(node, want, got)
            return
        self._compare_out(node, declared, value)

    def _compare_out(self, node, declared, value) -> None:
        if not isinstance(declared, SymTensor) or not isinstance(value, SymTensor):
            return
        if declared.has_star or value.has_star:
            # Right-align and compare the trailing dims both sides pin
            # down (a leading ``...`` matches any prefix, including an
            # empty one, so only the overlap is checkable).
            want_tail = declared.dims[1:] if declared.has_star else declared.dims
            got_tail = value.dims[1:] if value.has_star else value.dims
            if not value.has_star and len(got_tail) < len(want_tail):
                self.problem(
                    "mismatch",
                    node,
                    f"returns rank {len(got_tail)} value {value!r} but the "
                    f"declared output spec is {declared!r}",
                )
                return
            count = min(len(want_tail), len(got_tail))
            if not count:
                return
            want = self._class_subst(tuple(want_tail[-count:]))
            got = self._class_subst(tuple(got_tail[-count:]))
            for offset, (a, b) in enumerate(zip(want, got)):
                if provably_different(a, b):
                    self.problem(
                        "mismatch",
                        node,
                        f"output dim {offset - count} is {b!r} but the "
                        f"declared spec says {a!r}",
                    )
            return
        if len(declared.dims) != len(value.dims):
            self.problem(
                "mismatch",
                node,
                f"returns rank {len(value.dims)} value {value!r} but the "
                f"declared output spec is {declared!r}",
            )
            return
        want = self._class_subst(declared.dims)
        got = self._class_subst(value.dims)
        for axis, (a, b) in enumerate(zip(want, got)):
            if provably_different(a, b):
                self.problem(
                    "mismatch",
                    node,
                    f"output dim {axis} is {b!r} but the declared spec "
                    f"says {a!r}",
                )
        if value.dtype not in ("any", declared.dtype):
            self.problem(
                "dtype",
                node,
                f"returns abstract dtype {value.dtype} but the declared "
                f"output dtype is {declared.dtype}",
            )

    # -- expression evaluation -----------------------------------------------
    def eval(self, node, env):
        if isinstance(node, ast.Name):
            return env.get(node.id, ANY)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Scalar(None, "bool")
            if isinstance(node.value, int):
                return Scalar(Dim.const(node.value), "int64")
            if isinstance(node.value, float):
                return Scalar(None, CANONICAL_DTYPE)
            return ANY
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            return self._binop(
                self.eval(node.left, env), self.eval(node.right, env), node
            )
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, env)
            if (
                isinstance(node.op, ast.USub)
                and isinstance(operand, Scalar)
                and operand.dim is not None
            ):
                return Scalar(Dim.const(0) - operand.dim, operand.dtype)
            return operand
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, ast.Tuple):
            return TupleVal(tuple(self.eval(e, env) for e in node.elts))
        if isinstance(node, ast.List):
            items = [self.eval(e, env) for e in node.elts]
            elem = items[0] if items else None
            for item in items[1:]:
                elem = _join(elem, item)
            return ListVal(elem)
        if isinstance(node, ast.IfExp):
            return _join(self.eval(node.body, env), self.eval(node.orelse, env))
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            return Scalar(None, "bool")
        return ANY

    # -- attributes ----------------------------------------------------------
    def _eval_attribute(self, node: ast.Attribute, env):
        base = self.eval(node.value, env)
        attr = node.attr
        if attr == "shape" and isinstance(base, SymTensor):
            return ShapeVal(base)
        if attr == "data":
            return base  # Tensor.data: same abstract value
        if isinstance(base, ModuleRef):
            return self._module_attr(base, attr)
        if isinstance(node.value, ast.Name) and node.value.id == "self" and self.cls:
            info = self.cls.attrs.get(attr)
            if info is None:
                return ANY
            if info.kind == "param":
                if info.shape is None:
                    return ANY
                return SymTensor(self._class_subst(info.shape), CANONICAL_DTYPE)
            if info.kind == "scalar":
                return Scalar(info.dim)
            if info.kind in ("module", "module_list"):
                return ModuleRef(info.class_name, info.bindings, attr)
        return ANY

    def _module_attr(self, ref: ModuleRef, attr: str):
        """``self.k_proj.weight`` -> the sub-module's param in caller space."""
        info = self.registry.class_for(ref.class_name)
        if info is None:
            return ANY
        sub = info.attrs.get(attr)
        mapping = dict(ref.bindings)
        if sub is not None and sub.kind == "param" and sub.shape is not None:
            dims = tuple(
                d if d is STAR else d.subst(info.equations).subst(mapping)
                for d in sub.shape
            )
            return SymTensor(dims, CANONICAL_DTYPE)
        if sub is not None and sub.kind in ("module", "module_list"):
            inner = tuple(
                (sym, dim.subst(mapping)) for sym, dim in sub.bindings
            )
            return ModuleRef(sub.class_name, inner, attr)
        return ANY

    # -- calls ---------------------------------------------------------------
    def _eval_call(self, node: ast.Call, env):
        func = node.func
        args = [self.eval(a, env) for a in node.args]
        kwargs = {k.arg: self.eval(k.value, env) for k in node.keywords if k.arg}

        if isinstance(func, ast.Attribute):
            base = self.eval(func.value, env)
            method = func.attr
            if isinstance(base, ModuleRef):
                return self._apply_module(node, base, method, args, kwargs)
            if isinstance(base, SymTensor):
                return self._tensor_method(node, base, method, args, kwargs)
            if isinstance(base, ListVal) and method == "append":
                if args:
                    base.elem = args[0] if base.elem is None else _join(base.elem, args[0])
                return ANY
            # direct sub-module application: self.q_proj(query)
            callee = self._eval_attribute(func, env)
            if isinstance(callee, ModuleRef):
                return self._apply_module(node, callee, "forward", args, kwargs)
            # dotted library calls: np.X / kernels.X / functional.X / F.X
            name = _dotted(func)
            if name is not None:
                return self._library_call(node, name.rsplit(".", 1)[-1], args, kwargs)
            return ANY

        if isinstance(func, ast.Name):
            leaf = func.id
            # direct submodule call: layer(x) with layer a ModuleRef
            bound = env.get(leaf)
            if isinstance(bound, ModuleRef):
                return self._apply_module(node, bound, "forward", args, kwargs)
            if leaf == "enumerate" and args and isinstance(args[0], ModuleRef):
                return TupleVal((Scalar(None), args[0]))
            if leaf in ("Tensor", "Parameter"):
                return args[0] if args else ANY
            if leaf == "len":
                return Scalar(None)
            return self._library_call(node, leaf, args, kwargs)
        return ANY

    def _apply_module(self, node, ref: ModuleRef, method: str, args, kwargs):
        if method in ("__call__",):
            method = "forward"
        info = self.registry.class_for(ref.class_name)
        if info is None:
            return ANY
        spec = info.methods.get(method)
        if spec is None and method == "infer_forward":
            spec = info.methods.get("forward")
        if spec is None:
            return ANY
        return self._apply_spec(node, info, ref, spec, args, kwargs)

    def _apply_spec(self, node, info: ClassInfo, ref: ModuleRef, spec, args, kwargs):
        """Unify actual args against a callee spec; produce the output."""
        mapping = dict(ref.bindings)
        # resolve callee derived dims (head_dim = dim/num_heads) first
        equations = {
            sym: dim.subst(mapping) for sym, dim in info.equations.items()
        }
        mapping.update(equations)
        arg_names = spec.arg_names()
        actuals = dict(zip(arg_names, args))
        actuals.update({k: v for k, v in kwargs.items() if k in arg_names})
        bindings: dict[str, Dim] = {}
        # int-valued args (lengths, dims) bind by name into callee space
        for arg_name, actual in actuals.items():
            if (
                arg_name not in spec.inputs
                and isinstance(actual, Scalar)
                and actual.dim is not None
            ):
                bindings[arg_name] = actual.dim
        first_actual: SymTensor | None = None
        lead: tuple | None = None  # actual leading dims behind a spec's `...`
        for arg_name, declared in spec.inputs.items():
            actual = actuals.get(arg_name)
            if actual is None or actual is ANY:
                continue
            if isinstance(declared, SymTensor) and isinstance(actual, SymTensor):
                if first_actual is None:
                    first_actual = actual
                if declared.has_star and not actual.has_star and lead is None:
                    tail = len(declared.dims) - 1
                    if len(actual.dims) >= tail:
                        lead = actual.dims[: len(actual.dims) - tail]
                self._unify(node, info, declared, actual, mapping, bindings, arg_name)
                if (
                    declared.dtype != "any"
                    and actual.dtype not in ("any", declared.dtype)
                ):
                    self.problem(
                        "dtype",
                        node,
                        f"passes abstract dtype {actual.dtype} for "
                        f"{info.name}.{spec.name}({arg_name}: {declared.dtype})",
                    )
        if spec.out is None:
            return ANY
        full = dict(mapping)
        full.update(bindings)

        def out_tensor(declared: SymTensor) -> SymTensor:
            if declared.dims == (STAR,) and first_actual is not None:
                # "(...,)" out + "(...,)" in: shape-preserving passthrough
                return first_actual
            dims = []
            for dim in declared.dims:
                if dim is STAR:
                    # splice the caller's actual leading dims back in
                    dims.extend(lead if lead is not None else (STAR,))
                    continue
                # a callee symbol with no caller-space binding survives
                # substitution literally — it must not leak into the
                # caller's namespace, so it degrades to a placeholder
                survivors = dim.free_symbols() - set(full)
                if any(not s.startswith("?") for s in survivors):
                    dims.append(fresh_dim("out"))
                    continue
                dims.append(dim.subst(full))
            return SymTensor(tuple(dims), declared.dtype)

        if isinstance(spec.out, TupleVal):
            return TupleVal(
                tuple(
                    out_tensor(i) if isinstance(i, SymTensor) else ANY
                    for i in spec.out.items
                )
            )
        if isinstance(spec.out, SymTensor):
            return out_tensor(spec.out)
        return ANY

    def _unify(self, node, info, declared: SymTensor, actual: SymTensor, mapping, bindings, arg_name):
        dd, ad = list(declared.dims), list(actual.dims)
        if dd and dd[0] is STAR:
            dd = dd[1:]
            ad = ad[-len(dd):] if len(dd) and len(ad) >= len(dd) else ad
            if actual.has_star and ad and ad[0] is STAR:
                ad = ad[1:]
        elif actual.has_star:
            ad = ad[1:]
            dd = dd[-len(ad):] if len(ad) and len(dd) >= len(ad) else dd
        if len(dd) != len(ad):
            if not (declared.has_star or actual.has_star):
                self.problem(
                    "mismatch",
                    node,
                    f"passes rank-{len(actual.dims)} value {actual!r} for "
                    f"{info.name} input `{arg_name}` declared {declared!r}",
                )
            return
        for want, got in zip(dd, ad):
            if want is STAR or got is STAR:
                continue
            resolved = want.subst(mapping).subst(bindings)
            free = [
                s
                for s in resolved.free_symbols()
                if s not in mapping and s not in bindings and not s.startswith("?")
            ]
            if resolved == got:
                continue
            if len(free) == 1 and resolved == Dim.sym(free[0]):
                bindings[free[0]] = got
                continue
            if free:
                continue  # partially free composite dim: don't guess
            if provably_different(resolved, got):
                self.problem(
                    "mismatch",
                    node,
                    f"passes {got!r} where {info.name} input `{arg_name}` "
                    f"requires {resolved!r}",
                )

    # -- tensor methods -------------------------------------------------------
    def _tensor_method(self, node, base: SymTensor, method: str, args, kwargs):
        if method in _ELEMENTWISE_METHODS:
            return base
        if method == "astype":
            return SymTensor(base.dims, _dtype_of_node(node.args[0]) if node.args else "any")
        if method in _REDUCTIONS:
            axis = kwargs.get("axis", args[0] if args else None)
            keep_true = False
            for keyword in node.keywords:
                if keyword.arg == "keepdims" and isinstance(keyword.value, ast.Constant):
                    keep_true = bool(keyword.value.value)
            if base.has_star:
                if not keep_true:
                    return ANY
                dims = list(base.dims)
                if (
                    dims[-1] is not STAR
                    and isinstance(axis, Scalar)
                    and axis.dim is not None
                    and axis.dim.const_value == -1
                ):
                    dims[-1] = Dim.const(1)
                return SymTensor(tuple(dims), base.dtype)
            index = _axis_index(axis, len(base.dims))
            if index is None:
                return ANY
            dims = list(base.dims)
            if keep_true:
                dims[index] = Dim.const(1)
            else:
                del dims[index]
            return SymTensor(tuple(dims), base.dtype)
        if method == "reshape":
            return self._reshape(node, base, args)
        if method in ("transpose", "permute"):
            return self._transpose(base, node, args)
        if method == "swapaxes":
            return self._swapaxes(base, args)
        if method == "matmul":
            return self._matmul(node, base, args[0] if args else ANY)
        if method == "setflags":
            return ANY
        return ANY

    def _reshape(self, node, base: SymTensor, args):
        if len(args) == 1 and isinstance(args[0], TupleVal):
            args = list(args[0].items)
        dims = []
        minus_one = 0
        for value in args:
            if isinstance(value, Scalar) and value.dim is not None:
                if value.dim.const_value == -1:
                    minus_one += 1
                    dims.append(None)
                else:
                    dims.append(value.dim)
            else:
                dims.append(fresh_dim("r"))
        if base.has_star or any(d is STAR for d in base.dims):
            return SymTensor(
                tuple(fresh_dim("r") if d is None else d for d in dims), base.dtype
            )
        total = Dim.const(1)
        for dim in base.dims:
            total = total * dim
        known = Dim.const(1)
        for dim in dims:
            if dim is not None:
                known = known * dim
        if minus_one == 1:
            inferred = total / known
            dims = [inferred if d is None else d for d in dims]
            if any(d is None or d is ANY for d in dims):
                dims = [fresh_dim("r") if d is None else d for d in dims]
        elif minus_one == 0:
            want = self._class_subst((known,))[0]
            have = self._class_subst((total,))[0]
            if provably_different(want, have):
                self.problem(
                    "mismatch",
                    node,
                    f"reshape to total size {want!r} from a value of total "
                    f"size {have!r}",
                )
        cleaned = tuple(d if isinstance(d, Dim) else fresh_dim("r") for d in dims)
        return SymTensor(cleaned, base.dtype)

    def _transpose(self, base: SymTensor, node, args):
        if base.has_star:
            return ANY
        if len(args) == 1 and isinstance(args[0], TupleVal):
            args = list(args[0].items)
        order = []
        for value in args:
            if isinstance(value, Scalar) and value.dim is not None and value.dim.is_const:
                order.append(int(value.dim.const_value))
            else:
                return ANY
        if not order:
            return SymTensor(tuple(reversed(base.dims)), base.dtype)
        if sorted(order) != list(range(len(base.dims))):
            return ANY
        return SymTensor(tuple(base.dims[i] for i in order), base.dtype)

    def _swapaxes(self, base: SymTensor, args):
        if base.has_star or len(args) != 2:
            return ANY
        axes = []
        for value in args:
            if isinstance(value, Scalar) and value.dim is not None and value.dim.is_const:
                axes.append(int(value.dim.const_value) % len(base.dims))
            else:
                return ANY
        dims = list(base.dims)
        dims[axes[0]], dims[axes[1]] = dims[axes[1]], dims[axes[0]]
        return SymTensor(tuple(dims), base.dtype)

    def _matmul(self, node, a, b):
        if not isinstance(a, SymTensor) or not isinstance(b, SymTensor):
            return ANY
        if a.has_star or b.has_star:
            # (..., k) @ (k, n): check the contraction when both ends known
            if len(a.dims) >= 1 and len(b.dims) >= 2:
                inner_a = a.dims[-1]
                inner_b = b.dims[-2]
                if inner_a is not STAR and inner_b is not STAR:
                    self._check_inner(node, inner_a, inner_b)
            if len(b.dims) >= 1 and b.dims[-1] is not STAR:
                lead = a.dims[:-1] if a.dims else (STAR,)
                return SymTensor(tuple(lead) + (b.dims[-1],), promote(a.dtype, b.dtype))
            return ANY
        if len(a.dims) < 1 or len(b.dims) < 1:
            return ANY
        if len(b.dims) == 1:
            self._check_inner(node, a.dims[-1], b.dims[0])
            return SymTensor(a.dims[:-1], promote(a.dtype, b.dtype))
        self._check_inner(node, a.dims[-1], b.dims[-2])
        batch = a.dims[:-2] if len(a.dims) > len(b.dims) else b.dims[:-2]
        if len(a.dims) == len(b.dims):
            batch = a.dims[:-2]
        lead = a.dims[-2:-1] if len(a.dims) >= 2 else ()
        return SymTensor(
            tuple(batch) + tuple(lead) + (b.dims[-1],), promote(a.dtype, b.dtype)
        )

    def _check_inner(self, node, a: Dim, b: Dim) -> None:
        want = self._class_subst((a,))[0]
        got = self._class_subst((b,))[0]
        if provably_different(want, got):
            self.problem(
                "mismatch",
                node,
                f"matmul contraction of {want!r} against {got!r}",
            )

    # -- library calls --------------------------------------------------------
    def _library_call(self, node, leaf: str, args, kwargs):
        # declared specs win over the built-in fallback table
        if leaf in self.registry.functions:
            spec = self.registry.functions[leaf]
            info = ClassInfo(leaf, "", None)
            return self._apply_spec(node, info, ModuleRef(None, ()), spec, args, kwargs)
        if self.cls is not None and leaf in self.cls.methods:
            # self._helper(...) resolved by name (staticmethod-style call)
            spec = self.cls.methods[leaf]
            return self._apply_spec(
                node, self.cls, ModuleRef(self.cls.name, ()), spec, args, kwargs
            )
        first = args[0] if args else None
        if leaf in _SHAPE_PRESERVING_FUNCS:
            return first if isinstance(first, SymTensor) else ANY
        if leaf == "masked_fill":
            return first if isinstance(first, SymTensor) else ANY
        if leaf == "where":
            for value in args:
                if isinstance(value, SymTensor):
                    return value
            return ANY
        if leaf in ("matmul",):
            if len(args) >= 2:
                return self._matmul(node, args[0], args[1])
            return ANY
        if leaf == "linear":
            # kernels.linear(x, W, b): (..., in) @ (in, out) + (out,)
            if len(args) >= 2 and isinstance(args[0], SymTensor) and isinstance(args[1], SymTensor):
                return self._matmul(node, args[0], args[1])
            return ANY
        if leaf == "layer_norm":
            return first if isinstance(first, SymTensor) else ANY
        if leaf in ("concat", "concatenate"):
            return self._concat(args, kwargs, stacked=False)
        if leaf == "stack":
            return self._concat(args, kwargs, stacked=True)
        if leaf in ("zeros", "ones", "empty", "full"):
            shape = first
            dtype = "any"
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    dtype = _dtype_of_node(keyword.value)
            if dtype == "any":
                dtype = CANONICAL_DTYPE if leaf != "full" else "any"
            if isinstance(shape, TupleVal):
                dims = []
                for item in shape.items:
                    if isinstance(item, Scalar) and item.dim is not None:
                        dims.append(item.dim)
                    else:
                        dims.append(fresh_dim("z"))
                return SymTensor(tuple(dims), dtype)
            if isinstance(shape, Scalar) and shape.dim is not None:
                return SymTensor((shape.dim,), dtype)
            return ANY
        if leaf == "arange":
            return SymTensor((fresh_dim("n"),), "int64")
        if leaf == "range":
            return ListVal(Scalar(None))
        if leaf == "causal_mask":
            if isinstance(first, Scalar) and first.dim is not None:
                return SymTensor((first.dim, first.dim), "bool")
            length = fresh_dim("L")
            return SymTensor((length, length), "bool")
        if leaf == "broadcast_to":
            if len(args) >= 2 and isinstance(args[1], TupleVal):
                dims = tuple(
                    i.dim if isinstance(i, Scalar) and i.dim is not None else fresh_dim("b")
                    for i in args[1].items
                )
                dtype = first.dtype if isinstance(first, SymTensor) else "any"
                return SymTensor(dims, dtype)
            return ANY
        if leaf == "repeat_batch":
            if (
                isinstance(first, SymTensor)
                and not first.has_star
                and len(args) >= 2
                and isinstance(args[1], Scalar)
                and args[1].dim is not None
            ):
                return SymTensor((args[1].dim,) + first.dims[1:], first.dtype)
            return ANY
        if leaf == "_wrap":
            return first
        return ANY

    def _concat(self, args, kwargs, stacked: bool):
        seq = args[0] if args else None
        axis_val = kwargs.get("axis", args[1] if len(args) > 1 else None)
        axis = None
        if isinstance(axis_val, Scalar) and axis_val.dim is not None and axis_val.dim.is_const:
            axis = int(axis_val.dim.const_value)
        elem = None
        if isinstance(seq, ListVal):
            elem = seq.elem if isinstance(seq.elem, SymTensor) else None
        if elem is None or elem.has_star or axis is None:
            return ANY
        dims = list(elem.dims)
        if stacked:
            if not 0 <= axis <= len(dims):
                return ANY
            dims.insert(axis, fresh_dim("s"))
        else:
            if not 0 <= axis < len(dims):
                return ANY
            dims[axis] = fresh_dim("c")
        return SymTensor(tuple(dims), elem.dtype)

    # -- subscripts -----------------------------------------------------------
    def _eval_subscript(self, node: ast.Subscript, env):
        base = self.eval(node.value, env)
        if isinstance(base, ShapeVal):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(index.value, int):
                dims = base.tensor.dims
                if base.tensor.has_star:
                    return Scalar(fresh_dim("d"))
                if -len(dims) <= index.value < len(dims):
                    return Scalar(dims[index.value])
            return Scalar(fresh_dim("d"))
        if isinstance(base, TupleVal):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(index.value, int):
                if -len(base.items) <= index.value < len(base.items):
                    return base.items[index.value]
            return ANY
        if isinstance(base, ListVal):
            return base.elem
        if not isinstance(base, SymTensor) or base.has_star:
            return ANY
        index = node.slice
        elements = list(index.elts) if isinstance(index, ast.Tuple) else [index]
        dims = list(base.dims)
        out: list = []
        axis = 0
        for element in elements:
            if axis >= len(dims) and not isinstance(element, ast.Constant):
                return ANY
            if isinstance(element, ast.Slice):
                if element.lower is None and element.upper is None:
                    out.append(dims[axis])
                else:
                    lower = (
                        self._scalar_dim(element.lower, env)
                        if element.lower is not None
                        else Dim.const(0)
                    )
                    upper = self._scalar_dim(element.upper, env)
                    if lower is not None and upper is not None:
                        out.append(upper - lower)
                    else:
                        out.append(fresh_dim("sl"))
                axis += 1
            elif isinstance(element, ast.Constant) and element.value is None:
                out.append(Dim.const(1))  # np.newaxis
            elif isinstance(element, ast.Constant) and isinstance(element.value, int):
                axis += 1  # integer index drops the dim
            elif isinstance(element, ast.UnaryOp) or isinstance(element, ast.Name):
                value = self.eval(element, env)
                if isinstance(value, Scalar):
                    axis += 1  # scalar index drops the dim
                else:
                    return ANY  # advanced indexing
            else:
                return ANY
        out.extend(dims[axis:])
        return SymTensor(tuple(out), base.dtype)

    def _scalar_dim(self, node, env) -> Dim | None:
        value = self.eval(node, env)
        if isinstance(value, Scalar):
            return value.dim
        return None

    # -- binary ops ------------------------------------------------------------
    def _binop(self, left, right, node):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            if isinstance(left, SymTensor) and isinstance(right, SymTensor):
                return self._matmul(node, left, right)
            return ANY
        if isinstance(left, Scalar) and isinstance(right, Scalar):
            if left.dim is not None and right.dim is not None and isinstance(node, ast.BinOp):
                op = node.op
                if isinstance(op, ast.Add):
                    return Scalar(left.dim + right.dim)
                if isinstance(op, ast.Sub):
                    return Scalar(left.dim - right.dim)
                if isinstance(op, ast.Mult):
                    return Scalar(left.dim * right.dim)
                if isinstance(op, (ast.Div, ast.FloorDiv)):
                    return Scalar(left.dim / right.dim)
            return Scalar(None, promote(left.dtype, right.dtype))
        if isinstance(left, SymTensor) and isinstance(right, Scalar):
            return SymTensor(left.dims, promote(left.dtype, right.dtype))
        if isinstance(left, Scalar) and isinstance(right, SymTensor):
            return SymTensor(right.dims, promote(left.dtype, right.dtype))
        if isinstance(left, SymTensor) and isinstance(right, SymTensor):
            return self._broadcast(left, right, node)
        if isinstance(left, SymTensor):
            return SymTensor(left.dims, "any")
        if isinstance(right, SymTensor):
            return SymTensor(right.dims, "any")
        return ANY

    def _broadcast(self, a: SymTensor, b: SymTensor, node) -> SymTensor:
        dtype = promote(a.dtype, b.dtype)
        if a.has_star or b.has_star:
            longer = a if len(a.dims) >= len(b.dims) else b
            return SymTensor(longer.dims, dtype)
        ra, rb = len(a.dims), len(b.dims)
        out = []
        for offset in range(1, max(ra, rb) + 1):
            da = a.dims[-offset] if offset <= ra else None
            db = b.dims[-offset] if offset <= rb else None
            if da is None:
                out.append(db)
            elif db is None:
                out.append(da)
            elif da == db:
                out.append(da)
            elif da.is_one or db.is_one:
                stretched = db if da.is_one else da
                # rank-equal 1-stretching of a *declared* size-1 dim is the
                # silent-broadcast class; trailing vector adds (bias, gamma)
                # and keepdims reductions are idiomatic and not flagged.
                if ra == rb and self._declared_one(da if da.is_one else db, node):
                    self.problem(
                        "broadcast",
                        node,
                        f"implicit broadcast stretches declared size-1 dim "
                        f"against {stretched!r} in a rank-{ra} elementwise op",
                    )
                out.append(stretched)
            elif provably_different(da, db):
                self.problem(
                    "mismatch",
                    node,
                    f"elementwise op on incompatible dims {da!r} vs {db!r}",
                )
                out.append(da)
            else:
                out.append(da if not da.is_fresh else db)
        out.reverse()
        return SymTensor(tuple(out), dtype)

    def _declared_one(self, dim: Dim, node) -> bool:
        """Was this size-1 dim declared in an input spec (vs computed)?

        Computed 1-dims (keepdims reductions, ``x[:, t:t+1]`` slices,
        ``[None]`` axes) are deliberate; a 1 in a *declared input spec*
        stretching inside the body is the suspicious case.
        """
        for declared in self.spec.inputs.values():
            if isinstance(declared, SymTensor) and any(
                isinstance(d, Dim) and d.is_one for d in declared.dims if d is not STAR
            ):
                return True
        return False


def _axis_index(axis, rank: int) -> int | None:
    """Concrete axis of a reduction, or None when unknown / full-reduce."""
    if not isinstance(axis, Scalar) or axis.dim is None:
        return None
    value = axis.dim.const_value
    if value is None:
        return None
    index = int(value)
    if -rank <= index < rank:
        return index % rank
    return None


def _join(a, b):
    """Least upper bound of two abstract values (ANY when they differ)."""
    if a is None:
        return b
    if b is None:
        return a
    if isinstance(a, _Any) or isinstance(b, _Any):
        return ANY
    if isinstance(a, SymTensor) and isinstance(b, SymTensor):
        if a == b:
            return a
        if len(a.dims) == len(b.dims):
            dims = []
            for da, db in zip(a.dims, b.dims):
                if da is STAR or db is STAR:
                    if da is not db:
                        return ANY  # star vs pinned dim: cannot align
                    dims.append(STAR)
                else:
                    dims.append(da if da == db else fresh_dim("j"))
            return SymTensor(tuple(dims), promote(a.dtype, b.dtype))
        return ANY
    if isinstance(a, TupleVal) and isinstance(b, TupleVal) and len(a.items) == len(b.items):
        return TupleVal(tuple(_join(x, y) for x, y in zip(a.items, b.items)))
    if isinstance(a, Scalar) and isinstance(b, Scalar):
        if a == b:
            return a
        return Scalar(None, promote(a.dtype, b.dtype))
    if a is b:
        return a
    return ANY


def interpret_class(registry: SpecRegistry, info: ClassInfo) -> list[Problem]:
    """Abstractly interpret every decorated method of one class."""
    problems: list[Problem] = []
    for spec in info.methods.values():
        problems.extend(_Interpreter(registry, info, spec).run())
    return problems


def interpret_function(registry: SpecRegistry, spec: MethodSpec) -> list[Problem]:
    return _Interpreter(registry, None, spec).run()


# ---------------------------------------------------------------------------
# Dual-mode parity
# ---------------------------------------------------------------------------
MODE_PAIR_PREFIX = "infer_"


def mode_pairs(info: ClassInfo) -> list[tuple[str, str]]:
    """(tape, no-tape) method-name pairs by the ``infer_`` convention."""
    pairs = []
    for name in sorted(info.func_nodes):
        if name.startswith(MODE_PAIR_PREFIX):
            continue
        sibling = MODE_PAIR_PREFIX + name
        if sibling in info.func_nodes:
            pairs.append((name, sibling))
    return pairs


# tape-path spellings normalized to the kernel op vocabulary
_TAPE_OP_ALIASES = {"tanh": "tanh", "relu": "relu", "sigmoid": "sigmoid"}


def _body_reads_and_ops(
    registry: SpecRegistry, info: ClassInfo, func: ast.FunctionDef, skip_dispatch: bool
) -> tuple[set[str], set[str]]:
    """(param-bearing attr reads, mode-symmetric op set) of one body."""
    reads: set[str] = set()
    ops: set[str] = set()

    def param_bearing(attr: str) -> bool:
        sub = info.attrs.get(attr)
        if sub is None:
            return False
        if sub.kind == "param":
            return True
        if sub.kind in ("module", "module_list"):
            return registry.is_param_bearing(sub.class_name)
        return False

    def walk(node) -> None:
        if isinstance(node, ast.If) and skip_dispatch and _Interpreter._is_no_tape_test(node.test):
            for child in node.orelse:
                walk(child)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            return
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and param_bearing(node.attr)
            ):
                reads.add(node.attr)
        if isinstance(node, ast.Call):
            # method spelling (`x.relu()`, even on a call result) or
            # function spelling (`kernels.relu(x)`, `softmax(x)`)
            if isinstance(node.func, ast.Attribute):
                leaf = node.func.attr
            else:
                name = _dotted(node.func)
                leaf = name.rsplit(".", 1)[-1] if name else None
            if leaf in _SYMMETRIC_OPS:
                ops.add(leaf)
        for child in ast.iter_child_nodes(node):
            walk(child)

    for stmt in func.body:
        walk(stmt)
    return reads, ops


def parity_problems(registry: SpecRegistry, info: ClassInfo) -> list[Problem]:
    """Dual-mode parity findings for one class."""
    problems: list[Problem] = []
    for tape_name, infer_name in mode_pairs(info):
        tape_func = info.func_nodes[tape_name]
        infer_func = info.func_nodes[infer_name]
        symbol = f"{info.name}.{infer_name}"
        tape_spec = info.methods.get(tape_name)
        infer_spec = info.methods.get(infer_name)
        if tape_spec is not None and infer_spec is not None:
            if tape_spec.raw_out != infer_spec.raw_out:
                problems.append(
                    Problem(
                        "parity",
                        infer_spec.lineno,
                        symbol,
                        f"declared output spec {infer_spec.raw_out!r} differs "
                        f"from {info.name}.{tape_name}'s {tape_spec.raw_out!r} — "
                        f"dual-mode siblings must produce identical specs",
                    )
                )
            if (
                tape_spec.params is not None
                and infer_spec.params is not None
                and set(tape_spec.params) != set(infer_spec.params)
            ):
                problems.append(
                    Problem(
                        "parity",
                        infer_spec.lineno,
                        symbol,
                        f"declared params {sorted(set(infer_spec.params))} differ "
                        f"from {info.name}.{tape_name}'s "
                        f"{sorted(set(tape_spec.params))} — both modes must draw "
                        f"from the same parameter set",
                    )
                )
        elif (tape_spec is None) != (infer_spec is None):
            undecorated = tape_name if tape_spec is None else infer_name
            problems.append(
                Problem(
                    "parity",
                    info.func_nodes[undecorated].lineno,
                    f"{info.name}.{undecorated}",
                    f"dual-mode pair {tape_name}/{infer_name}: only one side "
                    f"declares a @shape_spec — annotate both so parity is "
                    f"checkable",
                )
            )
        tape_reads, tape_ops = _body_reads_and_ops(registry, info, tape_func, True)
        infer_reads, infer_ops = _body_reads_and_ops(registry, info, infer_func, False)
        missing = tape_reads - infer_reads
        extra = infer_reads - tape_reads
        if missing or extra:
            detail = []
            if missing:
                detail.append(f"missing {sorted(missing)}")
            if extra:
                detail.append(f"extra {sorted(extra)}")
            problems.append(
                Problem(
                    "parity",
                    infer_func.lineno,
                    symbol,
                    f"parameter reads desynced from {info.name}.{tape_name}: "
                    + ", ".join(detail),
                )
            )
        if tape_ops != infer_ops:
            missing_ops = tape_ops - infer_ops
            extra_ops = infer_ops - tape_ops
            detail = []
            if missing_ops:
                detail.append(f"missing {sorted(missing_ops)}")
            if extra_ops:
                detail.append(f"extra {sorted(extra_ops)}")
            problems.append(
                Problem(
                    "parity",
                    infer_func.lineno,
                    symbol,
                    f"op set desynced from {info.name}.{tape_name}: "
                    + ", ".join(detail),
                )
            )
    return problems


# ---------------------------------------------------------------------------
# Lexical dtype discipline
# ---------------------------------------------------------------------------
_DTYPE_NAMES = {
    "float64": "float64",
    "double": "float64",
    "float32": "float32",
    "single": "float32",
    "float16": "float16",
    "int64": "int64",
    "int32": "int32",
    "int_": "int64",
    "intp": "int64",
    "bool_": "bool",
    "bool": "bool",
}
_ALLOWED_CONCRETE = frozenset({"float64", "int64", "bool"})


def _dtype_of_node(node: ast.AST) -> str:
    name = _dotted(node)
    if name is not None:
        leaf = name.rsplit(".", 1)[-1]
        return _DTYPE_NAMES.get(leaf, "any")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _DTYPE_NAMES.get(node.value, "any")
    return "any"


def dtype_problems(tree: ast.AST) -> list[Problem]:
    """Lexical dtype-creep findings: any concrete dtype that is not in
    the canonical set {float64, int64, bool} — a stray ``np.float32``
    (or ``astype(np.float32)``) silently de-canonicalizes everything it
    touches via numpy promotion."""
    problems: list[Problem] = []

    def visit(node, symbol: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = f"{symbol}.{node.name}" if symbol else node.name
            for child in ast.iter_child_nodes(node):
                visit(child, inner)
            return
        if isinstance(node, ast.ClassDef):
            for child in ast.iter_child_nodes(node):
                visit(child, node.name)
            return
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    dtype = _dtype_of_node(keyword.value)
                    if dtype != "any" and dtype not in _ALLOWED_CONCRETE:
                        problems.append(
                            Problem(
                                "dtype",
                                keyword.value.lineno,
                                symbol,
                                f"dtype={dtype} is outside the canonical set "
                                f"{{float64, int64, bool}} — numpy promotion "
                                f"will silently spread it",
                            )
                        )
            name = _dotted(node.func)
            if name is not None and name.rsplit(".", 1)[-1] == "astype" and node.args:
                dtype = _dtype_of_node(node.args[0])
                if dtype != "any" and dtype not in _ALLOWED_CONCRETE:
                    problems.append(
                        Problem(
                            "dtype",
                            node.lineno,
                            symbol,
                            f"astype({dtype}) leaves the canonical dtype set "
                            f"{{float64, int64, bool}}",
                        )
                    )
        for child in ast.iter_child_nodes(node):
            visit(child, symbol)

    for top in tree.body:
        visit(top, "")
    return problems
