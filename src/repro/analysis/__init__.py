"""Concurrency & invariant analysis for the repro codebase.

Two layers, one discipline (DESIGN.md "Static analysis & concurrency
invariants"):

- **static** (:mod:`.linter`, :mod:`.checks`) — an AST lint pass that
  enforces the repo's hand-maintained concurrency conventions
  mechanically: guarded-by annotations, inference-lock discipline,
  no-blocking-under-mutex, no-tape-in-serving, atomic writes, thread
  daemonization, no silent excepts, monotonic latency clocks.  Run it
  with ``python -m repro.analysis`` (CI runs ``--fail-on-findings``).
- **runtime** (:mod:`.runtime`) — traced lock wrappers that record the
  global lock acquisition-order graph and fail on inversion cycles or
  over-threshold holds/waits; activated inside the serve/federation
  stress suites.
"""

from .findings import Finding
from .linter import Baseline, Linter, SourceModule
from .runtime import (
    LockMonitor,
    LockOrderError,
    TracedLock,
    instrument_collector,
    instrument_model,
    instrument_service,
)

__all__ = [
    "Finding",
    "Baseline",
    "Linter",
    "SourceModule",
    "LockMonitor",
    "LockOrderError",
    "TracedLock",
    "instrument_collector",
    "instrument_model",
    "instrument_service",
]
