"""The fleet coordinator: asynchronous FedAvg over live tenants.

The paper's Section 7 deployment is a cloud provider whose customers
each serve queries locally while contributing only model updates to a
shared (S)/(T) model.  :class:`FleetCoordinator` runs that loop against
live :class:`~repro.federation.node.TenantNode` instances:

1. **broadcast** — the current global (S)/(T) state is handed to every
   registered tenant;
2. **local phase** — tenants with enough fresh execution-labeled
   experience fine-tune a private copy (on parallel harvest threads —
   grad mode is thread-local, each tenant's model, featurizer clone and
   RNGs are private, so the result is deterministic regardless of
   scheduling) and return shared-(S)/(T)-only states; tenants without
   fresh traffic skip, which is what makes rounds *asynchronous* — the
   fleet never blocks on an idle tenant;
3. **merge** — the returned states are example-weighted FedAvg-merged
   (:func:`repro.core.federated.aggregate_shared_states`: shared keys
   selected by name, loud errors on missing/mismatched parameters);
4. **checkpoint** — every global round is persisted via
   :func:`repro.core.checkpoint.save_checkpoint` (``round-NNNN.npz``),
   so any round can be replayed, shipped, or rolled back to;
5. **push** — every tenant (participant or not) evaluates the merged
   model through its own regret gate and hot-swaps only on acceptance.
   If every gated tenant rejects, the coordinator reverts the global
   state to the pre-round weights (``revert_on_unanimous_rejection``),
   so a poisoned round cannot linger in the lineage.

:meth:`onboard` implements the paper's new-customer path: train only a
database-specific featurizer (F) and deploy the current global (S)/(T)
zero-shot — no local (S)/(T) training, no data leaving the tenant.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field

from ..core.checkpoint import save_checkpoint
from ..core.config import ModelConfig
from ..core.encoders import DatabaseFeaturizer
from ..core.federated import aggregate_shared_states
from ..core.model import MTMLFQO
from ..obs.trace import maybe_span
from .config import FleetConfig
from .node import TenantNode
from .report import FleetReport

__all__ = ["FleetCoordinator", "FleetRound"]


@dataclass
class FleetRound:
    """Outcome of one global federated round."""

    index: int
    # (tenant name, training examples contributed) for the local phase.
    participants: list[tuple[str, int]] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    # Push-phase gate outcomes, by tenant name.
    accepted: list[str] = field(default_factory=list)
    rejected: list[str] = field(default_factory=list)
    unvalidated: list[str] = field(default_factory=list)
    # Tenants whose local update or gate *raised* this round — kept
    # apart from `skipped` ("no fresh experience") so a repeatedly
    # crashing tenant is visible, not silent.
    failed: list[str] = field(default_factory=list)
    checkpoint_path: str | None = None
    reverted: bool = False
    # Tenants whose SLO error budget was burning faster than allowed at
    # the end of this round (empty without a telemetry bundle): the
    # round-level signal the ROADMAP's fleet item asks for — a merge
    # that helps the median tenant but breaches one tenant's SLO is
    # flagged on the round itself.
    slo_breached: "tuple[str, ...]" = ()

    @property
    def merged(self) -> bool:
        """Whether the round produced (and pushed) a merged model."""
        return bool(self.participants)


class FleetCoordinator:
    """Drives federated rounds over registered tenants.

    Use :meth:`run_round` for explicit, synchronous rounds (tests,
    benchmarks) or :meth:`start`/:meth:`stop` for the background loop
    that fires a round whenever ``min_participants`` tenants have fresh
    experience.  Use as a context manager to clean up a private
    checkpoint directory on exit::

        with FleetCoordinator(model_config, config) as fleet:
            fleet.register(tenant)
            fleet.run_round()
    """

    def __init__(
        self,
        model_config: ModelConfig | None = None,
        config: FleetConfig | None = None,
        global_model: MTMLFQO | None = None,
        telemetry=None,
    ):
        self.config = config or FleetConfig()
        self.global_model = global_model or MTMLFQO(model_config)
        # Optional shared repro.obs.Telemetry: round spans and counters
        # land in it, onboarded tenants inherit it (tenant-keyed SLO
        # recording), and report() folds its per-tenant SLO state in.
        self.telemetry = telemetry
        self.tenants: dict[str, TenantNode] = {}  # guarded-by: _tenants_lock
        self.rounds: list[FleetRound] = []  # guarded-by: _stats_lock
        self.reverted_rounds = 0  # guarded-by: _stats_lock
        self.round_failures = 0  # guarded-by: _stats_lock
        self.tenant_failures = 0  # guarded-by: _stats_lock
        # Serializes rounds; held across an entire broadcast → push
        # cycle (including per-tenant harvest threads) by design.
        self._round_lock = threading.Lock()  # analysis: coarse-lock
        # Leaf lock for the round/failure counters above: they are
        # written from the loop thread mid-round and read by report()
        # from any thread, and must not require the (long-held) round
        # lock to observe.
        self._stats_lock = threading.Lock()
        # Guards the tenant registry: register()/onboard() may run on
        # the caller's thread while the background loop iterates the
        # fleet — unguarded, that iteration would die mid-round with
        # "dictionary changed size during iteration".
        self._tenants_lock = threading.Lock()
        # Guards reads/writes of the global model's parameters:
        # load_state_dict assigns parameter-by-parameter, so an
        # unguarded onboard()/global_state() racing a round's publish
        # could copy a torn mix of old and new weights.
        self._global_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._own_checkpoint_dir: str | None = None

    # -- fleet membership ----------------------------------------------
    def register(self, tenant: TenantNode) -> TenantNode:
        with self._tenants_lock:
            if tenant.name in self.tenants:
                raise ValueError(f"tenant {tenant.name!r} is already registered")
            self.tenants[tenant.name] = tenant
        return tenant

    def _tenant_snapshot(self) -> list[tuple[str, TenantNode]]:
        """A stable view of the fleet for one iteration pass."""
        with self._tenants_lock:
            return list(self.tenants.items())

    def onboard(
        self,
        db,
        name: str | None = None,
        serve_config=None,
        feedback_config=None,
        featurizer: DatabaseFeaturizer | None = None,
    ) -> TenantNode:
        """Bring a new tenant online: train (F) only, deploy (S)/(T) zero-shot.

        The new tenant's model is the current global (S)/(T) — no local
        (S)/(T) training, no tenant data used beyond the featurizer's
        own single-table encoder fitting — composed with a freshly
        trained database-specific featurizer.  The tenant is registered
        (it will receive future rounds through its gate, and contribute
        once it accumulates experience) and returned un-started; call
        ``start()`` (or use it as a context manager) to begin serving.
        """
        with self._tenants_lock:
            # Fail fast before the expensive featurizer training; the
            # name is re-checked under the lock at register() time.
            if (name or db.name) in self.tenants:
                raise ValueError(f"tenant {(name or db.name)!r} is already registered")
        model_config = self.global_model.config
        if featurizer is None:
            featurizer = DatabaseFeaturizer(db, model_config)
            featurizer.train_encoders(
                queries_per_table=self.config.encoder_queries_per_table,
                epochs=self.config.encoder_epochs,
                seed=self.config.seed,
            )
        model = MTMLFQO(model_config)
        model.load_state_dict(self.global_state())
        model.attach_featurizer(db.name, featurizer)
        model.eval()
        tenant = TenantNode(
            db,
            model,
            config=self.config,
            serve_config=serve_config,
            feedback_config=feedback_config,
            name=name,
            telemetry=self.telemetry,
        )
        return self.register(tenant)

    # -- global state ---------------------------------------------------
    def global_state(self) -> dict:
        """A copy of the global (S)/(T) named-parameter state."""
        with self._global_lock:
            return self.global_model.state_dict()

    def _checkpoint_dir(self) -> str:
        if self.config.checkpoint_dir is not None:
            os.makedirs(self.config.checkpoint_dir, exist_ok=True)
            return self.config.checkpoint_dir
        if self._own_checkpoint_dir is None:
            self._own_checkpoint_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        return self._own_checkpoint_dir

    # -- rounds ----------------------------------------------------------
    def run_round(self) -> FleetRound:
        """One synchronous broadcast → local → merge → checkpoint → push
        round; safe to call while the background loop runs."""
        with self._round_lock:
            return self._run_round_locked()

    def _run_round_locked(self) -> FleetRound:
        with self._stats_lock:
            round_ = FleetRound(index=len(self.rounds))
        telemetry = self.telemetry
        tracer = telemetry.tracer if telemetry is not None else None
        round_trace = tracer.new_trace() if tracer is not None else 0
        round_started = time.perf_counter()
        broadcast = self.global_state()
        tenants = self._tenant_snapshot()

        # Local phase: harvest every tenant concurrently.  Each update
        # trains a private model on private data with per-instance RNGs
        # and thread-local grad mode, so the outcome is independent of
        # thread scheduling; parallelism only shortens the round.  A
        # crashing tenant is recorded (never silently folded into
        # "skipped") and the rest of the round proceeds without it.
        results: dict[str, "tuple[dict, int] | None | BaseException"] = {}

        def harvest(tenant_name: str, tenant: TenantNode) -> None:
            try:
                results[tenant_name] = tenant.local_update(broadcast)
            except BaseException as error:
                results[tenant_name] = error

        with maybe_span(telemetry, round_trace, "fleet.harvest") as span:
            span.set("round", round_.index).set("tenants", len(tenants))
            self._run_per_tenant(tenants, harvest, stage="harvest")

        states: list[dict] = []
        weights: list[float] = []
        for tenant_name, _ in tenants:
            update = results.get(tenant_name)
            if isinstance(update, BaseException):
                round_.failed.append(tenant_name)
                with self._stats_lock:
                    self.tenant_failures += 1
                continue
            if update is None:
                round_.skipped.append(tenant_name)
                continue
            state, num_examples = update
            round_.participants.append((tenant_name, num_examples))
            states.append(state)
            weights.append(float(max(num_examples, 1)))

        if states:
            try:
                self._merge_and_push(round_, tenants, states, weights, round_trace)
            except BaseException:
                # The merge never landed (e.g. save_checkpoint on a full
                # disk): the global model was not yet touched — it is
                # only published after the push — but the participants'
                # experience was consumed by a round that produced
                # nothing, so their harvest credit is returned before
                # the error propagates.
                self._abandon_round(round_, tenants)
                raise

        self._note_round(round_, round_trace, round_started)
        with self._stats_lock:
            self.rounds.append(round_)
        return round_

    def _note_round(self, round_: FleetRound, round_trace: int, round_started: float) -> None:
        """Round-end telemetry (outside every coordinator lock): capture
        the fleet's SLO state on the round and count/trace the round."""
        telemetry = self.telemetry
        if telemetry is None:
            return
        round_.slo_breached = telemetry.slo.breached()
        registry = telemetry.registry
        registry.counter("fleet.rounds").inc()
        if round_.reverted:
            registry.counter("fleet.reverted_rounds").inc()
        if round_.slo_breached:
            registry.counter("fleet.slo_breached_rounds").inc()
        registry.histogram("fleet.round_s").observe(time.perf_counter() - round_started)
        telemetry.tracer.event(
            round_trace,
            "round.done",
            {
                "participants": len(round_.participants),
                "accepted": len(round_.accepted),
                "rejected": len(round_.rejected),
                "reverted": round_.reverted,
                "slo_breached": list(round_.slo_breached),
            },
        )

    def _merge_and_push(self, round_: FleetRound, tenants, states, weights, round_trace: int = 0) -> None:
        """Merge → checkpoint → gated push → publish (or revert).

        The merged weights live in a *staging* model until the push
        phase decides their fate: ``self.global_model`` is only
        rewritten (under the global-state lock) once the round stands,
        so a concurrent ``onboard()``/``global_state()`` can never
        observe a torn write or a merged state that every gate is about
        to reject.
        """
        with maybe_span(self.telemetry, round_trace, "fleet.merge") as span:
            span.set("participants", len(states))
            merged = aggregate_shared_states(
                states, weights, reference=self.global_state()
            )
            staging = MTMLFQO(self.global_model.config)
            staging.load_state_dict(merged)
            round_.checkpoint_path = save_checkpoint(
                staging,
                os.path.join(self._checkpoint_dir(), f"round-{round_.index:04d}"),
            )

        # Push phase: every tenant gates the merged model, whether or
        # not it trained this round — receiving is how an idle or
        # freshly onboarded tenant benefits from the fleet.  Gates
        # decode and *execute* validation orders, so like the local
        # phase they run one thread per tenant (independent models,
        # services and engines) instead of serializing the round on the
        # slowest gate.
        push_state = staging.state_dict()
        outcomes: dict[str, "bool | None | BaseException"] = {}

        def push(tenant_name: str, tenant: TenantNode) -> None:
            try:
                outcomes[tenant_name] = tenant.consider_global(push_state)
            except BaseException as error:
                outcomes[tenant_name] = error

        # Tenants that already crashed in the harvest sit the push out:
        # re-driving a broken tenant would only double-count it (or
        # list it as failed *and* accepted in the same round).
        push_tenants = [entry for entry in tenants if entry[0] not in round_.failed]
        with maybe_span(self.telemetry, round_trace, "fleet.push") as span:
            span.set("tenants", len(push_tenants))
            self._run_per_tenant(push_tenants, push, stage="push")
        for tenant_name, _ in push_tenants:
            outcome = outcomes.get(tenant_name)
            if isinstance(outcome, BaseException):
                round_.failed.append(tenant_name)
                with self._stats_lock:
                    self.tenant_failures += 1
            elif outcome is True:
                round_.accepted.append(tenant_name)
            elif outcome is False:
                round_.rejected.append(tenant_name)
            else:
                round_.unvalidated.append(tenant_name)

        gated = len(round_.accepted) + len(round_.rejected)
        if gated == 0 or (
            self.config.revert_on_unanimous_rejection and not round_.accepted
        ):
            # The staged state is discarded — never published, its
            # checkpoint withdrawn — and the participants' harvest
            # credit returned (their experience was consumed by a round
            # that never landed, and the signature-deduped buffers
            # cannot re-admit it).  Two ways here: every tenant that
            # could measure the merge rejected it (the unanimous-
            # rejection rule), or *no* gate produced a verdict at all
            # (every push raised or was unvalidatable) — publishing a
            # merge nobody measured would silently bypass the gate
            # safeguard, so a zero-verdict round never lands regardless
            # of the revert setting.
            self._abandon_round(round_, tenants)
            round_.reverted = True
            with self._stats_lock:
                self.reverted_rounds += 1
            return
        with self._global_lock:
            self.global_model.load_state_dict(merged)
            self.global_model.mark_updated()

    def _abandon_round(self, round_: FleetRound, tenants) -> None:
        """Discard a round that will not land: return the participants'
        harvest credit and withdraw the round's checkpoint."""
        by_name = dict(tenants)
        for tenant_name, _ in round_.participants:
            by_name[tenant_name].rollback_harvest()
        if round_.checkpoint_path is not None:
            try:
                os.remove(round_.checkpoint_path)
            except OSError:
                pass
            round_.checkpoint_path = None

    @staticmethod
    def _run_per_tenant(tenants, target, stage: str) -> None:
        """Run ``target(name, tenant)`` on one thread per tenant, join all."""
        threads = [
            threading.Thread(
                target=target, args=entry, name=f"fleet-{stage}-{entry[0]}", daemon=True
            )
            for entry in tenants
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    # -- background loop -------------------------------------------------
    def ready_tenants(self) -> list[str]:
        """Tenants currently holding enough fresh experience to train."""
        return [
            name
            for name, tenant in self._tenant_snapshot()
            if tenant.pending_experience() >= self.config.min_new_experience
        ]

    def start(self) -> "FleetCoordinator":
        if self._thread is not None:
            raise RuntimeError("fleet coordinator already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="fleet-coordinator", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        backoff_s = max(1.0, 20 * self.config.poll_interval_s)
        while not self._stop.is_set():
            if len(self.ready_tenants()) >= self.config.min_participants:
                try:
                    round_ = self.run_round()
                except BaseException:
                    # The loop must survive anything; back off so a
                    # persistent failure (unwritable checkpoint dir)
                    # cannot hot-spin training rounds.
                    with self._stats_lock:
                        self.round_failures += 1
                    self._stop.wait(backoff_s)
                else:
                    # A reverted round returned its participants'
                    # harvest credit, and a crashed tenant's cursor
                    # never advanced — either way the same tenants are
                    # immediately "ready" again, so a real pause is the
                    # only thing between this loop and continuously
                    # re-running a doomed round at full CPU.
                    if round_.reverted or round_.failed:
                        self._stop.wait(backoff_s)
                    else:
                        self._stop.wait(self.config.poll_interval_s)
            else:
                self._stop.wait(self.config.poll_interval_s)

    def stop(self) -> None:
        """Stop the background loop (a round in flight completes first)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def shutdown(self) -> None:
        """Stop the loop and remove a private checkpoint directory."""
        self.stop()
        if self._own_checkpoint_dir is not None:
            shutil.rmtree(self._own_checkpoint_dir, ignore_errors=True)
            self._own_checkpoint_dir = None

    def __enter__(self) -> "FleetCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- reporting --------------------------------------------------------
    def report(self) -> FleetReport:
        """Merge every tenant's ServingReport into one fleet view."""
        tenants = self._tenant_snapshot()
        # Tenant reports take the tenants' own locks — gather them
        # before entering the stats lock so it stays a leaf.
        tenant_reports = {name: tenant.report() for name, tenant in tenants}
        tenant_counters = {name: tenant.counters() for name, tenant in tenants}
        slo = self.telemetry.slo.statuses() if self.telemetry is not None else {}
        with self._stats_lock:
            return FleetReport(
                tenants=tenant_reports,
                tenant_counters=tenant_counters,
                rounds=len(self.rounds),
                reverted_rounds=self.reverted_rounds,
                round_failures=self.round_failures,
                tenant_failures=self.tenant_failures,
                last_round=self.rounds[-1] if self.rounds else None,
                slo=slo,
            )
