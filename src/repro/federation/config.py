"""Configuration of the federated serving fleet."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FleetConfig"]


@dataclass
class FleetConfig:
    """Knobs shared by :class:`TenantNode` and :class:`FleetCoordinator`.

    Attributes
    ----------
    fine_tune_epochs / batch_size / learning_rate / seed:
        Passed to each tenant's private :class:`JointTrainer` during the
        local phase of a round (``None`` learning rate keeps the model
        config's).
    num_replicas:
        Serving replica-pool size for every tenant onboarded without an
        explicit ``serve_config`` (see :attr:`ServeConfig.num_replicas`):
        each tenant's :class:`OptimizerService` holds this many read-only
        model replicas and drain workers, so tenant serving scales past
        the single inference lock.
    min_new_experience:
        Fresh-experience bar a tenant must clear to *train* in a round.
        Tenants below it skip the local phase (they still receive the
        merged model through their gate) — the asynchronous-FedAvg rule
        that lets rounds proceed with whichever tenants have traffic.
    min_participants:
        How many tenants must clear the bar before the coordinator's
        background loop fires a round.
    validation_fraction:
        Share of each tenant's experience snapshot held out from
        fine-tuning and used by its regression gate.
    regret_tolerance_ms:
        Slack a tenant's gate allows the merged model over its live one.
        0 is the strict "must not worsen" rule.
    max_intermediate_rows:
        Execution bound when gates replay validation orders.
    checkpoint_dir:
        Where the coordinator persists each global round's checkpoint; a
        private temp dir (removed on ``shutdown``) when None.
    poll_interval_s:
        How often the coordinator's background loop rechecks readiness.
    encoder_queries_per_table / encoder_epochs:
        Featurizer (F) training budget for :meth:`FleetCoordinator.onboard`.
    revert_on_unanimous_rejection:
        When every gated tenant rejects a round's merged model, restore
        the previous global state so a poisoned round cannot linger as
        the next round's starting point (or be handed to onboarding
        tenants).
    """

    num_replicas: int = 1
    fine_tune_epochs: int = 4
    batch_size: int = 8
    learning_rate: float | None = None
    seed: int = 0
    min_new_experience: int = 8
    min_participants: int = 1
    validation_fraction: float = 0.25
    regret_tolerance_ms: float = 0.0
    max_intermediate_rows: int = 2_000_000
    checkpoint_dir: str | None = None
    poll_interval_s: float = 0.25
    encoder_queries_per_table: int = 15
    encoder_epochs: int = 6
    revert_on_unanimous_rejection: bool = True

    def __post_init__(self):
        if self.num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {self.num_replicas}")
        if self.fine_tune_epochs < 1:
            raise ValueError(f"fine_tune_epochs must be >= 1, got {self.fine_tune_epochs}")
        if self.min_new_experience < 1:
            raise ValueError(f"min_new_experience must be >= 1, got {self.min_new_experience}")
        if self.min_participants < 1:
            raise ValueError(f"min_participants must be >= 1, got {self.min_participants}")
        if not 0.0 < self.validation_fraction < 1.0:
            raise ValueError(
                f"validation_fraction must be in (0, 1), got {self.validation_fraction}"
            )
        if self.regret_tolerance_ms < 0:
            raise ValueError(f"regret_tolerance_ms must be >= 0, got {self.regret_tolerance_ms}")
