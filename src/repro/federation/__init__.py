"""``repro.federation`` — the live federated multi-tenant serving fleet.

The paper's Section 7 cloud deployment as a running system: each
:class:`TenantNode` serves one customer database through the
micro-batching :class:`~repro.serve.OptimizerService` while a
:class:`~repro.serve.feedback.FeedbackCollector` accumulates private
execution-labeled experience; a :class:`FleetCoordinator` runs
asynchronous FedAvg rounds that harvest shared-(S)/(T)-only updates
from tenants with fresh traffic, merge them example-weighted,
checkpoint every global round, and push the merged model back through
each tenant's regression gate + hot-swap — featurizers (F) and raw
tuples never leave a tenant, and a bad round can never degrade a
healthy one.  New tenants onboard by training only a featurizer and
deploying the global (S)/(T) zero-shot.  See DESIGN.md
"Federation fleet".
"""

from .config import FleetConfig
from .coordinator import FleetCoordinator, FleetRound
from .node import TenantNode
from .report import FleetReport

__all__ = [
    "FleetConfig",
    "FleetCoordinator",
    "FleetReport",
    "FleetRound",
    "TenantNode",
]
