"""One tenant of the federated serving fleet.

A :class:`TenantNode` is the unit of deployment in the paper's cloud
story: one customer database served locally by its own
:class:`~repro.serve.OptimizerService`, with a
:class:`~repro.serve.feedback.FeedbackCollector` turning served orders
into private execution-labeled experience.  The node participates in
federation through exactly two narrow interfaces:

- :meth:`local_update` — fine-tune a *private* model copy (starting
  from the broadcast global weights, on this tenant's experience only)
  and return the shared (S)/(T) parameters plus an example count.
  Featurizer (F) weights and raw experience never cross this boundary:
  the return value is filtered through
  :func:`repro.core.federated.shared_state_dict`.
- :meth:`consider_global` — evaluate a merged global model against the
  live one on a held-out slice of the tenant's own experience
  (:func:`repro.serve.adaptation.evaluate_regret_gate`) and hot-swap it
  in only if the tenant's simulated latency does not worsen.  A bad
  federated round can therefore never degrade a healthy tenant; a
  tenant with *no* experience to validate against keeps its live model
  (counted as ``gate_unvalidated``) rather than accepting blind.
"""

from __future__ import annotations

import threading

from ..core.encoders import DatabaseFeaturizer
from ..core.federated import shared_state_dict
from ..core.model import MTMLFQO
from ..core.serializer import query_signature
from ..core.trainer import JointTrainer
from ..optimizer.selectivity import HistogramEstimator
from ..serve.adaptation import GateResult, evaluate_regret_gate, split_experience
from ..serve.config import ServeConfig
from ..serve.feedback import FeedbackCollector, FeedbackConfig
from ..serve.service import OptimizerService
from ..serve.stats import ServingReport
from ..workload.labeler import LabeledQuery
from .config import FleetConfig

__all__ = ["TenantNode"]


class TenantNode:
    """One tenant: database + serving service + private experience.

    ``model`` must hold a featurizer for ``db.name`` (typically the
    current global (S)/(T) plus this tenant's own (F) —
    :meth:`FleetCoordinator.onboard` builds exactly that).  Use as a
    context manager (or :meth:`start` / :meth:`stop`)::

        with TenantNode(db, model) as tenant:
            order = tenant.optimize(labeled_query)
    """

    def __init__(
        self,
        db,
        model: MTMLFQO,
        config: FleetConfig | None = None,
        serve_config=None,
        feedback_config: FeedbackConfig | None = None,
        name: str | None = None,
        telemetry=None,
    ):
        self.db = db
        self.config = config or FleetConfig()
        self.name = name or db.name
        self.telemetry = telemetry
        model.featurizer_for(db.name)  # fail fast on a missing (F) module
        if serve_config is None:
            # Tenants serve through a replica pool sized by the fleet
            # config; an explicit serve_config overrides it wholesale.
            serve_config = ServeConfig(num_replicas=self.config.num_replicas)
        self.service = OptimizerService(model, db.name, serve_config, telemetry=telemetry)
        # SLO outcomes are tracked per *tenant*, not per database: two
        # tenants serving the same database name must burn their error
        # budgets separately.
        self.service.slo_name = self.name
        self.collector = FeedbackCollector(db, feedback_config, telemetry=telemetry)
        self.service.attach_feedback(self.collector)
        self.buffer = self.collector.buffer
        self._estimator = HistogramEstimator(db)
        self._lock = threading.Lock()
        # buffer.added observed at the last harvest: experience counts
        # as "fresh" until it has been contributed to a round.
        self._harvested = 0  # guarded-by: _lock
        # Pre-harvest cursor of the latest local_update, for
        # rollback_harvest() when the round is reverted.
        self._harvest_rollback: int | None = None  # guarded-by: _lock
        # Name-keyed Adam moments carried across rounds (PR-3 state-dict
        # machinery): each round's private trainer resumes this tenant's
        # optimizer trajectory instead of re-warming from zero.
        self._optimizer_state: dict | None = None  # guarded-by: _lock
        self._local_rounds = 0  # guarded-by: _lock
        # Validation slice held out by the most recent local_update; the
        # push phase of the same round gates on it so train/validation
        # isolation holds within a round.
        self._pending_validation: list[LabeledQuery] = []  # guarded-by: _lock
        self.last_gate: GateResult | None = None  # guarded-by: _lock
        self.rounds_participated = 0  # guarded-by: _lock
        self.rounds_skipped = 0  # guarded-by: _lock
        self.global_accepted = 0  # guarded-by: _lock
        self.global_rejected = 0  # guarded-by: _lock
        self.gate_unvalidated = 0  # guarded-by: _lock

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "TenantNode":
        self.collector.start()
        self.service.start()
        return self

    def stop(self) -> None:
        """Stop serving, then let the collector drain its queue."""
        self.service.stop()
        self.collector.stop()

    def __enter__(self) -> "TenantNode":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- serving -------------------------------------------------------
    def optimize(self, labeled: LabeledQuery, **kwargs) -> list[str]:
        """Serve one query through this tenant's optimizer service."""
        return self.service.optimize(labeled, **kwargs)

    @property
    def live_model(self) -> MTMLFQO:
        """The model currently serving this tenant's traffic."""
        return self.service._serving_state()[0].model

    def report(self) -> ServingReport:
        return self.service.report()

    # -- experience ----------------------------------------------------
    def pending_experience(self) -> int:
        """Unique experiences accumulated since the last harvest."""
        with self._lock:
            harvested = self._harvested
        return self.buffer.added - harvested

    def inject_experience(self, items: list[LabeledQuery]) -> int:
        """Add pre-labeled experience directly (benchmarks, tests, bulk
        imports); returns how many were accepted (signature-deduped)."""
        accepted = 0
        for item in items:
            if self.buffer.add(query_signature(item.query), item):
                accepted += 1
        return accepted

    # -- federation: local phase ---------------------------------------
    def local_update(self, global_state: dict) -> tuple[dict, int] | None:
        """One round's client-side pass; returns ``(shared_state, n)``.

        Skips (returns None) when fewer than ``min_new_experience``
        fresh experiences accumulated since the last harvest — the
        asynchronous-participation rule.  Otherwise fine-tunes a private
        model (broadcast (S)/(T) + a *clone* of the live featurizer, so
        training-mode flips can never touch the serving path) on the
        training slice of the experience snapshot and returns only the
        shared (S)/(T) parameters with the example count FedAvg weights
        them by.
        """
        experience, added = self.buffer.snapshot_with_added()
        with self._lock:
            harvested = self._harvested
        if added - harvested < self.config.min_new_experience or not experience:
            with self._lock:
                self.rounds_skipped += 1
            return None
        train_slice, val_slice = split_experience(
            experience, self.config.validation_fraction
        )
        model = self._private_model(global_state)
        trainer = JointTrainer(model, learning_rate=self.config.learning_rate)
        with self._lock:
            optimizer_state = self._optimizer_state
            self._local_rounds += 1
            seed = self.config.seed + self._local_rounds - 1
        if optimizer_state is not None:
            trainer.optimizer.load_state_dict(optimizer_state)
        trainer.train(
            [(self.db.name, item) for item in train_slice],
            epochs=self.config.fine_tune_epochs,
            batch_size=self.config.batch_size,
            seed=seed,
        )
        optimizer_state = trainer.optimizer.state_dict()
        with self._lock:
            self._optimizer_state = optimizer_state
            # Remember the pre-harvest cursor: if the coordinator
            # reverts this round, rollback_harvest() returns the
            # experience credit (the deduped buffer cannot re-admit the
            # same signatures, so consumption must be undoable).
            self._harvest_rollback = self._harvested
            self._harvested = max(self._harvested, added)
            self._pending_validation = val_slice
            self.rounds_participated += 1
        return shared_state_dict(model), len(train_slice)

    def rollback_harvest(self) -> None:
        """Undo the most recent harvest's experience consumption.

        Called by the coordinator when a round this tenant trained in is
        reverted (every gate rejected the merge): the tenant's buffered
        experience was consumed by a round that never landed, so the
        fresh-experience cursor is restored and the same experience can
        trigger — and train — a future round.  Idempotent per harvest.
        """
        with self._lock:
            if self._harvest_rollback is not None:
                self._harvested = self._harvest_rollback
                self._harvest_rollback = None

    # -- federation: push phase ----------------------------------------
    def consider_global(self, global_state: dict) -> bool | None:
        """Gate the merged global model; swap it in only if safe.

        Returns True (accepted + swapped), False (gate-rejected), or
        None when the tenant has no experience to validate against — in
        which case the live model keeps serving: a tenant that cannot
        measure the merged model must not accept it blind.
        """
        with self._lock:
            # Taken (not just read): the slice belongs to exactly one
            # round's push.  If the gate below raises, a later round
            # must fall back to the full buffer rather than re-gate on
            # this round's stale snapshot.
            val_slice = self._pending_validation
            self._pending_validation = []
        if not val_slice:
            # Didn't train this round: the merged model never trained on
            # any of this tenant's data *this round*, so the entire
            # buffer is used as the held-out set (sorted for
            # determinism) — the wider coverage makes accept/reject a
            # far better predictor of live-traffic behavior than the
            # thin held-out slice a participant is restricted to.  The
            # caveat: across rounds the global lineage may include
            # earlier rounds this tenant trained in, so items it once
            # trained on can leak a mild optimistic bias — the price of
            # coverage; the bias is bounded by how much one tenant's
            # slice moves the example-weighted merge.
            val_slice = sorted(
                self.buffer.snapshot(), key=lambda item: item.query.to_sql()
            )
        if not val_slice:
            with self._lock:
                self.gate_unvalidated += 1
            return None
        live = self.live_model
        candidate = self._private_model(global_state)
        gate = evaluate_regret_gate(
            self.db,
            live,
            candidate,
            val_slice,
            decode=self.service.config.decode_kwargs(),
            estimator=self._estimator,
            tolerance_ms=self.config.regret_tolerance_ms,
            max_intermediate_rows=self.config.max_intermediate_rows,
        )
        with self._lock:
            self.last_gate = gate
        if not gate.accepted:
            with self._lock:
                self.global_rejected += 1
            return False
        self.service.swap_model(candidate)
        with self._lock:
            self.global_accepted += 1
        return True

    # -- internals -----------------------------------------------------
    def _private_model(self, global_state: dict) -> MTMLFQO:
        """A disjoint model: broadcast (S)/(T) + cloned featurizer.

        Both the training model of :meth:`local_update` and the swap
        candidate of :meth:`consider_global` are built here.  The
        featurizer is cloned by state dict so no model instance ever
        shares an (F) module with the live serving model — a trainer's
        train-mode flip (dropout on) on a shared featurizer would leak
        nondeterminism into concurrently served traffic.
        """
        live = self.live_model
        model = MTMLFQO(live.config)
        model.load_state_dict(global_state)
        featurizer = DatabaseFeaturizer(self.db, live.config)
        featurizer.load_state_dict(live.featurizer_for(self.db.name).state_dict())
        model.attach_featurizer(self.db.name, featurizer)
        model.eval()
        return model

    # -- reporting -----------------------------------------------------
    def counters(self) -> dict:
        """Fleet-level counters this tenant contributes to FleetReport."""
        with self._lock:
            return {
                "rounds_participated": self.rounds_participated,
                "rounds_skipped": self.rounds_skipped,
                "global_accepted": self.global_accepted,
                "global_rejected": self.global_rejected,
                "gate_unvalidated": self.gate_unvalidated,
            }
