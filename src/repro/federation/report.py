"""Fleet-level observability: merged per-tenant serving reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..obs.slo import SLOStatus
from ..serve.stats import ServingReport

if TYPE_CHECKING:  # circular at runtime: coordinator imports this module
    from .coordinator import FleetRound

__all__ = ["FleetReport"]


@dataclass
class FleetReport:
    """Frozen view of the whole fleet at one instant.

    Per-tenant :class:`~repro.serve.stats.ServingReport` snapshots plus
    the federation counters each :class:`TenantNode` keeps (rounds
    participated/skipped, gate outcomes), and the coordinator's round
    history.  Rendered by
    :func:`repro.eval.reporting.format_fleet_report`.
    """

    tenants: dict[str, ServingReport] = field(default_factory=dict)
    tenant_counters: dict[str, dict] = field(default_factory=dict)
    rounds: int = 0
    reverted_rounds: int = 0
    # Rounds that raised in the background loop / tenants that raised
    # during a round's harvest or push — federation-infrastructure
    # failures, kept apart from per-request serving failures.
    round_failures: int = 0
    tenant_failures: int = 0
    last_round: "FleetRound | None" = None
    # Per-tenant SLO state (empty unless the coordinator carries a
    # telemetry bundle): rolling error-budget burn rates, so a round
    # that helps the median tenant but breaches one tenant's SLO is
    # visible in the same report that shows the round's gate outcomes.
    slo: dict[str, SLOStatus] = field(default_factory=dict)

    # -- fleet-wide aggregates -----------------------------------------
    def _sum(self, attribute: str) -> int:
        return sum(getattr(report, attribute) for report in self.tenants.values())

    @property
    def num_tenants(self) -> int:
        return len(self.tenants)

    @property
    def completed(self) -> int:
        return self._sum("completed")

    @property
    def failed(self) -> int:
        return self._sum("failed")

    @property
    def rejected(self) -> int:
        return self._sum("rejected")

    @property
    def swaps(self) -> int:
        return self._sum("swaps")

    @property
    def throughput_qps(self) -> float:
        """Sum of per-tenant throughputs (tenants serve concurrently)."""
        return sum(report.throughput_qps for report in self.tenants.values())

    def _counter_sum(self, key: str) -> int:
        return sum(counters.get(key, 0) for counters in self.tenant_counters.values())

    @property
    def rounds_participated(self) -> int:
        """Tenant-round participations across the fleet (one round can
        count several tenants)."""
        return self._counter_sum("rounds_participated")

    @property
    def global_accepted(self) -> int:
        return self._counter_sum("global_accepted")

    @property
    def global_rejected(self) -> int:
        return self._counter_sum("global_rejected")

    @property
    def gate_unvalidated(self) -> int:
        return self._counter_sum("gate_unvalidated")

    @property
    def slo_breached(self) -> "tuple[str, ...]":
        """Tenants currently burning error budget faster than allowed."""
        return tuple(
            name for name, status in sorted(self.slo.items()) if status.breached
        )
