"""The micro-batching optimizer service.

:class:`OptimizerService` is the repo's first always-on layer: callers
submit *single* queries via :meth:`optimize`, and a pool of drain
workers coalesces concurrent requests into the batched
:meth:`MTMLFQO.predict_join_orders` path (one Trans_Share forward plus
lockstep beam decode per batch) that PR 1 built but nothing served.

Request lifecycle::

    optimize(q) ── cache hit ──────────────────────────► return order
        │ miss
        ▼
    bounded queue ── full ──► ServiceOverloadedError (backpressure)
        │
        ▼  (drain worker: wait up to max_wait_ms for max_batch_size)
    coalesce by structural key ► plan cache recheck ► one batched
    predict_join_orders on the worker's replica ► fill cache ► wake
    every waiter

Scaling out: every inference entry point of one model serializes on
that model's single ``_infer_lock``, so a single serving model is one
core doing batched forwards no matter how many threads submit.
``ServeConfig.num_replicas`` breaks that bottleneck with an in-process
**replica pool**: ``num_replicas`` read-only models (the given one plus
bit-identical :meth:`MTMLFQO.clone_for_inference` copies, each with a
private lock and private feature caches) and one drain worker per
replica, worker *i* always decoding on replica *i* — so up to
``num_replicas`` batches run concurrently with zero lock contention,
and ``swap_model`` flips the whole replica *set* in one atomic update.

Because the batched decode path is bit-identical to per-query calls
(DESIGN.md section 2), replicas are bit-identical clones, and the cache
key is the full structural query/plan signature, orders returned
through the service are identical to direct ``predict_join_orders``
calls at any pool size — the parity suite (``tests/test_serve.py``)
asserts this at every beam width 1-8.

Serving gets the no-tape fast path (DESIGN.md section 11) by
construction: every decode runs through a per-replica
:class:`repro.core.InferenceSession`, whose calls run under
``nn.no_grad()`` and thread the session's private ``ScratchArena``
into the kernels — and the fast path is bit-identical to the tape
path, so none of the parity guarantees above are weakened by it.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import threading
import time
from collections import OrderedDict, deque

from ..core.beam import require_connected
from ..core.serializer import plan_signature, query_signature
from ..workload.labeler import LabeledQuery
from .cache import PlanCache
from .config import ServeConfig
from .stats import ServiceStats, ServingReport

# Distinguishes the metrics of multiple service instances sharing one
# telemetry registry (e.g. sequential benchmark runs, fleet tenants on
# one database name): counters are monotone per instance, so reusing a
# label set across instances would resurrect a dead service's totals.
_INSTANCE_IDS = itertools.count()

__all__ = [
    "OptimizerService",
    "ServiceOverloadedError",
    "ServiceStoppedError",
    "ServiceTimeoutError",
]


class ServiceOverloadedError(RuntimeError):
    """The request queue is full; the caller should back off and retry."""


class ServiceStoppedError(RuntimeError):
    """The service is not running (not started, or already stopped)."""


class ServiceTimeoutError(RuntimeError):
    """The per-request wait bound elapsed before a response arrived."""


# optimize()'s "no timeout argument given" sentinel: None must remain a
# real value (wait forever), distinct from "use the config default".
_DEFAULT_TIMEOUT = object()


class _Request:
    """One in-flight optimize() call, fulfilled by the drain thread."""

    __slots__ = (
        "labeled", "key", "done", "result", "error", "abandoned",
        "trace_id", "enqueued_at",
    )

    def __init__(self, labeled: LabeledQuery, key: tuple, trace_id: int = 0, enqueued_at: float = 0.0):
        self.labeled = labeled
        self.key = key
        self.done = threading.Event()
        self.result: list[str] | None = None
        self.error: BaseException | None = None
        # Set when the waiter gave up (timeout): the drain loop skips
        # abandoned requests instead of decoding answers nobody reads —
        # under sustained overload that work would starve live requests.
        self.abandoned = False
        # Telemetry: the request's trace ID (0 = untraced) and its
        # enqueue timestamp, carried across the queue so the drain
        # worker can reconstruct the queue-wait span on the right trace.
        self.trace_id = trace_id
        self.enqueued_at = enqueued_at

    def fulfill(self, order: list[str]) -> None:
        self.result = list(order)
        self.done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.done.set()


class _Replica:
    """One pool slot: a read-only model plus its reusable session.

    Slot 0 wraps the model the service was built with — so
    ``service.session.model`` keeps its identity for callers that
    inspect, train, or adapt the live model — while slots 1..N-1 wrap
    :meth:`MTMLFQO.clone_for_inference` copies.  Every slot's model has
    a private inference lock and private feature caches, so the drain
    workers never contend on a lock while decoding.
    """

    __slots__ = ("index", "model", "session")

    def __init__(self, index: int, model, session):
        self.index = index
        self.model = model
        self.session = session


class OptimizerService:
    """Micro-batching join-order service over one ``(model, database)``.

    Use as a context manager (or call :meth:`start` / :meth:`stop`)::

        with OptimizerService(model, db.name, ServeConfig()) as service:
            order = service.optimize(labeled_query)

    ``optimize`` is safe to call from many threads; all model work runs
    on the drain workers through reusable
    :class:`repro.core.InferenceSession`\\ s, one per pool replica
    (``config.num_replicas``; the default pool of one is the original
    single-drainer service).
    """

    def __init__(self, model, db_name: str, config: ServeConfig | None = None, telemetry=None):
        self.config = config or ServeConfig()
        self.db_name = db_name
        # Optional shared repro.obs.Telemetry bundle.  None means no
        # telemetry at all (the overhead-baseline configuration); a
        # disabled bundle keeps the handle but takes the one-int-check
        # fast path on every touchpoint.
        self.telemetry = telemetry
        # The name this service's request latencies are recorded under
        # in the SLO tracker; federation overrides it with the tenant
        # name (repro.federation.node.TenantNode).
        self.slo_name = db_name
        self.session = model.inference_session(db_name)  # guarded-by: _mutex
        self.cache = PlanCache(self.config.plan_cache_size)
        self.stats = ServiceStats(
            num_replicas=self.config.num_replicas,
            registry=telemetry.registry if telemetry is not None else None,
            labels={"service": f"{db_name}/{next(_INSTANCE_IDS)}"},
        )
        self._queue: "deque[_Request]" = deque()  # guarded-by: _mutex
        self._mutex = threading.Lock()
        self._nonempty = threading.Condition(self._mutex)
        self._running = False  # guarded-by: _mutex
        self._drainers: "list[threading.Thread]" = []  # guarded-by: _mutex
        # The replica set drain worker i pins its batches to (slot i).
        # Replaced wholesale — never mutated in place — by swap_model,
        # in the same critical section that updates `session`/`_epoch`.
        self._replicas = self._build_replicas(model, self.session)  # guarded-by: _mutex
        # Bumped by swap_model and embedded in every cache key: model
        # `version` counters are per-instance, so two independently built
        # models can share a version number — the epoch guarantees a
        # post-swap request can never be answered from the pre-swap
        # model's cache entries even then.
        self._epoch = 0  # guarded-by: _mutex
        # Optional online-adaptation hooks: a FeedbackCollector served
        # orders are forwarded to (attach_feedback) and an
        # AdaptationWorker (registers itself) whose counters report()
        # folds into the ServingReport.
        self.feedback = None
        self.adaptation = None

    def _build_replicas(self, model, primary_session) -> "list[_Replica]":
        """The pool for ``model``: slot 0 is the model itself (with
        ``primary_session``), slots 1..N-1 are independent clones."""
        replicas = [_Replica(0, model, primary_session)]
        for index in range(1, self.config.num_replicas):
            clone = model.clone_for_inference()
            replicas.append(_Replica(index, clone, clone.inference_session(self.db_name)))
        return replicas

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "OptimizerService":
        with self._mutex:
            if self._running:
                raise RuntimeError("service already running")
            self._running = True
            # Publish the (started) workers before releasing the lock so
            # a concurrent stop() always finds joinable threads.
            self._drainers = [
                threading.Thread(
                    target=self._drain_loop,
                    args=(index,),
                    name=f"optimizer-serve-{self.db_name}-{index}",
                    daemon=True,
                )
                for index in range(self.config.num_replicas)
            ]
            for drainer in self._drainers:
                drainer.start()
        return self

    def stop(self) -> None:
        """Stop accepting requests, drain what is queued, join all workers."""
        with self._nonempty:
            if not self._running:
                return
            self._running = False
            self._nonempty.notify_all()
            drainers = list(self._drainers)
        for drainer in drainers:
            drainer.join()
        with self._mutex:
            self._drainers = []

    def __enter__(self) -> "OptimizerService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def queue_depth(self) -> int:
        with self._mutex:
            return len(self._queue)

    def report(self) -> ServingReport:
        """Freeze the live counters into a :class:`ServingReport`.

        When a feedback collector / adaptation worker is attached, their
        counters are folded into the report's adaptation fields.
        """
        report = self.stats.snapshot(queue_depth=self.queue_depth, cache=self.cache)
        extra: dict = {}
        if self.feedback is not None:
            extra.update(self.feedback.counters())
        if self.adaptation is not None:
            extra.update(self.adaptation.counters())
        return dataclasses.replace(report, **extra) if extra else report

    # -- online adaptation ----------------------------------------------
    def attach_feedback(self, collector):
        """Enable the execution-feedback path.

        Every successfully served ``(query, order)`` pair — computed or
        answered from the plan cache — is submitted to ``collector``
        (a :class:`repro.serve.feedback.FeedbackCollector`), which
        executes the served order in the background and turns the result
        into training experience.  Submission is non-blocking: the
        collector dedups by query signature and sheds load when its own
        queue is full, so the request path never waits on an execution.

        The collector inherits this service's telemetry handle (unless
        it already has one), so feedback-labeling spans land on the
        originating request's trace.
        """
        if getattr(collector, "telemetry", None) is None:
            collector.telemetry = self.telemetry
        self.feedback = collector
        return collector

    def _offer_feedback(self, labeled: LabeledQuery, order: list[str], trace_id: int = 0) -> None:
        if self.feedback is not None:
            self.feedback.submit(labeled, order, trace_id=trace_id)

    def _note_served(self, trace_id: int, started_at: float, latency: float) -> None:
        """Telemetry for one served request (outside every service lock):
        the request-level span plus the tenant's SLO outcome."""
        tel = self.telemetry
        if tel is None or not tel.on:
            return
        tel.slo.record(self.slo_name, latency)
        tel.tracer.record(trace_id, "request", started_at, started_at + latency)

    # -- model lifecycle -----------------------------------------------
    def swap_model(self, model_or_path, databases=None):
        """Hot-swap the serving model without stopping the service.

        ``model_or_path`` is either a ready :class:`MTMLFQO` (with a
        featurizer attached for this service's database) or a checkpoint
        path, loaded via :func:`repro.core.checkpoint.load_checkpoint`
        (``databases`` defaults to every database the currently serving
        model holds a featurizer for — checkpoints of multi-database
        models hot-swap without re-supplying handles, as long as the
        current model already knows those databases).

        Protocol (DESIGN.md "Model lifecycle"): the replacement session
        *and its full replica set* are built and validated *before* the
        switch; the switch itself is one atomic update of
        ``(session, replicas, epoch)`` under the service mutex.  Batches
        already handed to a replica finish on it — drain workers pin
        their replica at batch formation — so no queued or in-flight
        request is lost or duplicated; batches formed after the switch
        decode on the new replica set.  The bumped epoch retires every
        cached plan: a post-swap request can never be answered from the
        pre-swap cache, even if both models share a ``version`` counter
        value.  Returns the new serving model.
        """
        if isinstance(model_or_path, (str, os.PathLike)):
            from ..core.checkpoint import load_checkpoint

            if databases is None:
                # Snapshot the serving session under the mutex, then take
                # the database map through MTMLFQO.databases() (atomic
                # under the model's inference lock): a concurrent swap or
                # attach_featurizer cannot race either read.
                serving_session, _ = self._serving_state()
                databases = serving_session.model.databases()
            new_model = load_checkpoint(model_or_path, databases=databases)
        else:
            new_model = model_or_path
        # Validates the featurizer and pins eval mode before the switch;
        # a bad replacement (or a failing clone) raises here and the old
        # replica set keeps serving.
        new_session = new_model.inference_session(self.db_name)
        new_replicas = self._build_replicas(new_model, new_session)
        with self._mutex:
            self.session = new_session
            self._replicas = new_replicas
            self._epoch += 1
        # Pre-swap entries are unreachable (their keys carry the old
        # epoch); dropping them returns the LRU's full capacity to the
        # new model while it is coldest, and resetting the hit/miss
        # counters starts a fresh accounting epoch (the retired epoch's
        # totals are preserved in the stats, not blended into the new
        # hit rate).  An in-flight pre-swap batch may re-insert a few
        # old-epoch entries after this — dead weight bounded by one
        # batch per worker, evicted by normal churn.
        retired = self.cache.clear(reset_stats=True)
        self.stats.note_swap(retired)
        return new_model

    # -- request path --------------------------------------------------
    def _serving_state(self) -> tuple:
        """Atomic read of the ``(session, epoch)`` pair swap_model writes."""
        with self._mutex:
            return self.session, self._epoch

    def request_key(self, labeled: LabeledQuery) -> tuple:
        """The structural identity of a request (the plan-cache key).

        Combines the query signature (tables, joins, filters) with the
        initial plan's signature — ``predict_join_orders`` encodes the
        initial plan, so two requests may only share a cached order when
        *both* halves match — plus the service's decode policy, the
        model's :attr:`version` (bumped by ``attach_featurizer`` and the
        trainers), and the service's swap epoch, so orders decoded with
        superseded weights can never be served after the model changes
        or is hot-swapped.
        """
        session, epoch = self._serving_state()
        return (
            epoch,
            session.model.version,
            self.db_name,
            query_signature(labeled.query),
            plan_signature(labeled.plan),
            self.config.beam_width,
            self.config.enforce_legality,
            self.config.rerank_with_cost,
        )

    def optimize(self, labeled: LabeledQuery, timeout=_DEFAULT_TIMEOUT) -> list[str]:
        """Join order for one query; blocks until served (or rejected).

        Raises :class:`ServiceOverloadedError` when the queue is full,
        :class:`ServiceTimeoutError` when ``timeout`` (defaults to
        ``config.request_timeout_s``; pass ``None`` explicitly to wait
        forever) elapses, and re-raises any model error for *this*
        request (e.g. ``ValueError`` for a disconnected join graph)
        without affecting the rest of its batch.
        """
        # Fast-fail before any accounting — but read the flag under the
        # mutex it is guarded by (an unsynchronized read here raced with
        # start/stop and violated the attribute's locking contract; the
        # authoritative recheck below still closes the window between
        # this check and the enqueue).
        with self._mutex:
            running = self._running
        if not running:
            raise ServiceStoppedError("optimizer service is not running")
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        trace_id = tracer.new_trace() if tracer is not None else 0
        started_at = self.stats.note_request()
        key = self.request_key(labeled)
        cached = self.cache.get(key)
        if cached is not None:
            latency = self.stats.note_completed(started_at)
            if trace_id:
                tracer.event(trace_id, "cache.hit")
            self._note_served(trace_id, started_at, latency)
            self._offer_feedback(labeled, cached, trace_id)
            return cached
        if trace_id:
            tracer.event(trace_id, "enqueue")
        request = _Request(labeled, key, trace_id=trace_id, enqueued_at=started_at)
        with self._nonempty:
            if not self._running:
                raise ServiceStoppedError("optimizer service is not running")
            if len(self._queue) >= self.config.max_queue_depth:
                self.stats.note_rejected()
                raise ServiceOverloadedError(
                    f"request queue full ({self.config.max_queue_depth} pending)"
                )
            self._queue.append(request)
            self._nonempty.notify_all()
        if timeout is _DEFAULT_TIMEOUT:
            timeout = self.config.request_timeout_s
        if not request.done.wait(timeout):
            # Mark abandoned first, then recheck: the drain thread may
            # have fulfilled this request between wait() timing out and
            # the mark.  Without the recheck the computed order was
            # discarded and a timeout raised anyway — a lost response.
            request.abandoned = True
            if request.done.is_set():
                # Fulfilled in the window: only count the near-miss when
                # an actual response came back (a fail() in the same
                # window is accounted as the failure it is, below).
                if request.error is None:
                    self.stats.note_timeout_near_miss()
            else:
                self.stats.note_failed()
                raise ServiceTimeoutError(f"no response within {timeout} s")
        if request.error is not None:
            self.stats.note_failed()
            raise request.error
        latency = self.stats.note_completed(started_at)
        self._note_served(trace_id, started_at, latency)
        assert request.result is not None
        self._offer_feedback(labeled, request.result, trace_id)
        return request.result

    # -- drain workers -------------------------------------------------
    def _drain_loop(self, worker_index: int = 0) -> None:
        max_wait_s = self.config.max_wait_ms / 1000.0
        while True:
            with self._nonempty:
                while not self._queue and self._running:
                    self._nonempty.wait()
                if not self._queue:
                    return  # stopped and fully drained
                # Hold the batch open briefly: concurrent arrivals
                # coalesce into one model call instead of many.
                deadline = time.perf_counter() + max_wait_s
                while len(self._queue) < self.config.max_batch_size and self._running:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._nonempty.wait(remaining)
                if not self._queue:
                    # A sibling worker drained everything while this one
                    # held its batch open — back to waiting for arrivals.
                    continue
                take = min(self.config.max_batch_size, len(self._queue))
                batch = [self._queue.popleft() for _ in range(take)]
                # Pin this worker's replica at batch formation: a
                # swap_model landing while the batch decodes must not
                # move it to the new replica set mid-flight (an in-flight
                # batch finishes on the replica it started on).  Worker i
                # always takes slot i of the *current* set, so no two
                # workers ever share a replica — decoding is contention-
                # free by construction.
                replica = self._replicas[worker_index]
            decode_started = time.perf_counter()
            try:
                self._process_batch(
                    batch,
                    replica.session,
                    replica_index=replica.index,
                    formed_at=decode_started,
                )
            except BaseException as error:
                # A drain worker must survive anything — a dead worker
                # would shrink the pool silently (and with one replica,
                # leave a zombie service that accepts requests and never
                # answers).  Fail the batch's waiters and carry on.
                for request in batch:
                    if not request.done.is_set():
                        request.fail(error)
            finally:
                self.stats.note_replica_busy(
                    replica.index, time.perf_counter() - decode_started
                )

    def _process_batch(
        self, batch: list[_Request], session=None, replica_index=None, formed_at=None
    ) -> None:
        if session is None:
            session, _ = self._serving_state()
        if formed_at is None:
            formed_at = time.perf_counter()
        # Span recording happens on this worker thread, outside every
        # service lock, onto the trace IDs the requests carried across
        # the queue.  One int check when telemetry is off.
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        tracing = tracer is not None and tracer.on
        # 0. Drop requests whose waiter already timed out and left.
        batch = [request for request in batch if not request.abandoned]
        if not batch:
            return

        # 1. Coalesce structurally identical requests onto one model slot.
        groups: "OrderedDict[tuple, list[_Request]]" = OrderedDict()
        for request in batch:
            groups.setdefault(request.key, []).append(request)

        # 2. Recheck the cache: an earlier batch (or the fast path of a
        #    racing thread) may have filled a key after this request
        #    missed and enqueued.
        pending: list[tuple[tuple, list[_Request]]] = []
        for key, requests in groups.items():
            cached = self.cache.get(key, count_miss=False)
            if cached is not None:
                for request in requests:
                    request.fulfill(cached)
                    if tracing and request.trace_id:
                        tracer.record(
                            request.trace_id, "queue_wait", request.enqueued_at, formed_at
                        )
                        tracer.event(request.trace_id, "cache.hit")
            else:
                pending.append((key, requests))

        # 3. Validate per request what predict_join_orders would reject
        #    for the whole batch: one disconnected query must fail alone.
        runnable: list[tuple[tuple, list[_Request]]] = []
        for key, requests in pending:
            if self.config.enforce_legality:
                query = requests[0].labeled.query
                try:
                    require_connected(query.adjacency_matrix(), query.tables)
                except Exception as error:  # any malformed request fails alone
                    for request in requests:
                        request.fail(error)
                    continue
            runnable.append((key, requests))

        # Coalesced = in-batch duplicates that shared another identical
        # request's slot (whatever that slot's outcome); model calls =
        # distinct queries actually decoded this batch.
        self.stats.note_batch(
            num_requests=len(batch),
            num_model_queries=len(runnable),
            num_coalesced=len(batch) - len(groups),
            replica_index=replica_index,
        )
        if not runnable:
            return

        # 4. One coalesced batched decode for every distinct survivor.
        items = [requests[0].labeled for _, requests in runnable]
        decode_started = time.perf_counter()
        try:
            orders = session.predict_join_orders(items, **self.config.decode_kwargs())
        except BaseException:
            self._serve_individually(runnable, session)
            return
        decode_ended = time.perf_counter() if tracing else 0.0
        for (key, requests), order in zip(runnable, orders):
            self.cache.put(key, order)
            for request in requests:
                request.fulfill(order)
                if tracing and request.trace_id:
                    trace_id = request.trace_id
                    tracer.record(trace_id, "queue_wait", request.enqueued_at, formed_at)
                    tracer.record(
                        trace_id,
                        "batch",
                        formed_at,
                        decode_started,
                        {"requests": len(batch), "replica": replica_index},
                    )
                    tracer.record(
                        trace_id,
                        "decode",
                        decode_started,
                        decode_ended,
                        {"replica": replica_index, "queries": len(runnable)},
                    )
                    tracer.event(trace_id, "cache.fill")

    def _serve_individually(self, runnable: list[tuple[tuple, list[_Request]]], session=None) -> None:
        """Fallback after a failed batch: isolate the offending request.

        Each distinct query is retried solo so an error poisons only its
        own requesters; the healthy rest of the batch still gets orders.
        """
        if session is None:
            session, _ = self._serving_state()
        for key, requests in runnable:
            try:
                order = session.predict_join_orders(
                    [requests[0].labeled], **self.config.decode_kwargs()
                )[0]
            except BaseException as error:
                for request in requests:
                    request.fail(error)
                continue
            self.cache.put(key, order)
            for request in requests:
                request.fulfill(order)
