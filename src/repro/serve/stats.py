"""Per-request instrumentation of the optimizer service.

:class:`ServiceStats` is the live, thread-safe accumulator the service
writes to; :meth:`ServiceStats.snapshot` freezes it into a
:class:`ServingReport`, which ``repro.eval.reporting.format_serving_report``
renders in the repo's table style.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from ..eval.metrics import LatencyStats, latency_stats
from .cache import CacheStats

__all__ = ["ServiceStats", "ServingReport"]

# Latency samples kept for percentile estimation.  A bounded window
# (most recent completions) keeps memory flat under unbounded traffic.
_LATENCY_WINDOW = 8192


@dataclass
class ServingReport:
    """Frozen view of a service's counters at one instant."""

    completed: int
    rejected: int
    failed: int
    cache_hits: int
    cache_misses: int
    coalesced: int
    batches: int
    batched_requests: int
    model_calls: int          # queries actually sent through the model
    max_batch: int
    swaps: int                # live model hot-swaps performed
    queue_depth: int
    cache_entries: int
    elapsed_s: float
    latency: "LatencyStats | None"
    # A timed-out waiter found its response already computed when it
    # marked itself abandoned; the response was returned, not discarded.
    timeout_near_misses: int = 0
    # Online-adaptation counters (0 unless a feedback path / adaptation
    # worker is attached to the service; see repro.serve.feedback and
    # repro.serve.adaptation).
    feedback_collected: int = 0   # experiences added to the buffer
    feedback_deduped: int = 0     # submissions dropped as already-seen
    feedback_rejected: int = 0    # executions skipped (over limit, ...)
    retrains: int = 0             # adaptation cycles that fine-tuned
    swaps_accepted: int = 0       # retrains that passed the gate + swapped
    swaps_rejected: int = 0       # retrains blocked by the regression gate
    adaptation_failures: int = 0  # cycles that crashed before a verdict
    # Replica-pool counters (trivial for the default 1-replica service).
    # cache_hits/cache_misses above cover the *current* cache epoch only;
    # swap_model resets the cache counters and retires the old epoch's
    # totals here, so lifetime lookups are current + retired while
    # cache_hit_rate never blends numbers across a swap.
    num_replicas: int = 1
    replica_batches: "tuple[int, ...]" = ()     # batches decoded per replica
    replica_requests: "tuple[int, ...]" = ()    # requests served per replica
    replica_busy_s: "tuple[float, ...]" = ()    # wall-clock spent decoding
    retired_cache_hits: int = 0
    retired_cache_misses: int = 0

    @property
    def throughput_qps(self) -> float:
        """Completed requests per second of serving wall-clock."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s

    @property
    def mean_batch_size(self) -> float:
        """Mean requests drained per batch (coalescing included)."""
        if self.batches == 0:
            return 0.0
        return self.batched_requests / self.batches

    @property
    def cache_hit_rate(self) -> float:
        """Hit rate of the *current* cache epoch (since the last swap)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def replica_utilization(self) -> "tuple[float, ...]":
        """Fraction of serving wall-clock each replica spent decoding."""
        if self.elapsed_s <= 0:
            return tuple(0.0 for _ in self.replica_busy_s)
        return tuple(busy / self.elapsed_s for busy in self.replica_busy_s)


class ServiceStats:
    """Thread-safe counters; one instance per service."""

    def __init__(self, num_replicas: int = 1):
        self._lock = threading.Lock()
        self._latencies: "deque[float]" = deque(maxlen=_LATENCY_WINDOW)  # guarded-by: _lock
        self.num_replicas = max(1, num_replicas)
        self.completed = 0  # guarded-by: _lock
        self.rejected = 0  # guarded-by: _lock
        self.failed = 0  # guarded-by: _lock
        self.coalesced = 0  # guarded-by: _lock
        self.batches = 0  # guarded-by: _lock
        self.batched_requests = 0  # guarded-by: _lock
        self.model_calls = 0  # guarded-by: _lock
        self.max_batch = 0  # guarded-by: _lock
        self.swaps = 0  # guarded-by: _lock
        self.timeout_near_misses = 0  # guarded-by: _lock
        self.retired_cache_hits = 0  # guarded-by: _lock
        self.retired_cache_misses = 0  # guarded-by: _lock
        # Indexed by drain-worker slot; slots survive replica-set flips,
        # so these are lifetime counters per pool position.
        self._replica_batches = [0] * self.num_replicas  # guarded-by: _lock
        self._replica_requests = [0] * self.num_replicas  # guarded-by: _lock
        self._replica_busy_s = [0.0] * self.num_replicas  # guarded-by: _lock
        self._first_request_at: float | None = None  # guarded-by: _lock
        self._last_done_at: float | None = None  # guarded-by: _lock

    # -- writers (service-internal) ------------------------------------
    def note_request(self) -> float:
        now = time.perf_counter()
        with self._lock:
            if self._first_request_at is None:
                self._first_request_at = now
        return now

    def note_completed(self, started_at: float) -> None:
        now = time.perf_counter()
        with self._lock:
            self.completed += 1
            self._latencies.append(now - started_at)
            self._last_done_at = now

    def note_failed(self) -> None:
        with self._lock:
            self.failed += 1
            self._last_done_at = time.perf_counter()

    def note_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def note_swap(self, retired: "CacheStats | None" = None) -> None:
        """Count a hot swap; ``retired`` is the pre-swap cache epoch's
        stats (from ``PlanCache.clear(reset_stats=True)``), accumulated
        so lifetime lookup totals survive the counter reset."""
        with self._lock:
            self.swaps += 1
            if retired is not None:
                self.retired_cache_hits += retired.hits
                self.retired_cache_misses += retired.misses

    def note_timeout_near_miss(self) -> None:
        with self._lock:
            self.timeout_near_misses += 1

    def note_batch(
        self,
        num_requests: int,
        num_model_queries: int,
        num_coalesced: int,
        replica_index: "int | None" = None,
    ) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += num_requests
            self.model_calls += num_model_queries
            self.coalesced += num_coalesced
            self.max_batch = max(self.max_batch, num_requests)
            if replica_index is not None and 0 <= replica_index < self.num_replicas:
                self._replica_batches[replica_index] += 1
                self._replica_requests[replica_index] += num_requests

    def note_replica_busy(self, replica_index: int, busy_s: float) -> None:
        """Wall-clock one drain worker spent processing a batch (the
        utilization numerator; recorded even when the batch failed)."""
        with self._lock:
            if 0 <= replica_index < self.num_replicas:
                self._replica_busy_s[replica_index] += busy_s

    # ------------------------------------------------------------------
    def snapshot(self, queue_depth: int = 0, cache: "object | None" = None) -> ServingReport:
        """Freeze the counters (plus the cache's, if one is passed)."""
        # Snapshot the cache *before* taking our own lock: CacheStats is
        # captured atomically under the cache's lock, and never nesting
        # the two locks keeps the ordering trivially cycle-free.
        cache_stats = cache.stats() if cache is not None else CacheStats(0, 0, 0)
        with self._lock:
            if self._first_request_at is None:
                elapsed = 0.0
            else:
                end = self._last_done_at or time.perf_counter()
                elapsed = max(end - self._first_request_at, 0.0)
            return ServingReport(
                completed=self.completed,
                rejected=self.rejected,
                failed=self.failed,
                cache_hits=cache_stats.hits,
                cache_misses=cache_stats.misses,
                coalesced=self.coalesced,
                batches=self.batches,
                batched_requests=self.batched_requests,
                model_calls=self.model_calls,
                max_batch=self.max_batch,
                swaps=self.swaps,
                timeout_near_misses=self.timeout_near_misses,
                queue_depth=queue_depth,
                cache_entries=cache_stats.size,
                elapsed_s=elapsed,
                latency=latency_stats(self._latencies),
                num_replicas=self.num_replicas,
                replica_batches=tuple(self._replica_batches),
                replica_requests=tuple(self._replica_requests),
                replica_busy_s=tuple(self._replica_busy_s),
                retired_cache_hits=self.retired_cache_hits,
                retired_cache_misses=self.retired_cache_misses,
            )
