"""Per-request instrumentation of the optimizer service.

:class:`ServiceStats` is the live, thread-safe accumulator the service
writes to; :meth:`ServiceStats.snapshot` freezes it into a
:class:`ServingReport`, which ``repro.eval.reporting.format_serving_report``
renders in the repo's table style.

Since the telemetry PR this is a thin facade over a
:class:`repro.obs.MetricsRegistry`: every counter is a named registry
metric (labeled with the owning service instance), and latency lives in
a **fixed-bucket histogram** instead of the former bounded sample deque
— memory is O(buckets) regardless of traffic, and per-shard histograms
merge exactly.  Percentiles in the resulting
:class:`~repro.eval.metrics.LatencyStats` are therefore exact within
buckets (count/mean/max stay exact); see
:class:`repro.obs.metrics.Histogram` for the guarantee.  Passing a
shared registry (via ``OptimizerService(..., telemetry=...)``) makes
the same numbers visible to the fleet-wide snapshot with no second
accounting path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..eval.metrics import LatencyStats
from ..obs.metrics import MetricsRegistry
from .cache import CacheStats

__all__ = ["ServiceStats", "ServingReport"]


@dataclass
class ServingReport:
    """Frozen view of a service's counters at one instant."""

    completed: int
    rejected: int
    failed: int
    cache_hits: int
    cache_misses: int
    coalesced: int
    batches: int
    batched_requests: int
    model_calls: int          # queries actually sent through the model
    max_batch: int
    swaps: int                # live model hot-swaps performed
    queue_depth: int
    cache_entries: int
    elapsed_s: float
    latency: "LatencyStats | None"
    # A timed-out waiter found its response already computed when it
    # marked itself abandoned; the response was returned, not discarded.
    timeout_near_misses: int = 0
    # Online-adaptation counters (0 unless a feedback path / adaptation
    # worker is attached to the service; see repro.serve.feedback and
    # repro.serve.adaptation).
    feedback_collected: int = 0   # experiences added to the buffer
    feedback_deduped: int = 0     # submissions dropped as already-seen
    feedback_rejected: int = 0    # executions skipped (over limit, ...)
    retrains: int = 0             # adaptation cycles that fine-tuned
    swaps_accepted: int = 0       # retrains that passed the gate + swapped
    swaps_rejected: int = 0       # retrains blocked by the regression gate
    adaptation_failures: int = 0  # cycles that crashed before a verdict
    # Replica-pool counters (trivial for the default 1-replica service).
    # cache_hits/cache_misses above cover the *current* cache epoch only;
    # swap_model resets the cache counters and retires the old epoch's
    # totals here, so lifetime lookups are current + retired while
    # cache_hit_rate never blends numbers across a swap.
    num_replicas: int = 1
    replica_batches: "tuple[int, ...]" = ()     # batches decoded per replica
    replica_requests: "tuple[int, ...]" = ()    # requests served per replica
    replica_busy_s: "tuple[float, ...]" = ()    # wall-clock spent decoding
    retired_cache_hits: int = 0
    retired_cache_misses: int = 0

    @property
    def throughput_qps(self) -> float:
        """Completed requests per second of serving wall-clock."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s

    @property
    def mean_batch_size(self) -> float:
        """Mean requests drained per batch (coalescing included)."""
        if self.batches == 0:
            return 0.0
        return self.batched_requests / self.batches

    @property
    def cache_hit_rate(self) -> float:
        """Hit rate of the *current* cache epoch (since the last swap)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def replica_utilization(self) -> "tuple[float, ...]":
        """Fraction of serving wall-clock each replica spent decoding."""
        if self.elapsed_s <= 0:
            return tuple(0.0 for _ in self.replica_busy_s)
        return tuple(busy / self.elapsed_s for busy in self.replica_busy_s)


class ServiceStats:
    """Thread-safe counters; one instance per service.

    Each metric is its own registry entry with its own lock, so writers
    on different counters never contend; ``_lock`` here guards only the
    first/last-activity timestamps.  No metric is ever recorded while
    holding ``_lock`` (the analyzer's ``obs-discipline`` rule).
    """

    def __init__(
        self,
        num_replicas: int = 1,
        registry: "MetricsRegistry | None" = None,
        labels: "dict[str, str] | None" = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels = dict(labels or {})
        self.num_replicas = max(1, num_replicas)
        self._lock = threading.Lock()
        self._first_request_at: float | None = None  # guarded-by: _lock
        self._last_done_at: float | None = None  # guarded-by: _lock
        counter = self.registry.counter
        self._completed = counter("serve.completed", labels=self.labels)
        self._rejected = counter("serve.rejected", labels=self.labels)
        self._failed = counter("serve.failed", labels=self.labels)
        self._coalesced = counter("serve.coalesced", labels=self.labels)
        self._batches = counter("serve.batches", labels=self.labels)
        self._batched_requests = counter("serve.batched_requests", labels=self.labels)
        self._model_calls = counter("serve.model_calls", labels=self.labels)
        self._swaps = counter("serve.swaps", labels=self.labels)
        self._near_misses = counter("serve.timeout_near_misses", labels=self.labels)
        self._retired_hits = counter("serve.retired_cache_hits", labels=self.labels)
        self._retired_misses = counter("serve.retired_cache_misses", labels=self.labels)
        self._max_batch = self.registry.gauge("serve.max_batch", labels=self.labels)
        self._latency = self.registry.histogram("serve.latency_s", labels=self.labels)
        # Indexed by drain-worker slot; slots survive replica-set flips,
        # so these are lifetime counters per pool position.
        self._replica_batches = [
            counter("serve.replica.batches", labels={**self.labels, "replica": str(i)})
            for i in range(self.num_replicas)
        ]
        self._replica_requests = [
            counter("serve.replica.requests", labels={**self.labels, "replica": str(i)})
            for i in range(self.num_replicas)
        ]
        self._replica_busy = [
            self.registry.histogram(
                "serve.replica.busy_s", labels={**self.labels, "replica": str(i)}
            )
            for i in range(self.num_replicas)
        ]

    # -- writers (service-internal) ------------------------------------
    def note_request(self) -> float:
        now = time.perf_counter()
        with self._lock:
            if self._first_request_at is None:
                self._first_request_at = now
        return now

    def note_completed(self, started_at: float) -> float:
        """Count a served request; returns its latency in seconds."""
        now = time.perf_counter()
        latency = now - started_at
        with self._lock:
            self._last_done_at = now
        self._completed.inc()
        self._latency.observe(latency)
        return latency

    def note_failed(self) -> None:
        now = time.perf_counter()
        with self._lock:
            self._last_done_at = now
        self._failed.inc()

    def note_rejected(self) -> None:
        self._rejected.inc()

    def note_swap(self, retired: "CacheStats | None" = None) -> None:
        """Count a hot swap; ``retired`` is the pre-swap cache epoch's
        stats (from ``PlanCache.clear(reset_stats=True)``), accumulated
        so lifetime lookup totals survive the counter reset."""
        self._swaps.inc()
        if retired is not None:
            self._retired_hits.inc(retired.hits)
            self._retired_misses.inc(retired.misses)

    def note_timeout_near_miss(self) -> None:
        self._near_misses.inc()

    def note_batch(
        self,
        num_requests: int,
        num_model_queries: int,
        num_coalesced: int,
        replica_index: "int | None" = None,
    ) -> None:
        self._batches.inc()
        self._batched_requests.inc(num_requests)
        self._model_calls.inc(num_model_queries)
        self._coalesced.inc(num_coalesced)
        self._max_batch.update_max(num_requests)
        if replica_index is not None and 0 <= replica_index < self.num_replicas:
            self._replica_batches[replica_index].inc()
            self._replica_requests[replica_index].inc(num_requests)

    def note_replica_busy(self, replica_index: int, busy_s: float) -> None:
        """Wall-clock one drain worker spent processing a batch (the
        utilization numerator; recorded even when the batch failed)."""
        if 0 <= replica_index < self.num_replicas:
            self._replica_busy[replica_index].observe(busy_s)

    # ------------------------------------------------------------------
    def _latency_stats(self) -> "LatencyStats | None":
        summary = self._latency.summary()
        if summary is None:
            return None
        return LatencyStats(
            count=summary.count,
            mean=summary.mean,
            p50=summary.p50,
            p95=summary.p95,
            p99=summary.p99,
            max=summary.max,
        )

    def snapshot(self, queue_depth: int = 0, cache: "object | None" = None) -> ServingReport:
        """Freeze the counters (plus the cache's, if one is passed)."""
        # Snapshot the cache *before* taking our own lock: CacheStats is
        # captured atomically under the cache's lock, and never nesting
        # the two locks keeps the ordering trivially cycle-free.
        cache_stats = cache.stats() if cache is not None else CacheStats(0, 0, 0)
        with self._lock:
            if self._first_request_at is None:
                elapsed = 0.0
            else:
                end = self._last_done_at or time.perf_counter()
                elapsed = max(end - self._first_request_at, 0.0)
        return ServingReport(
            completed=int(self._completed.value),
            rejected=int(self._rejected.value),
            failed=int(self._failed.value),
            cache_hits=cache_stats.hits,
            cache_misses=cache_stats.misses,
            coalesced=int(self._coalesced.value),
            batches=int(self._batches.value),
            batched_requests=int(self._batched_requests.value),
            model_calls=int(self._model_calls.value),
            max_batch=int(self._max_batch.value),
            swaps=int(self._swaps.value),
            timeout_near_misses=int(self._near_misses.value),
            queue_depth=queue_depth,
            cache_entries=cache_stats.size,
            elapsed_s=elapsed,
            latency=self._latency_stats(),
            num_replicas=self.num_replicas,
            replica_batches=tuple(int(c.value) for c in self._replica_batches),
            replica_requests=tuple(int(c.value) for c in self._replica_requests),
            replica_busy_s=tuple(h.sum for h in self._replica_busy),
            retired_cache_hits=int(self._retired_hits.value),
            retired_cache_misses=int(self._retired_misses.value),
        )
