"""Configuration of the micro-batching optimizer service."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeConfig"]


@dataclass
class ServeConfig:
    """Knobs of :class:`repro.serve.OptimizerService`.

    Attributes
    ----------
    num_replicas:
        Size of the in-process replica pool: the service holds this many
        read-only model replicas (the given model plus
        ``num_replicas - 1`` bit-identical
        :meth:`MTMLFQO.clone_for_inference` clones, each with its own
        inference lock and feature caches) and runs one drain worker per
        replica, so up to ``num_replicas`` batches decode in parallel.
        ``1`` (the default) is the original single-drainer service.
        Throughput scales with replica count only up to the machine's
        core count — see ``benchmarks/bench_serve_throughput.py``.
    max_batch_size:
        Largest number of queued requests drained into one batched
        ``predict_join_orders`` call.
    max_wait_ms:
        How long the drain loop holds an incomplete batch open waiting
        for more arrivals.  The batching latency/throughput trade-off
        knob: 0 degenerates to "take whatever is queued right now".
    max_queue_depth:
        Backpressure bound: requests arriving while this many are
        already queued are rejected with
        :class:`repro.serve.ServiceOverloadedError` instead of queued.
    plan_cache_size:
        Bound of the LRU plan cache keyed by structural query/plan
        signature.  ``0`` disables caching entirely (every request runs
        the model) — used by the throughput benchmark to measure the
        batching win in isolation.
    beam_width / enforce_legality / rerank_with_cost:
        Passed through to :meth:`MTMLFQO.predict_join_orders` (``None``
        defers to the model config, exactly like a direct call).  They
        are service-level — part of the cache key — so every request of
        one service decodes under the same policy.
    request_timeout_s:
        Default per-request wait bound in :meth:`optimize`; ``None``
        waits forever.
    """

    num_replicas: int = 1
    max_batch_size: int = 16
    max_wait_ms: float = 2.0
    max_queue_depth: int = 256
    plan_cache_size: int = 1024
    beam_width: int | None = None
    enforce_legality: bool = True
    rerank_with_cost: bool | None = None
    request_timeout_s: float | None = 30.0

    def decode_kwargs(self) -> dict:
        """The decode-policy keywords for ``predict_join_orders``.

        The single source of truth for "what this service's policy
        means as model-call arguments" — the drain loop, the
        adaptation gate, and the federation gate all decode under
        exactly these keywords, so a new policy knob added here reaches
        every gate and serving path at once.
        """
        return {
            "beam_width": self.beam_width,
            "enforce_legality": self.enforce_legality,
            "rerank_with_cost": self.rerank_with_cost,
        }

    def __post_init__(self):
        if self.num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {self.num_replicas}")
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.plan_cache_size < 0:
            raise ValueError(f"plan_cache_size must be >= 0, got {self.plan_cache_size}")
        if self.beam_width is not None and self.beam_width < 1:
            raise ValueError(f"beam_width must be >= 1, got {self.beam_width}")
