"""``repro.serve`` — the always-on micro-batching optimizer service.

Coalesces concurrent single-query ``optimize`` requests into the
batched ``MTMLFQO.predict_join_orders`` path, with a bounded LRU plan
cache keyed by structural query/plan signatures, queue-depth
backpressure, and per-request latency / throughput instrumentation
(rendered by ``repro.eval.reporting.format_serving_report``).
See DESIGN.md "Serving architecture".

The online-adaptation layer closes the paper's learning loop:
``OptimizerService.attach_feedback`` forwards served orders to a
:class:`FeedbackCollector`, which executes them and fills a bounded,
deduped :class:`ExperienceBuffer`; an :class:`AdaptationWorker`
fine-tunes a warm-started trainer on that experience and hot-swaps the
serving model only after a join-order-regret regression gate passes.
See DESIGN.md "Online adaptation".
"""

from .adaptation import (
    AdaptationConfig,
    AdaptationWorker,
    GateResult,
    evaluate_regret_gate,
    split_experience,
)
from .cache import CacheStats, PlanCache
from .config import ServeConfig
from .feedback import ExperienceBuffer, FeedbackCollector, FeedbackConfig
from .service import (
    OptimizerService,
    ServiceOverloadedError,
    ServiceStoppedError,
    ServiceTimeoutError,
)
from .stats import ServiceStats, ServingReport

__all__ = [
    "AdaptationConfig",
    "AdaptationWorker",
    "CacheStats",
    "ExperienceBuffer",
    "FeedbackCollector",
    "FeedbackConfig",
    "GateResult",
    "OptimizerService",
    "PlanCache",
    "ServeConfig",
    "ServiceOverloadedError",
    "ServiceStoppedError",
    "ServiceTimeoutError",
    "ServiceStats",
    "ServingReport",
    "evaluate_regret_gate",
    "split_experience",
]
