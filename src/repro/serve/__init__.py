"""``repro.serve`` — the always-on micro-batching optimizer service.

Coalesces concurrent single-query ``optimize`` requests into the
batched ``MTMLFQO.predict_join_orders`` path, with a bounded LRU plan
cache keyed by structural query/plan signatures, queue-depth
backpressure, and per-request latency / throughput instrumentation
(rendered by ``repro.eval.reporting.format_serving_report``).
See DESIGN.md "Serving architecture".
"""

from .cache import PlanCache
from .config import ServeConfig
from .service import (
    OptimizerService,
    ServiceOverloadedError,
    ServiceStoppedError,
    ServiceTimeoutError,
)
from .stats import ServiceStats, ServingReport

__all__ = [
    "OptimizerService",
    "PlanCache",
    "ServeConfig",
    "ServiceOverloadedError",
    "ServiceStoppedError",
    "ServiceTimeoutError",
    "ServiceStats",
    "ServingReport",
]
