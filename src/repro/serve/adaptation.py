"""Guarded online adaptation: retrain on feedback, swap only if safe.

:class:`AdaptationWorker` turns the experience gathered by
:class:`repro.serve.feedback.FeedbackCollector` into live model updates
without ever taking the service down — the paper's "keeps learning from
the DBMS it serves" promise as a production loop:

1. **collect** — wait until the buffer holds at least
   ``min_new_experience`` experiences that were not seen at the last
   retrain;
2. **retrain** — warm-start a :class:`JointTrainer` from the latest
   accepted checkpoint (model weights *and* Adam moments, so each cycle
   continues the previous run) and fine-tune on the buffered
   experience.  Training happens on a private model instance loaded
   from disk: the serving model's weights are never touched;
3. **gate** — decode join orders for a held-out validation slice with
   both the live and the candidate model and execute them through
   :mod:`repro.engine` (over-limit orders charged the shared timeout
   penalty).  The candidate is accepted only if its join-order regret —
   total simulated latency above the slice's best-known orders — does
   not worsen the live model's;
4. **swap** — on acceptance, persist a checkpoint (the next cycle's
   warm-start point) and install the candidate via
   :meth:`OptimizerService.swap_model`; the service's swap epoch retires
   every cached pre-swap plan, so mid-adaptation traffic can never be
   answered with a stale order.  On rejection the candidate (and its
   checkpoint lineage) is discarded and the live model keeps serving.

``retrains`` / ``swaps_accepted`` / ``swaps_rejected`` surface through
:meth:`OptimizerService.report` and
:func:`repro.eval.reporting.format_serving_report`.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
from dataclasses import dataclass

from ..core.trainer import JointTrainer
from ..eval.experiments import join_order_execution_time
from ..obs.trace import maybe_span
from ..optimizer.selectivity import HistogramEstimator
from ..workload.labeler import LabeledQuery
from .feedback import ExperienceBuffer

__all__ = [
    "AdaptationConfig",
    "AdaptationWorker",
    "GateResult",
    "evaluate_regret_gate",
    "split_experience",
]


@dataclass
class AdaptationConfig:
    """Knobs of :class:`AdaptationWorker`.

    Attributes
    ----------
    min_new_experience:
        Unseen-experience threshold that triggers a retrain cycle.
    fine_tune_epochs / batch_size / learning_rate / seed:
        Passed to the warm-started :class:`JointTrainer` (``None``
        learning rate keeps the checkpointed one).
    validation_fraction:
        Share of the experience snapshot (most recent entries, at least
        one) held out from fine-tuning and used by the regression gate.
    regret_tolerance_ms:
        Slack the gate allows the candidate over the live model.  0 is
        the strict "must not worsen" rule.
    max_intermediate_rows:
        Execution bound when the gate replays validation orders.
    poll_interval_s:
        How often the background loop rechecks the buffer.
    checkpoint_dir:
        Where warm-start checkpoints live; a private temp dir (removed
        on ``stop``) when None.
    """

    min_new_experience: int = 8
    fine_tune_epochs: int = 4
    batch_size: int = 8
    learning_rate: float | None = None
    seed: int = 0
    validation_fraction: float = 0.25
    regret_tolerance_ms: float = 0.0
    max_intermediate_rows: int = 2_000_000
    poll_interval_s: float = 0.25
    checkpoint_dir: str | None = None

    def __post_init__(self):
        if self.min_new_experience < 1:
            raise ValueError(f"min_new_experience must be >= 1, got {self.min_new_experience}")
        if not 0.0 < self.validation_fraction < 1.0:
            raise ValueError(
                f"validation_fraction must be in (0, 1), got {self.validation_fraction}"
            )
        if self.regret_tolerance_ms < 0:
            raise ValueError(f"regret_tolerance_ms must be >= 0, got {self.regret_tolerance_ms}")


@dataclass
class GateResult:
    """Outcome of one regression-gate evaluation."""

    accepted: bool
    validation_count: int
    live_ms: float
    candidate_ms: float
    best_ms: float

    @property
    def live_regret_ms(self) -> float:
        return self.live_ms - self.best_ms

    @property
    def candidate_regret_ms(self) -> float:
        return self.candidate_ms - self.best_ms


def split_experience(
    experience: list[LabeledQuery], validation_fraction: float
) -> tuple[list[LabeledQuery], list[LabeledQuery]]:
    """Deterministic (train, validation) split of an experience snapshot.

    A buffer's insertion order depends on traffic arrival (thread
    scheduling), so the snapshot is first sorted by the query's SQL
    text: given the same experience *set*, every retrain fine-tunes and
    gates on exactly the same slices no matter how requests interleaved.
    When there is too little experience to hold anything out, the gate
    runs on the training slice (better than no gate at all).
    """
    experience = sorted(experience, key=lambda item: item.query.to_sql())
    k = max(1, round(len(experience) * validation_fraction))
    if k >= len(experience):
        return list(experience), list(experience)
    return experience[:-k], experience[-k:]


def evaluate_regret_gate(
    db,
    live,
    candidate,
    val_slice: list[LabeledQuery],
    *,
    decode: dict | None = None,
    estimator: HistogramEstimator | None = None,
    tolerance_ms: float = 0.0,
    max_intermediate_rows: int = 2_000_000,
) -> GateResult:
    """Join-order regret of ``candidate`` vs ``live`` on a held-out slice.

    Both models decode the slice under the same policy (``decode`` is
    the ``predict_join_orders`` keyword set — pass the serving config's
    beam width / legality / rerank so the gate measures exactly what
    each model would serve) and the decoded orders are *executed*
    through :mod:`repro.engine` (over-limit orders charged the shared
    timeout penalty).  Regret is measured against the slice's best-known
    orders: the ECQO optimal where the experience derived one, else the
    experience's own recorded execution.  Both regrets share one
    baseline, so acceptance reduces to "candidate total simulated
    latency must not exceed the live model's (plus ``tolerance_ms``)" —
    but the regret numbers are what reports show.
    """
    if not val_slice:
        raise ValueError("cannot gate on an empty validation slice")
    estimator = estimator or HistogramEstimator(db)
    decode = dict(decode or {})

    def total_ms(orders: list[list[str]]) -> float:
        total = 0.0
        for item, order in zip(val_slice, orders):
            total += join_order_execution_time(
                db, item, order, estimator, max_intermediate_rows=max_intermediate_rows
            )
        return total

    live_ms = total_ms(live.predict_join_orders(db.name, val_slice, **decode))
    candidate_ms = total_ms(candidate.predict_join_orders(db.name, val_slice, **decode))
    best_ms = 0.0
    for item in val_slice:
        if item.optimal_order is not None:
            best_ms += join_order_execution_time(
                db, item, item.optimal_order, estimator,
                max_intermediate_rows=max_intermediate_rows,
            )
        else:
            best_ms += item.total_time_ms
    return GateResult(
        accepted=candidate_ms <= live_ms + tolerance_ms,
        validation_count=len(val_slice),
        live_ms=live_ms,
        candidate_ms=candidate_ms,
        best_ms=best_ms,
    )


class AdaptationWorker:
    """Background collect → retrain → gate → swap loop over one service.

    Use as a context manager (or :meth:`start` / :meth:`stop`) for the
    autonomous loop, or call :meth:`run_once` directly for a
    deterministic, synchronous cycle (tests, notebooks)::

        worker = AdaptationWorker(service, db, collector.buffer, config)
        with collector, worker:
            ... serve traffic; the model adapts in the background ...
    """

    def __init__(self, service, db, buffer: ExperienceBuffer, config: AdaptationConfig | None = None,
                 databases: dict | None = None):
        self.service = service
        self.db = db
        self.buffer = buffer
        self.config = config or AdaptationConfig()
        # Databases handed to checkpoint load: the serving model may hold
        # featurizers for more databases than the one being served.
        # Copied: the served database is added without mutating the
        # caller's mapping.
        self.databases = dict(databases) if databases else {}
        self.databases.setdefault(db.name, db)
        self._estimator = HistogramEstimator(db)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._consumed = 0              # guarded-by: _lock — buffer.added seen at last retrain
        self._latest_checkpoint: str | None = None  # guarded-by: _lock
        self._own_checkpoint_dir: str | None = None
        self.retrains = 0  # guarded-by: _lock
        self.swaps_accepted = 0  # guarded-by: _lock
        self.swaps_rejected = 0  # guarded-by: _lock
        # Cycles that died on infrastructure (load/training error), NOT
        # gate rejections — kept apart so `swaps_rejected` keeps meaning
        # "the regression gate blocked a candidate".
        self.cycles_failed = 0  # guarded-by: _lock
        self.last_gate: GateResult | None = None  # guarded-by: _lock
        # Surface this worker's counters through service.report().
        service.adaptation = self

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "AdaptationWorker":
        if self._thread is not None:
            raise RuntimeError("adaptation worker already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name=f"adaptation-{self.db.name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Signal the loop, join the thread, drop a private temp dir."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self._own_checkpoint_dir is not None:
            shutil.rmtree(self._own_checkpoint_dir, ignore_errors=True)
            self._own_checkpoint_dir = None
            with self._lock:
                self._latest_checkpoint = None

    def __enter__(self) -> "AdaptationWorker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- loop ----------------------------------------------------------
    def pending_experience(self) -> int:
        """Unique experiences added since the last retrain cycle."""
        with self._lock:
            consumed = self._consumed
        return self.buffer.added - consumed

    def _loop(self) -> None:
        while not self._stop.is_set():
            if self.pending_experience() >= self.config.min_new_experience:
                try:
                    self.run_once()
                except BaseException:
                    # The loop must survive anything (a failed load, a
                    # transient training error).  run_once only marks
                    # experience consumed on completion, so the trigger
                    # credit is preserved and the retry trains on the
                    # same data — with a backoff so a persistent failure
                    # (unwritable checkpoint dir) cannot hot-spin
                    # training cycles.
                    with self._lock:
                        self.cycles_failed += 1
                    self._stop.wait(max(1.0, 20 * self.config.poll_interval_s))
            else:
                self._stop.wait(self.config.poll_interval_s)

    # -- one adaptation cycle ------------------------------------------
    def _checkpoint_dir(self) -> str:
        if self.config.checkpoint_dir is not None:
            os.makedirs(self.config.checkpoint_dir, exist_ok=True)
            return self.config.checkpoint_dir
        if self._own_checkpoint_dir is None:
            self._own_checkpoint_dir = tempfile.mkdtemp(prefix="repro-adapt-")
        return self._own_checkpoint_dir

    def _base_checkpoint(self) -> str:
        """The warm-start point: latest accepted, else the live model."""
        with self._lock:
            latest = self._latest_checkpoint
        if latest is None:
            live = self.service._serving_state()[0].model
            path = os.path.join(self._checkpoint_dir(), "base")
            # JointTrainer(live) only builds an Adam over the live
            # parameters (fresh moments); it never steps them here.
            # Saved outside _lock: checkpointing is disk I/O.
            latest = JointTrainer(live).save_checkpoint(path)
            with self._lock:
                self._latest_checkpoint = latest
        return latest

    def _split(self, experience: list[LabeledQuery]) -> tuple[list[LabeledQuery], list[LabeledQuery]]:
        """Deterministic (train, validation) split; see :func:`split_experience`."""
        return split_experience(experience, self.config.validation_fraction)

    def run_once(self) -> bool:
        """One collect → retrain → gate → swap cycle; True iff swapped.

        When the service carries telemetry, the cycle is one trace:
        ``adapt.retrain`` → ``adapt.gate`` → a ``gate.accept`` /
        ``gate.reject`` verdict event → (on accept) ``adapt.swap``.
        """
        experience, added_at_snapshot = self.buffer.snapshot_with_added()
        if not experience:
            return False
        telemetry = getattr(self.service, "telemetry", None)
        tracer = telemetry.tracer if telemetry is not None else None
        cycle_id = tracer.new_trace() if tracer is not None else 0
        train_slice, val_slice = self._split(experience)
        live = self.service._serving_state()[0].model

        trainer = JointTrainer.warm_start(
            self._base_checkpoint(), self.databases, learning_rate=self.config.learning_rate
        )
        with self._lock:
            self.retrains += 1
            retrain_index = self.retrains
        # Seed varies per cycle: a retry after a gate rejection (with
        # more experience) explores a different batch order instead of
        # replaying the rejected run's schedule.
        with maybe_span(telemetry, cycle_id, "adapt.retrain") as span:
            span.set("experience", len(train_slice)).set("cycle", retrain_index)
            trainer.train(
                [(self.db.name, item) for item in train_slice],
                epochs=self.config.fine_tune_epochs,
                batch_size=self.config.batch_size,
                seed=self.config.seed + retrain_index - 1,
            )
        candidate = trainer.model

        with maybe_span(telemetry, cycle_id, "adapt.gate") as span:
            gate = self._evaluate_gate(live, candidate, val_slice)
            span.set("validation", gate.validation_count)
        if tracer is not None:
            tracer.event(
                cycle_id,
                "gate.accept" if gate.accepted else "gate.reject",
                {
                    "live_regret_ms": round(gate.live_regret_ms, 3),
                    "candidate_regret_ms": round(gate.candidate_regret_ms, 3),
                },
            )
        if not gate.accepted:
            # Experience is marked consumed only when a cycle completes
            # (here, and after a successful install below): a crash at
            # any earlier — or later — point leaves the trigger credit
            # intact, so the retry trains on the same data.
            with self._lock:
                self.last_gate = gate
                self._consumed = max(self._consumed, added_at_snapshot)
                self.swaps_rejected += 1
            return False
        # Persist, install, and only then advance the warm-start lineage:
        # swap_model validates the candidate's session before the atomic
        # (session, epoch) switch (retiring every pre-swap cache entry),
        # and if that validation raises, the saved checkpoint must not
        # become the next cycle's base — only installed models join the
        # lineage.
        path = trainer.save_checkpoint(
            os.path.join(self._checkpoint_dir(), f"adapt-{retrain_index:04d}")
        )
        with maybe_span(telemetry, cycle_id, "adapt.swap"):
            self.service.swap_model(candidate)
        with self._lock:
            self.last_gate = gate
            self._latest_checkpoint = path
            self._consumed = max(self._consumed, added_at_snapshot)
            self.swaps_accepted += 1
        return True

    # -- regression gate -----------------------------------------------
    def _evaluate_gate(self, live, candidate, val_slice: list[LabeledQuery]) -> GateResult:
        """Candidate-vs-live regret under the *service's* decode policy.

        Delegates to :func:`evaluate_regret_gate` with the serving
        config's beam width / legality / cost-rerank: the gate must
        measure exactly what each model would serve, not its behavior at
        some other beam width.
        """
        return evaluate_regret_gate(
            self.db,
            live,
            candidate,
            val_slice,
            decode=self.service.config.decode_kwargs(),
            estimator=self._estimator,
            tolerance_ms=self.config.regret_tolerance_ms,
            max_intermediate_rows=self.config.max_intermediate_rows,
        )

    # -- reporting -----------------------------------------------------
    def counters(self) -> dict:
        """The adaptation fields this worker contributes to reports."""
        with self._lock:
            return {
                "retrains": self.retrains,
                "swaps_accepted": self.swaps_accepted,
                "swaps_rejected": self.swaps_rejected,
                "adaptation_failures": self.cycles_failed,
            }
