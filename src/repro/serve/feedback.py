"""Execution feedback: served join orders become training experience.

The paper's training data (E(P), Card, Cost, P_t) is harvested from
*executed* plans — which is exactly what a serving optimizer produces
all day.  This module closes that loop:

- :class:`ExperienceBuffer` — a bounded, query-signature-deduped store
  of :class:`LabeledQuery` experience (FIFO eviction past the bound, so
  memory stays flat under unbounded traffic);
- :class:`FeedbackCollector` — a background worker the service forwards
  served ``(query, order)`` pairs to (``OptimizerService.attach_feedback``).
  Off the request path, it executes the served order through
  :mod:`repro.engine` (bounded by the labeler's
  ``max_intermediate_rows``), converts the execution into labeled
  experience via :meth:`QueryLabeler.label_with_order` — per-node true
  cardinalities, cumulative sub-plan costs, and (for small-enough
  queries) the ECQO optimal-order label — and appends it to the buffer.

Submission is cheap and non-blocking by design: a signature already in
the buffer (or already queued) is deduped without touching the engine,
and a full work queue sheds load instead of stalling a client thread.
Skipped executions are *counted by reason* (over limit, disconnected —
see the labeler's skip accounting) rather than silently dropped, and the
counters surface in :class:`repro.serve.ServingReport`.

The :class:`repro.serve.adaptation.AdaptationWorker` consumes the buffer
to fine-tune and hot-swap the serving model.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

from ..core.serializer import query_signature
from ..obs.trace import maybe_span
from ..workload.labeler import LabeledQuery, QueryLabeler

__all__ = ["ExperienceBuffer", "FeedbackConfig", "FeedbackCollector"]


class ExperienceBuffer:
    """Bounded, signature-deduped store of feedback experience.

    Thread-safe.  ``added`` counts unique experiences ever accepted
    (monotonic, survives eviction) — the adaptation worker uses it to
    detect fresh experience without draining the buffer.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, LabeledQuery]" = OrderedDict()  # guarded-by: _lock
        self.added = 0      # guarded-by: _lock — unique experiences accepted (monotonic)
        self.deduped = 0    # guarded-by: _lock — adds dropped: signature present
        self.evicted = 0    # guarded-by: _lock — oldest entries pushed out by the bound

    def seen(self, signature: tuple) -> bool:
        with self._lock:
            return signature in self._entries

    def note_dedup(self) -> None:
        """Count a dedup that happened before :meth:`add` (fast path)."""
        with self._lock:
            self.deduped += 1

    def add(self, signature: tuple, labeled: LabeledQuery) -> bool:
        """Insert unless the signature is already buffered; FIFO-evict."""
        with self._lock:
            if signature in self._entries:
                self.deduped += 1
                return False
            self._entries[signature] = labeled
            self.added += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evicted += 1
            return True

    def snapshot(self) -> list[LabeledQuery]:
        """The buffered experience, oldest first."""
        with self._lock:
            return list(self._entries.values())

    def snapshot_with_added(self) -> "tuple[list[LabeledQuery], int]":
        """Atomic ``(snapshot, added)`` pair.

        The adaptation worker marks experience consumed against the
        ``added`` value observed *with* the snapshot — an item landing
        concurrently after the snapshot stays pending for the next
        cycle instead of being marked consumed without ever being
        trained on.
        """
        with self._lock:
            return list(self._entries.values()), self.added

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, signature: tuple) -> bool:
        return self.seen(signature)


@dataclass
class FeedbackConfig:
    """Knobs of :class:`FeedbackCollector`.

    Attributes
    ----------
    buffer_capacity:
        Bound of the experience buffer (FIFO eviction beyond it).
    queue_depth:
        Bound of the collector's pending-work queue; submissions beyond
        it are dropped (counted) instead of blocking the request path.
    max_intermediate_rows:
        Execution bound for served orders *and* the optimal-order
        oracle — a runaway order is rejected (reason-counted), never
        executed to completion.
    with_optimal_order:
        Derive the ECQO optimal-order label for collected experience
        (needed to fine-tune JoinSel; CardEst/CostEst train without it).
    max_optimal_tables:
        Skip the optimal-order derivation above this table count.
    rejected_retry_s:
        How long a rejected signature is remembered before its query may
        be executed again.  Keeps a hot pathological query from
        saturating the worker, while a later regime change (a hot-swap
        now serving an executable order) gets retried after the window.
    """

    buffer_capacity: int = 256
    queue_depth: int = 256
    max_intermediate_rows: int | None = 2_000_000
    with_optimal_order: bool = True
    max_optimal_tables: int = 8
    rejected_retry_s: float = 60.0

    def __post_init__(self):
        if self.buffer_capacity < 1:
            raise ValueError(f"buffer_capacity must be >= 1, got {self.buffer_capacity}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.rejected_retry_s < 0:
            raise ValueError(f"rejected_retry_s must be >= 0, got {self.rejected_retry_s}")


class FeedbackCollector:
    """Executes served orders in the background; fills the buffer.

    Use as a context manager (or :meth:`start` / :meth:`stop`)::

        collector = FeedbackCollector(db)
        with collector:
            service.attach_feedback(collector)
            ...

    ``submit`` is safe from any thread and never blocks on engine work.
    """

    def __init__(self, db, config: FeedbackConfig | None = None, telemetry=None):
        self.config = config or FeedbackConfig()
        self.db = db
        # Optional repro.obs.Telemetry; inherited from the service on
        # attach_feedback when not set here.  Labeling spans land on the
        # trace of the request that produced the experience.
        self.telemetry = telemetry
        self.labeler = QueryLabeler(
            db,
            max_optimal_tables=self.config.max_optimal_tables,
            max_intermediate_rows=self.config.max_intermediate_rows,
        )
        self.buffer = ExperienceBuffer(self.config.buffer_capacity)
        self._queue: "deque[tuple[tuple, LabeledQuery, list[str], int]]" = deque()  # guarded-by: _mutex
        self._pending: set[tuple] = set()   # guarded-by: _mutex — signatures queued or in flight
        # Signatures whose execution was recently rejected (over limit,
        # disconnected, error) mapped to the rejection time: a hot
        # pathological query must not make the worker re-execute a
        # doomed order on every request.  Entries expire after
        # ``rejected_retry_s`` (a later swap may serve an executable
        # order for the same query) and the map is FIFO-bounded so it
        # can never grow past the recent-rejection working set.
        self._recent_rejected: "OrderedDict[tuple, float]" = OrderedDict()  # guarded-by: _mutex
        self._recent_rejected_bound = max(self.config.buffer_capacity, 64)
        self._mutex = threading.Lock()
        self._wakeup = threading.Condition(self._mutex)
        self._idle = threading.Condition(self._mutex)
        self._busy = False  # guarded-by: _mutex
        self._running = False  # guarded-by: _mutex
        self._worker: threading.Thread | None = None  # guarded-by: _mutex
        # Counters (all under _mutex except buffer's own).
        self.submitted = 0  # guarded-by: _mutex
        self.dropped_full = 0  # guarded-by: _mutex
        self.rejected_by_reason: dict[str, int] = {}  # guarded-by: _mutex

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "FeedbackCollector":
        with self._mutex:
            if self._running:
                raise RuntimeError("feedback collector already running")
            self._running = True
            self._worker = threading.Thread(
                target=self._run, name=f"feedback-{self.db.name}", daemon=True
            )
            self._worker.start()
        return self

    def stop(self) -> None:
        """Stop accepting work, finish what is queued, join the thread."""
        with self._wakeup:
            if not self._running:
                return
            self._running = False
            self._wakeup.notify_all()
            worker = self._worker
        worker.join()
        with self._mutex:
            self._worker = None

    def __enter__(self) -> "FeedbackCollector":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission path (called from request threads) -----------------
    def submit(self, labeled: LabeledQuery, order: list[str], trace_id: int = 0) -> bool:
        """Offer a served order for collection; never blocks on execution.

        Returns True when the pair was queued, False when it was deduped
        (signature already buffered or already queued), shed (queue
        full), or the collector is stopped.  ``trace_id`` (when the
        submitting request was traced) links the eventual labeling span
        back to the request's trace.
        """
        signature = query_signature(labeled.query)
        if self.buffer.seen(signature):
            self.buffer.note_dedup()
            return False
        with self._wakeup:
            self.submitted += 1
            if not self._running:
                return False
            if signature in self._pending or self._rejected_recently_locked(signature):
                # buffer._lock is a leaf lock: safe to take under _mutex.
                self.buffer.note_dedup()
                return False
            if len(self._queue) >= self.config.queue_depth:
                self.dropped_full += 1
                return False
            self._pending.add(signature)
            self._queue.append((signature, labeled, order, trace_id))
            self._wakeup.notify_all()
        return True

    # -- worker --------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and self._running:
                    self._wakeup.wait()
                if not self._queue:
                    return  # stopped and fully drained
                signature, labeled, order, trace_id = self._queue.popleft()
                self._busy = True
            try:
                self._collect(signature, labeled, order, trace_id)
            except BaseException:
                # Never die: a dead collector would silently stop all
                # experience flow.  The failed pair is dropped (counted).
                with self._mutex:
                    reason = "error"
                    self.rejected_by_reason[reason] = self.rejected_by_reason.get(reason, 0) + 1
                    self._note_rejected_locked(signature)
            finally:
                with self._idle:
                    self._pending.discard(signature)
                    self._busy = False
                    self._idle.notify_all()

    def _note_rejected_locked(self, signature: tuple) -> None:
        self._recent_rejected[signature] = time.monotonic()
        self._recent_rejected.move_to_end(signature)
        while len(self._recent_rejected) > self._recent_rejected_bound:
            self._recent_rejected.popitem(last=False)

    def _rejected_recently_locked(self, signature: tuple) -> bool:
        rejected_at = self._recent_rejected.get(signature)
        if rejected_at is None:
            return False
        if time.monotonic() - rejected_at >= self.config.rejected_retry_s:
            del self._recent_rejected[signature]  # window over: retry
            return False
        return True

    def _collect(
        self, signature: tuple, labeled: LabeledQuery, order: list[str], trace_id: int = 0
    ) -> None:
        with maybe_span(self.telemetry, trace_id, "feedback.label") as span:
            item = self.labeler.label_with_order(
                labeled.query, order, with_optimal_order=self.config.with_optimal_order
            )
            span.set("collected", item is not None)
        if item is None:
            reason = self.labeler.last_skip_reason or "unknown"
            with self._mutex:
                self.rejected_by_reason[reason] = self.rejected_by_reason.get(reason, 0) + 1
                self._note_rejected_locked(signature)
            return
        item.extras["source"] = "feedback"
        item.extras["initial_plan_ms"] = labeled.total_time_ms
        self.buffer.add(signature, item)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the work queue is empty and the worker idle."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._queue or self._busy:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    # -- reporting -----------------------------------------------------
    def counters(self) -> dict:
        """The adaptation fields this collector contributes to reports."""
        with self._mutex:
            rejected = sum(self.rejected_by_reason.values()) + self.dropped_full
            return {
                "feedback_collected": self.buffer.added,
                "feedback_deduped": self.buffer.deduped,
                "feedback_rejected": rejected,
            }

    def rejection_reasons(self) -> dict[str, int]:
        with self._mutex:
            reasons = dict(self.rejected_by_reason)
            if self.dropped_full:
                reasons["queue_full"] = self.dropped_full
        return reasons
