"""Thread-safe bounded LRU cache of served join orders.

Distinct from :class:`repro.core.FeatureCache` (which memoizes
(F)-module encodings *inside* the model and is only touched under the
model's inference lock): this cache stores finished *results* — join
orders — and sits in front of the queue, so it is read and written
concurrently by every client thread plus the drain loop.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["PlanCache"]


class PlanCache:
    """Bounded LRU of ``key -> join order`` with hit/miss accounting.

    Keys are the structural request signatures built by
    :meth:`OptimizerService.request_key`; values are join orders
    (lists of table names).  ``maxsize == 0`` disables the cache (every
    ``get`` misses, ``put`` is a no-op).  Stored orders are copied on
    the way in and out so callers can never mutate a cached entry.
    """

    def __init__(self, maxsize: int):
        if maxsize < 0:
            raise ValueError(f"cache size must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, list[str]]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def get(self, key: tuple, count_miss: bool = True) -> "list[str] | None":
        """Look up a key; ``count_miss=False`` for the drain loop's
        recheck of keys that already missed on the request fast path
        (otherwise every served query would count two misses)."""
        if not self.enabled:
            return None  # off, not thrashing: counters stay untouched
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                if count_miss:
                    self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return list(entry)

    def put(self, key: tuple, order: list[str]) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = list(order)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries
