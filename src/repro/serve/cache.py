"""Thread-safe bounded LRU cache of served join orders.

Distinct from :class:`repro.core.FeatureCache` (which memoizes
(F)-module encodings *inside* the model and is only touched under the
model's inference lock): this cache stores finished *results* — join
orders — and sits in front of the queue, so it is read and written
concurrently by every client thread plus the drain loop.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "PlanCache"]


@dataclass(frozen=True)
class CacheStats:
    """One atomic reading of a :class:`PlanCache`'s counters and size.

    All three fields are captured under the cache's lock in a single
    critical section, so ``hits + misses`` is consistent with itself —
    unlike reading ``cache.hits`` / ``cache.misses`` / ``len(cache)``
    as three separate locked operations, which can interleave with a
    concurrent ``get``.
    """

    hits: int
    misses: int
    size: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """Bounded LRU of ``key -> join order`` with hit/miss accounting.

    Keys are the structural request signatures built by
    :meth:`OptimizerService.request_key`; values are join orders
    (lists of table names).  ``maxsize == 0`` disables the cache (every
    ``get`` misses, ``put`` is a no-op).  Stored orders are copied on
    the way in and out so callers can never mutate a cached entry.
    """

    def __init__(self, maxsize: int):
        if maxsize < 0:
            raise ValueError(f"cache size must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, list[str]]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def get(self, key: tuple, count_miss: bool = True) -> "list[str] | None":
        """Look up a key; ``count_miss=False`` for the drain loop's
        recheck of keys that already missed on the request fast path
        (otherwise every served query would count two misses)."""
        if not self.enabled:
            return None  # off, not thrashing: counters stay untouched
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                if count_miss:
                    self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return list(entry)

    def put(self, key: tuple, order: list[str]) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = list(order)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def stats(self) -> CacheStats:
        """Atomic snapshot of (hits, misses, size) in one critical
        section — the only race-free way to compute a hit rate while
        the cache is live."""
        with self._lock:
            return CacheStats(hits=self.hits, misses=self.misses, size=len(self._entries))

    def clear(self, reset_stats: bool = False) -> CacheStats:
        """Drop every entry; with ``reset_stats`` also zero the hit/miss
        counters in the same critical section.

        Returns the pre-clear :class:`CacheStats`, so a caller starting a
        new accounting epoch (e.g. ``swap_model`` invalidating the cache)
        can retire the old epoch's numbers instead of losing them or —
        worse — blending pre-swap hits into the post-swap hit rate.
        """
        with self._lock:
            retired = CacheStats(hits=self.hits, misses=self.misses, size=len(self._entries))
            self._entries.clear()
            if reset_stats:
                self.hits = 0
                self.misses = 0
            return retired

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries
