"""Tree-to-seq and seq-to-tree conversion of query plans (Section 4.1).

Two codecs live here:

1. **Serialization for the transformer input (F.iii)**: a plan tree is
   flattened to its preorder node sequence, and every node carries a
   :class:`repro.nn.TreePosition` (the root-to-node branch path) whose
   tree positional encoding is added to the node embedding — the
   "transformers' tree positional embedding techniques" of Shiv & Quirk
   that the paper cites.

2. **Decoding embeddings (Figures 3-4)**: the plan tree is transformed
   into a complete binary tree; each base table receives a 0/1 vector
   over the complete tree's leaf slots marking the leaves labelled with
   that table.  The paper's examples: for the left-deep tree
   ``j(j(j(T1,T2),T3),T4)`` the embeddings are ``[1,0,0,0,0,0,0,0]``,
   ``[0,1,0,0,0,0,0,0]``, ``[0,0,1,1,0,0,0,0]``, ``[0,0,0,0,1,1,1,1]``;
   for the bushy tree ``j(j(T1,T2),j(T3,T4))`` they are the four unit
   vectors.  ``tree_from_embeddings`` reverts the (unique) tree.
"""

from __future__ import annotations

import numpy as np

from ..engine.plan import PlanNode
from ..nn.positional import TreePosition

__all__ = [
    "serialize_plan",
    "plan_signature",
    "query_signature",
    "decoding_embeddings",
    "tree_from_embeddings",
    "JoinTree",
    "join_tree_from_order",
    "join_tree_from_plan",
]


class JoinTree:
    """A bare join-structure tree: leaves are table names.

    Lighter than :class:`PlanNode` — no operators or predicates — used
    by the tree codec, which only cares about join structure.
    """

    __slots__ = ("table", "left", "right")

    def __init__(self, table: str | None = None, left: "JoinTree | None" = None, right: "JoinTree | None" = None):
        if (table is None) == (left is None or right is None):
            raise ValueError("JoinTree is either a leaf (table) or an inner node (left+right)")
        self.table = table
        self.left = left
        self.right = right

    @property
    def is_leaf(self) -> bool:
        return self.table is not None

    def leaves(self) -> list[str]:
        if self.is_leaf:
            return [self.table]
        return self.left.leaves() + self.right.leaves()

    def depth(self) -> int:
        """Edge-depth: a leaf has depth 0."""
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def is_left_deep(self) -> bool:
        if self.is_leaf:
            return True
        return self.right.is_leaf and self.left.is_left_deep()

    def __eq__(self, other) -> bool:
        if not isinstance(other, JoinTree):
            return NotImplemented
        if self.is_leaf != other.is_leaf:
            return False
        if self.is_leaf:
            return self.table == other.table
        return self.left == other.left and self.right == other.right

    def __repr__(self) -> str:
        if self.is_leaf:
            return self.table
        return f"j({self.left!r}, {self.right!r})"


def join_tree_from_order(order: list[str]) -> JoinTree:
    """The left-deep :class:`JoinTree` for a join order."""
    if not order:
        raise ValueError("join order is empty")
    tree = JoinTree(table=order[0])
    for table in order[1:]:
        tree = JoinTree(left=tree, right=JoinTree(table=table))
    return tree


def join_tree_from_plan(plan: PlanNode) -> JoinTree:
    """Strip a :class:`PlanNode` down to its join structure."""
    if plan.is_scan:
        return JoinTree(table=plan.table)
    return JoinTree(left=join_tree_from_plan(plan.left), right=join_tree_from_plan(plan.right))


# ----------------------------------------------------------------------
# 1. Serialization with tree positions (F.iii)
# ----------------------------------------------------------------------

def serialize_plan(plan: PlanNode) -> tuple[list[PlanNode], list[TreePosition]]:
    """Flatten a plan to (preorder nodes, their tree positions)."""
    nodes: list[PlanNode] = []
    positions: list[TreePosition] = []

    def visit(node: PlanNode, position: TreePosition) -> None:
        nodes.append(node)
        positions.append(position)
        if node.is_join:
            visit(node.left, position.left())
            visit(node.right, position.right())

    visit(plan, TreePosition())
    return nodes, positions


def plan_signature(plan: PlanNode) -> tuple:
    """Structural signature of a plan tree (hashable, order-sensitive).

    Two plans share a signature iff they are node-for-node identical in
    shape, operators, scanned tables, filters and join predicates — the
    exact inputs the (F) module's node features are derived from.  Used
    as the model's feature-cache key (DESIGN.md section 3) so that
    structurally equivalent plans (e.g. the cost-rerank's probe plans)
    share one cached encoding, regardless of object identity.
    """
    if plan.is_scan:
        filter_sig = None
        if plan.filter is not None:
            filter_sig = (plan.filter.table, tuple(str(p) for p in plan.filter.predicates))
        return (
            "scan",
            plan.table,
            plan.scan_op.value if plan.scan_op else None,
            filter_sig,
        )
    return (
        "join",
        plan.join_op.value if plan.join_op else None,
        tuple(str(p) for p in plan.join_predicates),
        plan_signature(plan.left),
        plan_signature(plan.right),
    )


def query_signature(query) -> tuple:
    """Structural signature of a :class:`repro.sql.Query` (hashable).

    Two queries share a signature iff they touch the same tables *in the
    same canonical order* (position -> table correspondence matters to
    the join-order decoder), carry the same set of equi-join predicates,
    and filter each table identically.  Join predicates and filters are
    order-insensitive (they describe sets); the table list is not.

    This is the query half of the serving layer's plan-cache key
    (DESIGN.md "Serving architecture"): requests for structurally
    identical queries coalesce onto one cached join order.
    """
    filters = []
    for table, conjunction in query.filters.items():
        if len(conjunction):
            filters.append((table, tuple(sorted(str(p) for p in conjunction.predicates))))
    return (
        "query",
        tuple(query.tables),
        tuple(sorted(str(j) for j in query.joins)),
        tuple(sorted(filters)),
    )


# ----------------------------------------------------------------------
# 2. Decoding embeddings (Figures 3-4)
# ----------------------------------------------------------------------

def decoding_embeddings(tree: JoinTree, width: int | None = None) -> dict[str, np.ndarray]:
    """Per-table leaf-slot indicator vectors of the completed binary tree.

    The tree is completed to its *natural* width ``2 ** depth``, then the
    indicator vectors are zero-padded to ``width``.  ``width`` defaults
    to ``2 ** (m - 1)`` for an ``m``-leaf tree — the width of the deepest
    (left-deep) shape, which is the fixed dimension the paper uses (8 for
    4-table plans).  This reproduces both of the paper's Figure 3/4
    examples: the left-deep tree fills all 8 slots, the bushy tree fills
    the first 4 and pads the rest.
    """
    depth = tree.depth()
    natural = 2 ** depth if depth > 0 else 1
    num_leaves = len(tree.leaves())
    default_width = 2 ** (num_leaves - 1) if num_leaves > 1 else 1
    width = width if width is not None else max(default_width, natural)
    if width < natural or width & (width - 1):
        raise ValueError(f"width {width} must be a power of two >= {natural}")

    embeddings = {table: np.zeros(width, dtype=np.float64) for table in tree.leaves()}

    def paint(node: JoinTree, offset: int, span: int) -> None:
        if node.is_leaf:
            embeddings[node.table][offset: offset + span] = 1.0
            return
        half = span // 2
        if half == 0:
            raise ValueError("tree deeper than the embedding width allows")
        paint(node.left, offset, half)
        paint(node.right, offset + half, half)

    paint(tree, 0, natural)
    return embeddings


def tree_from_embeddings(embeddings: dict[str, np.ndarray]) -> JoinTree:
    """Revert the unique tree from its decoding embeddings (Section 4.1).

    Leaf slots are labelled by their table; recursively, two sibling
    regions with the same single label merge into a leaf, and regions
    with different labels become a join node.  Zero padding beyond the
    tree's natural width is detected and ignored.
    """
    if not embeddings:
        raise ValueError("no embeddings given")
    tables = list(embeddings)
    width = len(next(iter(embeddings.values())))
    if any(len(v) != width for v in embeddings.values()):
        raise ValueError("embeddings have inconsistent widths")
    matrix = np.stack([np.asarray(embeddings[t], dtype=np.float64) for t in tables])
    slot_owner = np.full(width, -1, dtype=np.int64)
    for slot in range(width):
        owners = np.flatnonzero(matrix[:, slot] > 0.5)
        if len(owners) > 1:
            raise ValueError(f"leaf slot {slot} claimed by multiple tables")
        if len(owners) == 1:
            slot_owner[slot] = owners[0]

    claimed = int((slot_owner >= 0).sum())
    if claimed == 0:
        raise ValueError("no claimed leaf slots")
    if claimed & (claimed - 1):
        raise ValueError(f"claimed slot count {claimed} is not a power of two")
    if (slot_owner[:claimed] < 0).any() or (slot_owner[claimed:] >= 0).any():
        raise ValueError("claimed leaf slots are not a contiguous prefix")

    def build(offset: int, span: int) -> JoinTree:
        owners = set(slot_owner[offset: offset + span].tolist())
        if len(owners) == 1:
            return JoinTree(table=tables[owners.pop()])
        half = span // 2
        return JoinTree(left=build(offset, half), right=build(offset + half, half))

    return build(0, claimed)
