"""(T.i / T.ii) Task-specific heads ``M_CardEst`` and ``M_CostEst``.

Two-layer MLPs (as in the paper) mapping each shared representation
vector S_i to the predicted log-cardinality / log-cost of the sub-plan
rooted at node N_i.  Predictions are in natural-log space; the q-error
loss (L.i / L.ii) is the absolute log difference.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.spec import shape_spec
from .config import ModelConfig

__all__ = ["EstimationHead"]


class EstimationHead(nn.Module):
    """An MLP head predicting a per-node log-scale quantity."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed)
        self.mlp = nn.MLP([config.d_model, config.d_model, 1], rng=rng)

    @shape_spec(inputs={"shared": "(B, L, d_model)"},
                out="(B, L)",
                params=("mlp",))
    def forward(self, shared: nn.Tensor) -> nn.Tensor:
        """(B, L, d_model) -> (B, L) predicted log values."""
        out = self.mlp(shared)
        batch, length, _ = out.shape
        return out.reshape(batch, length)
