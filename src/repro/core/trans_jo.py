"""(T.iii) ``Trans_JO``: the join-order transformer decoder.

Formulates JoinSel as seq2seq (Section 4.2): ``Trans_Share``'s outputs
for the query's single tables, (S_1..S_m), act as the encoder memory;
the decoder emits one table per timestamp.

Output parameterization — pointer attention.  The paper's single-DB
formulation outputs a multinoulli over the DB's n tables; a fixed-size
output head would tie the decoder to one DB's table vocabulary and break
the cross-DB transfer that MLA requires.  We therefore emit logits by
dot-product attention of the decoder state against the table
representations themselves (a pointer network): position i's logit is
``h_t · W S_i``.  Over a single DB this is equivalent (positions map
1:1 to tables); across DBs it is what "the task-specific module learns
how to use the shared representation" demands.  Recorded as a
documented design choice in DESIGN.md (section 1).

Decoding is batched: :meth:`TransJO.step_logits_batch` expands many
beam prefixes — potentially spanning several queries — in one decoder
forward (DESIGN.md section 2); :meth:`TransJO.step_logits` is the
single-prefix reference path the batched search is parity-tested
against.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.spec import shape_spec
from .config import ModelConfig

__all__ = ["TransJO"]


class TransJO(nn.Module):
    """Transformer decoder with pointer output over query tables."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator | None = None):
        super().__init__()
        self.config = config
        rng = rng or np.random.default_rng(config.seed)
        self.start_token = nn.Parameter(rng.normal(0.0, 0.1, size=(config.d_model,)))
        self.decoder = nn.TransformerDecoder(
            config.d_model,
            config.num_heads,
            config.decoder_layers,
            ff_dim=config.ff_dim,
            dropout=config.dropout,
            rng=rng,
        )
        self.pointer_proj = nn.Linear(config.d_model, config.d_model, bias=False, rng=rng)
        # Pointer-logit scale; same value every call computed, hoisted.
        self.logit_scale = 1.0 / np.sqrt(config.d_model)

    # ------------------------------------------------------------------
    @shape_spec(inputs={"memory": "(1, m, d_model)"},
                out="(m,)",
                params=("start_token", "decoder", "pointer_proj"))
    def step_logits(
        self,
        memory: nn.Tensor,
        prefix_positions: list[int],
        kv_cache: "nn.KVCache | None" = None,
    ) -> nn.Tensor:
        """Logits over the m tables for the next timestamp.

        ``memory`` is (1, m, d): the single-table representations.
        ``prefix_positions`` are the positions already emitted; the
        decoder input is [start, S_{p1}, ..., S_{pt}].  ``kv_cache``
        (fast path only) amortizes the memory's cross-attention K/V and
        pointer-key projections across the steps of one beam search.
        """
        if nn.no_tape_active():
            memory_kv, pointer_keys = self.infer_memory_kv(memory, kv_cache)
            return nn.Tensor._wrap(
                self.infer_step_logits(
                    memory.data, prefix_positions, memory_kv=memory_kv, pointer_keys=pointer_keys
                )
            )
        inputs = [self.start_token.reshape(1, 1, -1)]
        for position in prefix_positions:
            inputs.append(memory[:, position: position + 1, :])
        x = nn.functional.concat(inputs, axis=1) if len(inputs) > 1 else inputs[0]
        hidden = self.decoder(x, memory)          # (1, t+1, d)
        last = hidden[:, -1, :]                   # (1, d)
        keys = self.pointer_proj(memory)          # (1, m, d)
        logits = keys.matmul(last.reshape(-1, 1)).reshape(-1) * self.logit_scale  # (m,)
        return logits

    @shape_spec(inputs={"memory": "(B, m, d_model)"},
                out="(B, m)",
                params=("start_token", "decoder", "pointer_proj"))
    def step_logits_batch(
        self,
        memory: nn.Tensor,
        prefixes: list[list[int]],
        memory_padding_mask: np.ndarray | None = None,
    ) -> nn.Tensor:
        """Next-timestamp logits for a whole batch of prefixes at once.

        ``memory`` is (B, m, d): one row of single-table representations
        per prefix (rows may repeat when several beams share one query).
        ``prefixes`` may be ragged; shorter rows are padded (the causal
        self-attention mask keeps pad slots from influencing the read
        position) and each row's logits are taken at its own last real
        timestamp.  ``memory_padding_mask`` is (B, m) boolean, True at
        padded table slots when queries of different table counts share
        the batch; those slots are excluded from cross-attention and
        their pointer logits forced to -1e9.

        Returns (B, m) pointer logits — one decoder forward for what
        :meth:`step_logits` would need B calls to produce.
        """
        batch, m, _ = memory.shape
        if len(prefixes) != batch:
            raise ValueError(f"{len(prefixes)} prefixes for a memory batch of {batch}")
        if nn.no_tape_active():
            return nn.Tensor._wrap(
                self.infer_step_logits_batch(
                    memory.data, prefixes, memory_padding_mask=memory_padding_mask
                )
            )
        indices, lengths = nn.functional.pad_index_sequences(prefixes)
        rows = np.arange(batch)
        start = nn.functional.repeat_batch(self.start_token.reshape(1, 1, -1), batch)
        if indices.shape[1]:
            gathered = memory[rows[:, None], indices]  # (B, Tmax, d)
            x = nn.functional.concat([start, gathered], axis=1)
        else:
            x = start
        hidden = self.decoder(x, memory, memory_padding_mask=memory_padding_mask)
        last = hidden[rows, lengths]              # (B, d): each row's last real step
        keys = self.pointer_proj(memory)          # (B, m, d)
        logits = keys.matmul(last.reshape(batch, -1, 1)).reshape(batch, m) * self.logit_scale
        if memory_padding_mask is not None:
            logits = nn.functional.masked_fill(logits, memory_padding_mask, -1e9)
        return logits

    # ------------------------------------------------------------------
    # No-tape fast path.  The beam driver calls these directly (under
    # ``nn.no_grad``) so it can thread a per-decode KV cache and a
    # session scratch arena through every step.
    # ------------------------------------------------------------------
    def infer_memory_kv(self, memory, kv_cache: "nn.KVCache | None" = None):
        """Per-decode projections of one (1, m, d) encoder memory.

        Returns ``(memory_kv, pointer_keys)``: the per-layer
        cross-attention K/V pairs plus the pointer keys ``W S_i`` — all
        the projections of the memory that every decoder step would
        otherwise recompute.  With ``kv_cache`` (a :class:`nn.KVCache`
        bound to exactly this memory) the projection runs once per
        decode; a cache bound to a different memory is a bug upstream
        and is rejected loudly.
        """
        def project():
            mem = memory.data if isinstance(memory, nn.Tensor) else np.asarray(memory)
            return (
                self.decoder.infer_project_memory_kv(mem),
                self.pointer_proj.infer_forward(mem),
            )

        if kv_cache is None:
            return project()
        if not kv_cache.bound_to(memory):
            raise ValueError("KV cache is bound to a different encoder memory than the one being decoded")
        return kv_cache.get_or_project("transjo.memory_kv", project)

    @staticmethod
    def concat_memory_kv(per_query, counts: list[int]):
        """Assemble batched projections from per-query cached ones.

        ``per_query[i]`` is :meth:`infer_memory_kv` output for query i,
        ``counts[i]`` its number of active beams.  Each query's (1, ...)
        projections are broadcast to its beam count and concatenated —
        bit-identical to projecting the batched memory directly, because
        numpy's batched matmul computes each row as the same 2D product
        the single-row projection performs.
        """
        # ``concatenate`` over stride-0 broadcast views can emit a
        # non-C-contiguous result; force C order so the assembled arrays
        # have exactly the strides of directly-projected ones (BLAS
        # rounding depends on operand layout, and parity is bitwise).
        def broadcast_concat(arrays):
            return np.ascontiguousarray(
                np.concatenate(
                    [np.broadcast_to(a, (n,) + a.shape[1:]) for a, n in zip(arrays, counts)],
                    axis=0,
                )
            )

        num_layers = len(per_query[0][0])
        memory_kv = [
            (
                broadcast_concat([kv[layer][0] for kv, _ in per_query]),
                broadcast_concat([kv[layer][1] for kv, _ in per_query]),
            )
            for layer in range(num_layers)
        ]
        pointer_keys = broadcast_concat([keys for _, keys in per_query])
        return memory_kv, pointer_keys

    @shape_spec(inputs={"memory": "(1, m, d_model)"},
                out="(m,)",
                params=("start_token", "decoder", "pointer_proj"))
    def infer_step_logits(
        self,
        memory: np.ndarray,
        prefix_positions: list[int],
        memory_kv=None,
        pointer_keys: np.ndarray | None = None,
        scratch=None,
    ) -> np.ndarray:
        """No-tape mirror of :meth:`step_logits` on raw ndarrays."""
        inputs = [self.start_token.data.reshape(1, 1, -1)]
        for position in prefix_positions:
            inputs.append(memory[:, position: position + 1, :])
        x = np.concatenate(inputs, axis=1) if len(inputs) > 1 else inputs[0]
        hidden = self.decoder.infer_forward(x, memory, memory_kv=memory_kv, scratch=scratch, tag="jo")
        last = hidden[:, -1, :]
        keys = pointer_keys if pointer_keys is not None else self.pointer_proj.infer_forward(memory)
        return np.matmul(keys, last.reshape(-1, 1)).reshape(-1) * self.logit_scale

    @shape_spec(inputs={"memory": "(B, m, d_model)"},
                out="(B, m)",
                params=("start_token", "decoder", "pointer_proj"))
    def infer_step_logits_batch(
        self,
        memory: np.ndarray,
        prefixes,
        memory_padding_mask: np.ndarray | None = None,
        memory_kv=None,
        pointer_keys: np.ndarray | None = None,
        scratch=None,
        start_block: np.ndarray | None = None,
    ) -> np.ndarray:
        """No-tape mirror of :meth:`step_logits_batch`.

        ``memory_kv``/``pointer_keys`` take batched projections (see
        :meth:`concat_memory_kv`); when omitted they are projected from
        ``memory`` in place, which is still tape-free but repays the
        per-step projection cost the KV cache exists to remove.

        ``prefixes`` may be the usual ragged list of lists, or — from the
        lockstep beam driver, where every row has the same length — a
        dense ``(B, t)`` int64 matrix, which skips the pad/repack (the
        dense matrix is exactly what ``pad_index_sequences`` would
        build).  ``start_block`` optionally supplies the broadcast
        start-token block, which depends only on the batch size and so
        can be reused across the steps of one decode.
        """
        batch, m, _ = memory.shape
        if isinstance(prefixes, np.ndarray):
            indices = prefixes
            lengths = np.full(batch, indices.shape[1], dtype=np.int64)
        else:
            indices, lengths = nn.functional.pad_index_sequences(prefixes)
        rows = np.arange(batch)
        start = start_block
        if start is None:
            start = np.ascontiguousarray(
                np.broadcast_to(self.start_token.data.reshape(1, 1, -1), (batch, 1, self.config.d_model))
            )
        if indices.shape[1]:
            gathered = memory[rows[:, None], indices]  # (B, Tmax, d)
            x = np.concatenate([start, gathered], axis=1)
        else:
            x = start
        hidden = self.decoder.infer_forward(
            x,
            memory,
            memory_padding_mask=memory_padding_mask,
            memory_kv=memory_kv,
            scratch=scratch,
            tag="jo",
        )
        last = hidden[rows, lengths]              # (B, d): each row's last real step
        keys = pointer_keys if pointer_keys is not None else self.pointer_proj.infer_forward(memory)
        logits = np.matmul(keys, last.reshape(batch, -1, 1)).reshape(batch, m) * self.logit_scale
        if memory_padding_mask is not None:
            logits = nn.kernels.masked_fill(logits, memory_padding_mask, -1e9)
        return logits

    @shape_spec(inputs={"memory": "(1, m, d_model)"},
                out="(m, m)",
                params=("start_token", "decoder", "pointer_proj"))
    def forward(self, memory: nn.Tensor, target_positions: list[int]) -> nn.Tensor:
        """Teacher-forced logits for a whole order, shape (m, m).

        Row t holds the logits for timestamp t given the *true* prefix
        (teacher forcing, Section 4.2).
        """
        m = memory.shape[1]
        inputs = [self.start_token.reshape(1, 1, -1)]
        for position in target_positions[:-1]:
            inputs.append(memory[:, position: position + 1, :])
        x = nn.functional.concat(inputs, axis=1) if len(inputs) > 1 else inputs[0]
        hidden = self.decoder(x, memory)          # (1, m, d) causal
        keys = self.pointer_proj(memory)          # (1, m, d)
        logits = hidden.matmul(keys.swapaxes(-1, -2)) * self.logit_scale  # (1, m, m)
        return logits.reshape(len(target_positions), m)
