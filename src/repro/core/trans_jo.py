"""(T.iii) ``Trans_JO``: the join-order transformer decoder.

Formulates JoinSel as seq2seq (Section 4.2): ``Trans_Share``'s outputs
for the query's single tables, (S_1..S_m), act as the encoder memory;
the decoder emits one table per timestamp.

Output parameterization — pointer attention.  The paper's single-DB
formulation outputs a multinoulli over the DB's n tables; a fixed-size
output head would tie the decoder to one DB's table vocabulary and break
the cross-DB transfer that MLA requires.  We therefore emit logits by
dot-product attention of the decoder state against the table
representations themselves (a pointer network): position i's logit is
``h_t · W S_i``.  Over a single DB this is equivalent (positions map
1:1 to tables); across DBs it is what "the task-specific module learns
how to use the shared representation" demands.  Recorded as a
documented design choice in DESIGN.md (section 1).

Decoding is batched: :meth:`TransJO.step_logits_batch` expands many
beam prefixes — potentially spanning several queries — in one decoder
forward (DESIGN.md section 2); :meth:`TransJO.step_logits` is the
single-prefix reference path the batched search is parity-tested
against.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .config import ModelConfig

__all__ = ["TransJO"]


class TransJO(nn.Module):
    """Transformer decoder with pointer output over query tables."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator | None = None):
        super().__init__()
        self.config = config
        rng = rng or np.random.default_rng(config.seed)
        self.start_token = nn.Parameter(rng.normal(0.0, 0.1, size=(config.d_model,)))
        self.decoder = nn.TransformerDecoder(
            config.d_model,
            config.num_heads,
            config.decoder_layers,
            ff_dim=config.ff_dim,
            dropout=config.dropout,
            rng=rng,
        )
        self.pointer_proj = nn.Linear(config.d_model, config.d_model, bias=False, rng=rng)

    # ------------------------------------------------------------------
    def step_logits(self, memory: nn.Tensor, prefix_positions: list[int]) -> nn.Tensor:
        """Logits over the m tables for the next timestamp.

        ``memory`` is (1, m, d): the single-table representations.
        ``prefix_positions`` are the positions already emitted; the
        decoder input is [start, S_{p1}, ..., S_{pt}].
        """
        inputs = [self.start_token.reshape(1, 1, -1)]
        for position in prefix_positions:
            inputs.append(memory[:, position: position + 1, :])
        x = nn.functional.concat(inputs, axis=1) if len(inputs) > 1 else inputs[0]
        hidden = self.decoder(x, memory)          # (1, t+1, d)
        last = hidden[:, -1, :]                   # (1, d)
        keys = self.pointer_proj(memory)          # (1, m, d)
        scale = 1.0 / np.sqrt(self.config.d_model)
        logits = keys.matmul(last.reshape(-1, 1)).reshape(-1) * scale  # (m,)
        return logits

    def step_logits_batch(
        self,
        memory: nn.Tensor,
        prefixes: list[list[int]],
        memory_padding_mask: np.ndarray | None = None,
    ) -> nn.Tensor:
        """Next-timestamp logits for a whole batch of prefixes at once.

        ``memory`` is (B, m, d): one row of single-table representations
        per prefix (rows may repeat when several beams share one query).
        ``prefixes`` may be ragged; shorter rows are padded (the causal
        self-attention mask keeps pad slots from influencing the read
        position) and each row's logits are taken at its own last real
        timestamp.  ``memory_padding_mask`` is (B, m) boolean, True at
        padded table slots when queries of different table counts share
        the batch; those slots are excluded from cross-attention and
        their pointer logits forced to -1e9.

        Returns (B, m) pointer logits — one decoder forward for what
        :meth:`step_logits` would need B calls to produce.
        """
        batch, m, _ = memory.shape
        if len(prefixes) != batch:
            raise ValueError(f"{len(prefixes)} prefixes for a memory batch of {batch}")
        indices, lengths = nn.functional.pad_index_sequences(prefixes)
        rows = np.arange(batch)
        start = nn.functional.repeat_batch(self.start_token.reshape(1, 1, -1), batch)
        if indices.shape[1]:
            gathered = memory[rows[:, None], indices]  # (B, Tmax, d)
            x = nn.functional.concat([start, gathered], axis=1)
        else:
            x = start
        hidden = self.decoder(x, memory, memory_padding_mask=memory_padding_mask)
        last = hidden[rows, lengths]              # (B, d): each row's last real step
        keys = self.pointer_proj(memory)          # (B, m, d)
        scale = 1.0 / np.sqrt(self.config.d_model)
        logits = keys.matmul(last.reshape(batch, -1, 1)).reshape(batch, m) * scale
        if memory_padding_mask is not None:
            logits = nn.functional.masked_fill(logits, memory_padding_mask, -1e9)
        return logits

    def forward(self, memory: nn.Tensor, target_positions: list[int]) -> nn.Tensor:
        """Teacher-forced logits for a whole order, shape (m, m).

        Row t holds the logits for timestamp t given the *true* prefix
        (teacher forcing, Section 4.2).
        """
        m = memory.shape[1]
        inputs = [self.start_token.reshape(1, 1, -1)]
        for position in target_positions[:-1]:
            inputs.append(memory[:, position: position + 1, :])
        x = nn.functional.concat(inputs, axis=1) if len(inputs) > 1 else inputs[0]
        hidden = self.decoder(x, memory)          # (1, m, d) causal
        keys = self.pointer_proj(memory)          # (1, m, d)
        scale = 1.0 / np.sqrt(self.config.d_model)
        logits = hidden.matmul(keys.swapaxes(-1, -2)) * scale  # (1, m, m)
        return logits.reshape(len(target_positions), m)
