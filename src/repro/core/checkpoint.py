"""Full-model checkpoints: the MLA ship-and-serve format (Algorithm 1).

The paper's workflow has the cloud provider pre-train (S)+(T) and ship
them to users, who bolt on per-database (F) modules.  This module makes
that a first-class, durable artifact: one ``.npz`` file holding the
complete :class:`~repro.core.model.MTMLFQO` —

- the :class:`~repro.core.config.ModelConfig` (so load rebuilds the
  exact architecture, not whatever the caller's defaults happen to be);
- the (S)/(T) weights (``shared``, ``card_head``, ``cost_head``,
  ``trans_jo``);
- every attached :class:`~repro.core.encoders.DatabaseFeaturizer`'s
  weights plus its schema signature (tables + column vocabulary), so a
  restore onto the wrong database fails loudly instead of silently
  permuting column embeddings;
- the :attr:`MTMLFQO.version` counter, so serving-layer plan caches keep
  their invalidation semantics across a save/load hop;
- optionally an :class:`~repro.nn.optim.Adam` state dict (moments keyed
  by parameter *name*) for warm-start training.

Durability and integrity: files are written atomically (tmp +
``os.replace`` via :func:`repro.nn.serialize.atomic_savez`) and carry a
SHA-256 digest over all array payloads; a truncated, corrupted or
non-checkpoint file raises :class:`CheckpointError` on load.

Round trips are bit-exact: a loaded model produces byte-identical
join orders and cardinality/cost predictions (``tests/test_checkpoint.py``
asserts this property), which is what lets
:meth:`repro.serve.OptimizerService.swap_model` hot-swap checkpoints
into a live service.  The in-memory fast path of the same guarantee is
:meth:`MTMLFQO.clone_for_inference` — a state-dict round trip without
the disk hop — which :func:`replicate_model` fans out into the
read-only replica sets the serving layer's replica pool decodes on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import zipfile

import numpy as np

from ..nn.optim import Adam
from ..nn.serialize import atomic_savez, resolve_npz_path
from ..storage.catalog import Database
from .config import ModelConfig
from .encoders import DatabaseFeaturizer
from .model import MTMLFQO

__all__ = [
    "CheckpointError",
    "CHECKPOINT_FORMAT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "load_optimizer_state",
    "read_checkpoint_meta",
    "replicate_model",
]

CHECKPOINT_FORMAT_VERSION = 1

_META_KEY = "__checkpoint_meta__"
_MODEL_PREFIX = "model/"
_FEATURIZER_PREFIX = "featurizer/"
_OPTIM_PREFIX = "optim/"


class CheckpointError(RuntimeError):
    """The file is not a readable checkpoint (corrupt, truncated, wrong
    format version) or does not fit the load target (missing database,
    schema mismatch, no optimizer state)."""


def _digest(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over every array's name, dtype, shape and raw bytes."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def _encode_meta(meta: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8)


def save_checkpoint(model: MTMLFQO, path: str, optimizer: Adam | None = None) -> str:
    """Atomically persist a complete model (and optional Adam state).

    Taken under the model's inference lock, so the snapshot is
    consistent with respect to concurrent inference and ``mark_updated``
    bumps (training concurrently with a save is unsupported, as
    everywhere else in the repo — retrain offline).  Returns the
    resolved ``.npz`` path actually written.
    """
    arrays: dict[str, np.ndarray] = {}
    with model._infer_lock:
        for name, value in model.state_dict().items():
            arrays[_MODEL_PREFIX + name] = value
        featurizer_meta: dict[str, dict] = {}
        for db_name, featurizer in sorted(model.featurizers.items()):
            for name, value in featurizer.state_dict().items():
                arrays[f"{_FEATURIZER_PREFIX}{db_name}/{name}"] = value
            featurizer_meta[db_name] = {
                "schema": [list(entry) for entry in featurizer.schema_signature()],
            }
        meta = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "model_version": model.version,
            "config": dataclasses.asdict(model.config),
            "featurizers": featurizer_meta,
            "optimizer": None,
        }
        if optimizer is not None:
            state = optimizer.state_dict()
            for key in sorted(state["m"]):
                arrays[f"{_OPTIM_PREFIX}m/{key}"] = state["m"][key]
                arrays[f"{_OPTIM_PREFIX}v/{key}"] = state["v"][key]
            meta["optimizer"] = {
                "t": state["t"],
                "keys": sorted(state["m"]),
                "lr": optimizer.lr,
                "betas": [optimizer.beta1, optimizer.beta2],
                "eps": optimizer.eps,
                "weight_decay": optimizer.weight_decay,
            }
    meta["digest"] = _digest(arrays)
    arrays[_META_KEY] = _encode_meta(meta)
    return atomic_savez(path, arrays)


def replicate_model(model: MTMLFQO, count: int) -> list[MTMLFQO]:
    """``count`` independent read-only replicas of ``model``.

    Each replica is a :meth:`MTMLFQO.clone_for_inference` — bit-identical
    weights and ``version``, private inference lock and feature caches —
    so a pool of them decodes concurrently with zero lock contention.
    The state-dict clone is the cheap path; loading the same checkpoint
    ``count`` times via :func:`load_checkpoint` produces the same
    replica set at the cost of ``count`` disk reads.
    """
    if count < 0:
        raise ValueError(f"replica count must be >= 0, got {count}")
    return [model.clone_for_inference() for _ in range(count)]


def _read_archive(
    path: str, verify_digest: bool, meta_only: bool = False
) -> tuple[dict, dict[str, np.ndarray]]:
    """Load + validate a checkpoint archive into (meta, arrays).

    ``meta_only`` decompresses just the metadata member (npz members load
    lazily), so peeking at a large checkpoint stays cheap; ``arrays`` is
    empty and no digest can be checked in that mode.
    """
    path = resolve_npz_path(path)
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint at {path!r}")
    arrays: dict[str, np.ndarray] = {}
    try:
        # Own the file handle: np.load(path) opens the fd itself and
        # leaks it when the constructor raises before the NpzFile exists
        # (e.g. BadZipFile on a truncated file); the outer `with open`
        # closes it on every path.
        with open(path, "rb") as handle, np.load(handle) as archive:
            if _META_KEY not in archive.files:
                raise CheckpointError(f"{path!r} is not an MTMLF-QO checkpoint (no metadata)")
            meta_raw = archive[_META_KEY]
            if not meta_only:
                arrays = {key: archive[key] for key in archive.files if key != _META_KEY}
    except CheckpointError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, EOFError, KeyError) as error:
        raise CheckpointError(f"unreadable checkpoint {path!r}: {error}") from error
    try:
        meta = json.loads(bytes(meta_raw).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointError(f"corrupt checkpoint metadata in {path!r}: {error}") from error
    if meta.get("format_version") != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format version {meta.get('format_version')!r} "
            f"(this build reads version {CHECKPOINT_FORMAT_VERSION})"
        )
    if verify_digest and _digest(arrays) != meta.get("digest"):
        raise CheckpointError(f"checkpoint {path!r} failed its integrity check")
    return meta, arrays


def read_checkpoint_meta(path: str) -> dict:
    """The checkpoint's metadata (config, model version, databases, ...)
    without loading or verifying the weight arrays."""
    meta, _ = _read_archive(path, verify_digest=False, meta_only=True)
    return meta


def _databases_by_name(databases) -> dict[str, Database]:
    if databases is None:
        return {}
    if isinstance(databases, Database):
        databases = [databases]
    if isinstance(databases, dict):
        return dict(databases)
    return {db.name: db for db in databases}


def load_checkpoint(path: str, databases=None) -> MTMLFQO:
    """Rebuild the full model saved by :func:`save_checkpoint`.

    ``databases`` supplies the :class:`Database` handle for each saved
    featurizer (a single ``Database``, a list, or a ``{name: Database}``
    mapping) — table data and statistics are the database's own state,
    not model weights, so the caller provides them and the checkpoint
    verifies the schema signature matches before loading weights.

    The returned model is in eval mode, carries the saved
    ``model_version``, and is bit-identical to the saved one: same join
    orders, same cardinality/cost predictions.
    """
    meta, arrays = _read_archive(path, verify_digest=True)
    by_name = _databases_by_name(databases)
    saved_dbs = sorted(meta["featurizers"])
    missing = [name for name in saved_dbs if name not in by_name]
    if missing:
        raise CheckpointError(
            f"checkpoint has featurizers for databases {saved_dbs} but no "
            f"Database was provided for {missing}; pass them via `databases`"
        )

    config = ModelConfig(**meta["config"])
    model = MTMLFQO(config)
    model_state = {
        name[len(_MODEL_PREFIX):]: value
        for name, value in arrays.items()
        if name.startswith(_MODEL_PREFIX)
    }
    try:
        model.load_state_dict(model_state)
    except (KeyError, ValueError) as error:
        raise CheckpointError(f"incompatible (S)/(T) state: {error}") from error

    for db_name in saved_dbs:
        featurizer = DatabaseFeaturizer(by_name[db_name], config)
        saved_schema = tuple(
            (table, tuple(columns)) for table, columns in meta["featurizers"][db_name]["schema"]
        )
        if featurizer.schema_signature() != saved_schema:
            raise CheckpointError(
                f"database {db_name!r} does not match the checkpointed schema: "
                f"saved {saved_schema} vs provided "
                f"{featurizer.schema_signature()}"
            )
        prefix = f"{_FEATURIZER_PREFIX}{db_name}/"
        featurizer_state = {
            name[len(prefix):]: value
            for name, value in arrays.items()
            if name.startswith(prefix)
        }
        try:
            featurizer.load_state_dict(featurizer_state)
        except (KeyError, ValueError) as error:
            raise CheckpointError(
                f"incompatible featurizer state for {db_name!r}: {error}"
            ) from error
        model.attach_featurizer(db_name, featurizer)

    model.eval()
    # Restore last: attach_featurizer bumps the counter during rebuild,
    # and serving caches key on it — the saved identity must win.
    model.restore_version(meta["model_version"])
    return model


def load_optimizer_state(path: str, optimizer: Adam) -> Adam:
    """Warm-start ``optimizer`` from a checkpoint saved with one.

    The optimizer must be built over *named* parameters whose name set
    matches the saved state (e.g. ``Adam(model.named_parameters())`` for
    a model loaded from the same checkpoint); any mismatch raises, it
    never misaligns.
    """
    meta, arrays = _read_archive(path, verify_digest=True)
    saved = meta.get("optimizer")
    if saved is None:
        raise CheckpointError(f"checkpoint {path!r} carries no optimizer state")
    state = {
        "t": saved["t"],
        "m": {key: arrays[f"{_OPTIM_PREFIX}m/{key}"] for key in saved["keys"]},
        "v": {key: arrays[f"{_OPTIM_PREFIX}v/{key}"] for key in saved["keys"]},
    }
    try:
        optimizer.load_state_dict(state)
    except ValueError as error:
        raise CheckpointError(str(error)) from error
    return optimizer
