"""Cross-DB meta-learning: Algorithm 1 (MLA) and transfer/fine-tuning.

MLA trains one MTMLF-QO over N databases:

1. for every DB, train the per-table encoders Enc_j on single-table
   CardEst (line 4) — this captures all database-specific knowledge;
2. featurize every labeled query of every DB (line 5-6);
3. shuffle the pooled training tuples across DBs (line 7) — this is the
   step that *forces* (S)/(T) to learn database-agnostic knowledge,
   because one set of weights must fit all DBs simultaneously;
4. jointly train the (S) and (T) modules on the pooled data (line 8).

Transfer to a new DB then needs only: train the new DB's featurizer
(cheap single-table queries) and optionally fine-tune (S)/(T) on a
small number of labeled queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.catalog import Database
from ..workload.labeler import LabeledQuery
from .config import ModelConfig
from .encoders import DatabaseFeaturizer
from .model import MTMLFQO
from .trainer import JointTrainer, TrainingExample

__all__ = ["MetaLearner", "MLAConfig"]


@dataclass
class MLAConfig:
    """Knobs for the meta-learning procedure."""

    encoder_queries_per_table: int = 25
    encoder_epochs: int = 12
    joint_epochs: int = 20
    batch_size: int = 16
    fine_tune_epochs: int = 5
    seed: int = 0
    verbose: bool = False


class MetaLearner:
    """Runs MLA over multiple databases and transfers to new ones."""

    def __init__(self, model_config: ModelConfig | None = None, mla_config: MLAConfig | None = None):
        self.model_config = model_config or ModelConfig()
        self.mla_config = mla_config or MLAConfig()
        self.model = MTMLFQO(self.model_config)

    # ------------------------------------------------------------------
    def prepare_featurizer(self, db: Database) -> DatabaseFeaturizer:
        """Train a database's (F) module (Algorithm 1, line 4)."""
        featurizer = DatabaseFeaturizer(db, self.model_config)
        featurizer.train_encoders(
            queries_per_table=self.mla_config.encoder_queries_per_table,
            epochs=self.mla_config.encoder_epochs,
            seed=self.mla_config.seed,
            verbose=self.mla_config.verbose,
        )
        self.model.attach_featurizer(db.name, featurizer)
        return featurizer

    def pretrain(
        self,
        databases: list[Database],
        workloads: list[list[LabeledQuery]],
    ) -> JointTrainer:
        """Algorithm 1: train (S)+(T) on the shuffled multi-DB pool."""
        if len(databases) != len(workloads):
            raise ValueError("databases and workloads must align")
        train_data: list[TrainingExample] = []
        for db, workload in zip(databases, workloads):
            if db.name not in self.model.featurizers:
                self.prepare_featurizer(db)
            train_data.extend((db.name, item) for item in workload)
        trainer = JointTrainer(self.model)
        # Line 7's shuffle happens inside JointTrainer.train (per epoch),
        # interleaving examples from all databases.
        trainer.train(
            train_data,
            epochs=self.mla_config.joint_epochs,
            batch_size=self.mla_config.batch_size,
            seed=self.mla_config.seed,
            verbose=self.mla_config.verbose,
        )
        return trainer

    # ------------------------------------------------------------------
    def transfer(
        self,
        new_db: Database,
        fine_tune_workload: list[LabeledQuery] | None = None,
    ) -> None:
        """Deploy the pre-trained model on an unseen database.

        Only the new DB's featurizer is trained from scratch (cheap
        single-table queries); the pre-trained (S)/(T) modules transfer
        as-is, optionally fine-tuned on a *small* labeled workload.
        """
        self.prepare_featurizer(new_db)
        if fine_tune_workload:
            trainer = JointTrainer(self.model)
            trainer.train(
                [(new_db.name, item) for item in fine_tune_workload],
                epochs=self.mla_config.fine_tune_epochs,
                batch_size=self.mla_config.batch_size,
                seed=self.mla_config.seed,
                verbose=self.mla_config.verbose,
            )
