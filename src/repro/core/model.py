"""The MTMLF-QO model: (F) featurizers + (S) Trans_Share + (T) task heads.

One :class:`MTMLFQO` instance holds a *single* shared representation
module and task-specific module, plus one attached
:class:`DatabaseFeaturizer` per database — mirroring Figure 1: the (F)
module is database-specific, (S)/(T) are shared across tasks *and*
databases (which is what MLA exploits).

Per the paper's training rule ("the gradient ... will be backpropagated
to update the parameters of the (S) and (T) modules only"), featurizer
outputs are detached inside node assembly; the per-table encoders are
trained separately (Algorithm 1, line 4).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from .. import nn
from ..engine.plan import JoinOp, PlanNode, ScanOp
from ..nn.positional import tree_path_encoding
from ..nn.spec import shape_spec
from ..sql.query import Query
from ..workload.labeler import LabeledQuery
from .beam import (
    BeamCandidate,
    BeamSearchState,
    drive_beam_states,
    require_connected,
)
from .config import ModelConfig
from .encoders import DatabaseFeaturizer
from .heads import EstimationHead
from .serializer import plan_signature, serialize_plan
from .shared import SharedRepresentation
from .trans_jo import TransJO

__all__ = ["MTMLFQO", "EncodedQuery", "FeatureCache", "InferenceSession"]

# Batched inference processes items in bounded chunks: the Trans_Share
# forward pads to the chunk's max node count and attention is quadratic
# in it, so an unbounded batch over a large workload would blow up
# memory for no extra speedup.
_INFERENCE_CHUNK = 64


class FeatureCache:
    """Bounded LRU over structurally-keyed :class:`EncodedQuery` entries.

    Keys are ``(db_name, plan_signature(plan))`` — structural, so two
    distinct but node-for-node identical plans (the cost-rerank's probe
    plans, re-labeled copies of a query) share one entry, and a recycled
    object address can never alias a stale encoding the way the previous
    ``id()``-keyed dict could.  The size bound keeps inference-time probe
    plans from growing the cache without limit.
    """

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError(f"cache size must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, EncodedQuery]" = OrderedDict()

    def get(self, key: tuple) -> "EncodedQuery | None":
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: tuple, value: "EncodedQuery") -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries


class EncodedQuery:
    """Cached raw features of one labeled query (F-module output)."""

    __slots__ = ("features", "tree_encodings", "leaf_positions", "num_nodes")

    def __init__(self, features: np.ndarray, tree_encodings: np.ndarray, leaf_positions: dict[str, int]):
        self.features = features              # (L, node_feature_dim)
        self.tree_encodings = tree_encodings  # (L, d_model)
        self.leaf_positions = leaf_positions  # table -> node index
        self.num_nodes = features.shape[0]


class MTMLFQO(nn.Module):
    """The multi-task model for CardEst + CostEst + JoinSel."""

    def __init__(self, config: ModelConfig | None = None):
        super().__init__()
        self.config = config or ModelConfig()
        rng = np.random.default_rng(self.config.seed)
        self.shared = SharedRepresentation(self.config, rng)
        self.card_head = EstimationHead(self.config, rng)
        self.cost_head = EstimationHead(self.config, rng)
        self.trans_jo = TransJO(self.config, rng)
        self.featurizers: dict[str, DatabaseFeaturizer] = {}  # guarded-by: _infer_lock
        self._cache = FeatureCache(self.config.feature_cache_size)  # guarded-by: _infer_lock
        # Node-content memo: a scan node's content depends only on
        # (table, filter) and a join node's only on its predicate
        # columns, so distinct plans over one query (rerank probes,
        # alternative orders) share almost every node.  Memoizing here
        # skips the per-node encoder forwards (the (F) LSTM over filter
        # predicates) that dominate encode_query on repeat traffic.
        self._node_cache = FeatureCache(self.config.feature_cache_size)  # guarded-by: _infer_lock
        # Serializes concurrent *inference* through the model: the public
        # inference entry points (predict_*, beam_candidates_batch) and
        # mode flips all acquire it, so direct calls are safe alongside a
        # running serving session.  It does NOT make training concurrent
        # with serving safe — trainer steps mutate weights and caches
        # outside this lock; retrain offline, then mark_updated().
        self._infer_lock = threading.RLock()  # analysis: coarse-lock
        # Bumped whenever the model's outputs may have changed
        # (attach_featurizer, trainer runs).  Downstream result caches —
        # the serving layer's plan cache — embed it in their keys so
        # entries computed against old weights can never hit again.
        self.version = 0  # guarded-by: _infer_lock

    # -- Module plumbing ------------------------------------------------------
    def named_parameters(self, prefix: str = ""):
        found = []
        found.extend(self.shared.named_parameters(prefix=f"{prefix}shared."))
        found.extend(self.card_head.named_parameters(prefix=f"{prefix}card_head."))
        found.extend(self.cost_head.named_parameters(prefix=f"{prefix}cost_head."))
        found.extend(self.trans_jo.named_parameters(prefix=f"{prefix}trans_jo."))
        return found

    def shared_task_parameters(self) -> list[nn.Parameter]:
        """Parameters of the (S) and (T) modules (the trainable set)."""
        return [p for _, p in self.named_parameters()]

    def _set_mode(self, training: bool) -> None:
        # Short-circuit: an always-on serving loop calls eval() on every
        # request; walking every submodule each time is pure overhead
        # once the mode is already applied.  attach_featurizer keeps the
        # invariant that all submodules share self.training.  The lock
        # keeps a flip from landing in the middle of a served batch.
        with self._infer_lock:
            if getattr(self, "_mode_applied", None) == training:
                return
            self.training = training
            self._mode_applied = training
            for module in (self.shared, self.card_head, self.cost_head, self.trans_jo):
                module._set_mode(training)
            for featurizer in self.featurizers.values():
                featurizer._set_mode(training)

    # ------------------------------------------------------------------
    def attach_featurizer(self, db_name: str, featurizer: DatabaseFeaturizer) -> None:
        """Register the (F) module of a database.

        Cached encodings are featurizer outputs, so (re)attaching one
        invalidates the cache.  Holds the inference lock: otherwise an
        in-flight inference on another thread could re-insert an
        old-featurizer encoding *after* the clear, and the feature
        caches carry no version in their keys to catch that.
        """
        with self._infer_lock:
            featurizer._set_mode(self.training)
            self.featurizers[db_name] = featurizer
            self.mark_updated()

    def featurizer_for(self, db_name: str) -> DatabaseFeaturizer:
        with self._infer_lock:
            try:
                return self.featurizers[db_name]
            except KeyError:
                raise KeyError(f"no featurizer attached for database {db_name!r}") from None

    def clear_cache(self) -> None:
        with self._infer_lock:
            self._cache.clear()
            self._node_cache.clear()

    def restore_version(self, version: int) -> None:
        """Set :attr:`version` to a checkpointed value.

        Used by :func:`repro.core.checkpoint.load_checkpoint` after
        rebuilding a model, so the loaded instance keeps the saved
        version identity instead of the bumps its own reconstruction
        (``attach_featurizer``) produced.  Clears the feature caches like
        any other version change would.
        """
        with self._infer_lock:
            self._cache.clear()
            self._node_cache.clear()
            self.version = int(version)

    def mark_updated(self) -> None:
        """Record that the model's outputs may have changed.

        Called automatically by :meth:`attach_featurizer` and the
        trainers; call it yourself after mutating weights by hand
        (including retraining an attached featurizer in place).  Clears
        the internal feature/node caches — their keys carry no version,
        so stale encodings must go — and bumps :attr:`version`, which
        serving-layer plan caches embed in their keys, retiring every
        previously cached result.
        """
        with self._infer_lock:
            self._cache.clear()
            self._node_cache.clear()
            self.version += 1

    def inference_session(self, db_name: str) -> "InferenceSession":
        """A reusable, thread-safe handle for repeated inference calls.

        The serving layer (``repro.serve``) holds one session per
        database instead of calling the model directly: the session
        validates the featurizer once, pins eval mode up front, and
        serializes calls through the model's inference lock so that
        concurrent sessions (or a trainer on another thread) can't
        interleave mode flips or feature-cache bookkeeping.
        """
        return InferenceSession(self, db_name)

    def databases(self) -> dict[str, "object"]:
        """``{db_name: Database}`` for every attached featurizer.

        An atomic snapshot under the inference lock — callers (e.g.
        ``OptimizerService.swap_model`` defaulting checkpoint database
        handles) must not iterate :attr:`featurizers` directly while
        another thread may attach one.
        """
        with self._infer_lock:
            return {name: featurizer.db for name, featurizer in self.featurizers.items()}

    def clone_for_inference(self) -> "MTMLFQO":
        """A detached, read-only replica of this model.

        The in-memory equivalent of a checkpoint round trip
        (``repro.core.checkpoint``): same config, bit-identical (S)/(T)
        and featurizer weights (state dicts copy on both save and load),
        and the same :attr:`version`, but its **own** inference lock and
        feature/node caches — so inference on the clone never contends
        with (or pollutes the caches of) the original.  This is what the
        serving layer's replica pool is built from: N clones decode in
        parallel, each producing orders bit-identical to the source
        model's.

        The clone shares the source's :class:`Database` handles (table
        data and statistics are read-only at inference time) but no
        weight arrays, so later in-place training of either model can
        never leak into the other.
        """
        with self._infer_lock:
            state = self.state_dict()
            featurizer_states = {
                name: (featurizer.db, featurizer.state_dict())
                for name, featurizer in self.featurizers.items()
            }
            version = self.version
        clone = MTMLFQO(self.config)
        clone.load_state_dict(state)
        for name, (db, featurizer_state) in sorted(featurizer_states.items()):
            featurizer = DatabaseFeaturizer(db, self.config)
            featurizer.load_state_dict(featurizer_state)
            clone.attach_featurizer(name, featurizer)
        clone.eval()
        # Restore last: attach_featurizer bumps the counter during
        # reconstruction, and serving caches key on (version, epoch) —
        # a replica must carry the source's version identity.
        clone.restore_version(version)
        return clone

    # ------------------------------------------------------------------
    # Node assembly (F -> raw node sequence)
    # ------------------------------------------------------------------
    def _node_extra_features(self, node: PlanNode, featurizer: DatabaseFeaturizer, depth: int) -> np.ndarray:
        out = np.zeros(self.config.node_extra_dim, dtype=np.float64)
        db = featurizer.db
        total_base = sum(db.statistics(t).num_rows for t in node.tables)
        out[7] = np.log10(max(total_base, 1)) / 7.0
        out[8] = len(node.tables) / 10.0
        out[9] = depth / 10.0
        if node.is_scan:
            out[0] = 1.0
            if node.scan_op is ScanOp.SEQ:
                out[2] = 1.0
            elif node.scan_op is ScanOp.INDEX:
                out[3] = 1.0
            out[11] = len(node.filter) / 4.0 if node.filter is not None else 0.0
        else:
            out[1] = 1.0
            if node.join_op is JoinOp.HASH:
                out[4] = 1.0
            elif node.join_op is JoinOp.MERGE:
                out[5] = 1.0
            elif node.join_op is JoinOp.NESTED_LOOP:
                out[6] = 1.0
            out[10] = len(node.join_predicates) / 4.0
            out[12] = len(node.left.tables) / 10.0
            out[13] = len(node.right.tables) / 10.0
        return out

    def _node_content(self, db_name: str, node: PlanNode, featurizer: DatabaseFeaturizer) -> np.ndarray:  # holds: _infer_lock
        """The d_model content slice of a node's raw features (detached).

        Memoized per structural node identity: scan content depends only
        on ``(table, filter)``, join content only on the predicate
        column sequence, so every plan over the same query (rerank
        probes, alternate orders) reuses the encoder outputs instead of
        re-running the (F) forwards node by node.
        """
        d = self.config.d_model
        if node.is_scan:
            filter_sig = None
            if node.filter is not None:
                filter_sig = (node.filter.table, tuple(str(p) for p in node.filter.predicates))
            key = (db_name, "scan", node.table, filter_sig)
            cached = self._node_cache.get(key)
            if cached is not None:
                return cached
            with nn.no_grad():
                encoded = featurizer.encode_filter(node.filter)
            content = encoded.data.reshape(d)
            self._node_cache.put(key, content)
            return content
        # Joins: mean embedding of the join-key columns (per-DB knowledge).
        half = d // 2
        ids = []
        for predicate in node.join_predicates:
            ids.append(featurizer.predicates.column_index[(predicate.left, predicate.left_column)] + 1)
            ids.append(featurizer.predicates.column_index[(predicate.right, predicate.right_column)] + 1)
        key = (db_name, "join", tuple(ids))
        cached = self._node_cache.get(key)
        if cached is not None:
            return cached
        with nn.no_grad():
            vectors = featurizer.column_embedding(np.asarray(ids, dtype=np.int64))
        content = np.zeros(d, dtype=np.float64)
        content[:half] = vectors.data.mean(axis=0)
        self._node_cache.put(key, content)
        return content

    def encode_query(self, db_name: str, labeled: LabeledQuery) -> EncodedQuery:  # holds: _infer_lock
        """Run the (F) module on one query's plan.

        Cached in a bounded LRU keyed by the plan's structural signature,
        so structurally equivalent plans share one entry (DESIGN.md §3).
        """
        key = (db_name, plan_signature(labeled.plan))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        featurizer = self.featurizer_for(db_name)
        nodes, positions = serialize_plan(labeled.plan)
        features = np.zeros((len(nodes), self.config.node_feature_dim), dtype=np.float64)
        tree_enc = np.zeros((len(nodes), self.config.d_model), dtype=np.float64)
        leaf_positions: dict[str, int] = {}
        for index, (node, position) in enumerate(zip(nodes, positions)):
            features[index, : self.config.d_model] = self._node_content(db_name, node, featurizer)
            features[index, self.config.d_model:] = self._node_extra_features(node, featurizer, position.depth)
            tree_enc[index] = tree_path_encoding(position, self.config.d_model)
            if node.is_scan:
                leaf_positions[node.table] = index
        encoded = EncodedQuery(features, tree_enc, leaf_positions)
        self._cache.put(key, encoded)
        return encoded

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def forward_batch(
        self, db_name: str, items: list[LabeledQuery]
    ) -> tuple[nn.Tensor, np.ndarray, list[EncodedQuery]]:
        """Shared representations for a batch of queries.

        Returns ``(S, pad_mask, encodings)`` where S is
        (B, Lmax, d_model) and pad_mask is True at padded node slots.
        """
        encodings = [self.encode_query(db_name, item) for item in items]
        max_len = max(e.num_nodes for e in encodings)
        batch = np.zeros((len(items), max_len, self.config.node_feature_dim), dtype=np.float64)
        trees = np.zeros((len(items), max_len, self.config.d_model), dtype=np.float64)
        pad_mask = np.ones((len(items), max_len), dtype=bool)
        for i, encoding in enumerate(encodings):
            batch[i, : encoding.num_nodes] = encoding.features
            trees[i, : encoding.num_nodes] = encoding.tree_encodings
            pad_mask[i, : encoding.num_nodes] = False
        shared = self.shared(nn.Tensor(batch), trees, key_padding_mask=pad_mask)
        return shared, pad_mask, encodings

    def predict_log_nodes(
        self, db_name: str, items: list[LabeledQuery]
    ) -> tuple[nn.Tensor, nn.Tensor, np.ndarray, list[EncodedQuery], nn.Tensor]:
        """Per-node log-card and log-cost predictions for a batch."""
        shared, pad_mask, encodings = self.forward_batch(db_name, items)
        log_cards = self.card_head(shared)
        log_costs = self.cost_head(shared)
        return log_cards, log_costs, pad_mask, encodings, shared

    @shape_spec(inputs={"shared_row": "(L, d_model)"},
                out="(1, m, d_model)")
    def join_order_memory(
        self, shared_row: nn.Tensor, encoding: EncodedQuery, table_order: list[str]
    ) -> nn.Tensor:
        """Single-table representations (1, m, d) for Trans_JO.

        ``shared_row`` is the (Lmax, d) shared output of one query;
        ``table_order`` fixes the position -> table correspondence
        (queries list tables in generation order).
        """
        rows = [
            shared_row[encoding.leaf_positions[table]: encoding.leaf_positions[table] + 1, :]
            for table in table_order
        ]
        memory = nn.functional.concat(rows, axis=0) if len(rows) > 1 else rows[0]
        return memory.reshape(1, len(rows), self.config.d_model)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_cardinalities(self, db_name: str, items: list[LabeledQuery]) -> list[np.ndarray]:
        """Per-node cardinality predictions (linear scale), preorder."""
        with self._infer_lock:
            self.eval()
            with nn.no_grad():
                log_cards, _, _, encodings, _ = self.predict_log_nodes(db_name, items)
        out = []
        for i, encoding in enumerate(encodings):
            out.append(np.exp(log_cards.data[i, : encoding.num_nodes]))
        return out

    def predict_costs(self, db_name: str, items: list[LabeledQuery]) -> list[np.ndarray]:
        """Per-node cost predictions (linear scale), preorder."""
        with self._infer_lock:
            self.eval()
            with nn.no_grad():
                _, log_costs, _, encodings, _ = self.predict_log_nodes(db_name, items)
        out = []
        for i, encoding in enumerate(encodings):
            out.append(np.exp(log_costs.data[i, : encoding.num_nodes]))
        return out

    @staticmethod
    def _require_connected(query: Query) -> np.ndarray:
        """Reject queries whose join graph has no legal complete order.

        Returns the adjacency matrix so callers build it only once.
        """
        adjacency = query.adjacency_matrix()
        require_connected(adjacency, query.tables)
        return adjacency

    def _decode_candidate_chunks(
        self,
        db_name: str,
        items: list[LabeledQuery],
        beam_width: int | None,
        enforce_legality: bool,
        adjacencies: "list[np.ndarray] | None" = None,
        scratch: "nn.ScratchArena | None" = None,
    ) -> list[list[BeamCandidate]]:
        """Encode + lockstep-decode ``items`` in bounded chunks.

        The whole pipeline — Trans_Share forward, memory gather, beam
        drive — runs per chunk of ``_INFERENCE_CHUNK`` queries, so peak
        memory is capped by the chunk size no matter how many queries
        are passed in.
        """
        width = beam_width or self.config.beam_width
        all_candidates: list[list[BeamCandidate]] = []
        for start in range(0, len(items), _INFERENCE_CHUNK):
            chunk = items[start: start + _INFERENCE_CHUNK]
            with nn.no_grad():
                shared, _, encodings = self.forward_batch(db_name, chunk)
                memories = [
                    self.join_order_memory(shared[i], encodings[i], item.query.tables)
                    for i, item in enumerate(chunk)
                ]
            states = [
                BeamSearchState(
                    adjacencies[start + i] if adjacencies is not None
                    else item.query.adjacency_matrix(),
                    beam_width=width,
                    enforce_legality=enforce_legality,
                )
                for i, item in enumerate(chunk)
            ]
            drive_beam_states(self.trans_jo, memories, states, scratch=scratch)
            all_candidates.extend(state.candidates() for state in states)
        return all_candidates

    def predict_join_order(
        self,
        db_name: str,
        labeled: LabeledQuery,
        beam_width: int | None = None,
        enforce_legality: bool = True,
        rerank_with_cost: bool | None = None,
    ) -> list[str]:
        """Beam-search decode a legal join order for one query.

        ``rerank_with_cost`` enables the multi-task synergy the paper
        motivates ("the inference of each task can effectively take
        others into consideration"): the top beam candidates are turned
        into left-deep plans and re-ranked by the model's *own* CostEst
        head, so a sequence-likelihood favourite with a catastrophic
        predicted cost is demoted.  Defaults to on whenever the cost
        task was trained (``w_cost > 0``); the MTMLF-JoinSel ablation
        has no cost head signal and decodes by likelihood alone.
        """
        return self.predict_join_orders(
            db_name,
            [labeled],
            beam_width=beam_width,
            enforce_legality=enforce_legality,
            rerank_with_cost=rerank_with_cost,
        )[0]

    def predict_join_orders(
        self,
        db_name: str,
        items: list[LabeledQuery],
        beam_width: int | None = None,
        enforce_legality: bool = True,
        rerank_with_cost: bool | None = None,
        scratch: "nn.ScratchArena | None" = None,
    ) -> list[list[str]]:
        """Batched join-order inference for many queries at once.

        Queries are processed in bounded chunks: one Trans_Share forward
        encodes each chunk, then every query's beam search advances in
        lockstep — each timestep expands all active beams of all queries
        sharing a table count with a single Trans_JO forward (see
        :func:`repro.core.beam.drive_beam_states`).  Emitted orders are
        identical to per-query :meth:`predict_join_order` calls, and
        peak memory is capped by the chunk size.

        Raises ``ValueError`` up front for any query whose join graph is
        disconnected (naming the components) when legality is enforced.
        """
        if not items:
            return []
        adjacencies = None
        if enforce_legality:
            adjacencies = [self._require_connected(item.query) for item in items]
        # The lock makes direct calls safe alongside a running serving
        # session: forwards are pure but the feature/node LRU caches and
        # mode flips are not thread-safe.
        with self._infer_lock:
            self.eval()
            per_query = self._decode_candidate_chunks(
                db_name, items, beam_width, enforce_legality, adjacencies, scratch=scratch
            )
            if rerank_with_cost is None:
                rerank_with_cost = self.config.w_cost > 0.0
            orders: list[list[str] | None] = [None] * len(items)
            rerank_entries: list[tuple[int, LabeledQuery, list[BeamCandidate]]] = []
            for i, (item, candidates) in enumerate(zip(items, per_query)):
                if not candidates:
                    raise RuntimeError("beam search produced no candidates")
                if rerank_with_cost and len(candidates) > 1 and item.query.num_tables > 2:
                    rerank_entries.append((i, item, candidates))
                else:
                    orders[i] = candidates[0].tables(item.query.tables)
            for i, order in self._rerank_by_cost_batch(db_name, rerank_entries).items():
                orders[i] = order
            return orders

    def _rerank_by_cost(
        self, db_name: str, labeled: LabeledQuery, candidates, margin: float = 0.7
    ) -> list[str]:
        """Cost-rerank one query's candidates; see :meth:`_rerank_by_cost_batch`."""
        return self._rerank_by_cost_batch(db_name, [(0, labeled, candidates)], margin)[0]

    def _rerank_by_cost_batch(
        self,
        db_name: str,
        entries: list[tuple[int, LabeledQuery, list]],
        margin: float = 0.7,
    ) -> dict[int, list[str]]:
        """Demote likelihood favourites only on a clear cost signal.

        Each legal candidate is costed by the model's own CostEst head;
        a query's beam favourite (its top-likelihood candidate) is
        tracked explicitly and kept unless some other candidate's
        predicted log-cost undercuts it by more than ``margin`` (0.7 in
        natural log ~ a 2x predicted speedup).  The margin makes the
        rerank a disaster-avoidance mechanism rather than a full
        re-ordering: CostEst is accurate enough to spot catastrophic
        orders but noisier than the decoder on near-ties.  When a
        favourite itself fails to plan there is no candidate the margin
        should shield, so the top-scoring survivor — the plannable
        candidate with the best predicted cost — is returned instead.

        Probes of *all* queries are costed in shared CostEst forwards,
        grouped by probe node count so each forward pads exactly like a
        solo call would — the bit-exactness rule of DESIGN.md section 2.
        A complete order over ``m`` tables always plans to ``2m - 1``
        nodes, so a group mixes queries only when their table counts
        match.  Returns ``{entry index -> chosen order}``.
        """
        from ..optimizer.planner import plan_with_order
        from ..optimizer.selectivity import HistogramEstimator

        results: dict[int, list[str]] = {}
        if not entries:
            return results
        featurizer = self.featurizer_for(db_name)
        estimator = HistogramEstimator(featurizer.db)
        prepared = []  # (index, orders, probes, favourite_planned)
        for index, labeled, candidates in entries:
            orders: list[list[str]] = []
            probes: list[LabeledQuery] = []
            favourite_planned = False
            for rank, candidate in enumerate(candidates):
                order = candidate.tables(labeled.query.tables)
                try:
                    plan = plan_with_order(labeled.query, order, estimator)
                except ValueError:
                    continue
                if rank == 0:
                    favourite_planned = True
                orders.append(order)
                probes.append(
                    LabeledQuery(
                        query=labeled.query,
                        plan=plan,
                        node_cardinalities=[0] * len(plan.nodes_preorder()),
                        node_costs=[0.0] * len(plan.nodes_preorder()),
                        total_time_ms=0.0,
                    )
                )
            if not probes:
                results[index] = candidates[0].tables(labeled.query.tables)
            else:
                prepared.append((index, orders, probes, favourite_planned))

        groups: dict[int, list] = {}
        for entry in prepared:
            groups.setdefault(entry[2][0].num_nodes, []).append(entry)
        for group in groups.values():
            flat = [probe for _, _, probes, _ in group for probe in probes]
            # Chunked CostEst forwards over the group's probes (the
            # root's predicted log-cost is preorder index 0 per row).
            root_costs: list[float] = []
            with nn.no_grad():
                for start in range(0, len(flat), _INFERENCE_CHUNK):
                    _, log_costs, _, _, _ = self.predict_log_nodes(
                        db_name, flat[start: start + _INFERENCE_CHUNK]
                    )
                    root_costs.extend(log_costs.data[:, 0].tolist())
            cursor = 0
            for index, orders, probes, favourite_planned in group:
                scored = list(zip(orders, root_costs[cursor: cursor + len(probes)]))
                cursor += len(probes)
                favourite_cost = scored[0][1] if favourite_planned else None
                challenger_order, challenger_cost = min(scored, key=lambda item: item[1])
                if favourite_cost is None:
                    # The favourite cannot be planned: nothing to protect
                    # with the margin; take the best-costed survivor.
                    results[index] = challenger_order
                elif challenger_cost < favourite_cost - margin:
                    results[index] = challenger_order
                else:
                    results[index] = scored[0][0]
        return results

    def beam_candidates(
        self,
        db_name: str,
        labeled: LabeledQuery,
        beam_width: int | None = None,
        enforce_legality: bool = False,
    ) -> list[BeamCandidate]:
        """Raw beam candidates (used by the sequence-level loss)."""
        return self.beam_candidates_batch(
            db_name, [labeled], beam_width=beam_width, enforce_legality=enforce_legality
        )[0]

    def beam_candidates_batch(
        self,
        db_name: str,
        items: list[LabeledQuery],
        beam_width: int | None = None,
        enforce_legality: bool = False,
        scratch: "nn.ScratchArena | None" = None,
    ) -> list[list[BeamCandidate]]:
        """Raw beam candidates for many queries off one shared forward.

        Batches the Trans_Share encode across queries and drives all
        beam searches in lockstep, like :meth:`predict_join_orders` but
        returning the full candidate lists (the sequence-level loss
        needs the illegal ones too).
        """
        if not items:
            return []
        adjacencies = None
        if enforce_legality:
            adjacencies = [self._require_connected(item.query) for item in items]
        with self._infer_lock:
            return self._decode_candidate_chunks(
                db_name, items, beam_width, enforce_legality, adjacencies, scratch=scratch
            )


class InferenceSession:
    """Reusable eval-mode handle over one ``(model, database)`` pair.

    Created via :meth:`MTMLFQO.inference_session`.  Every call runs
    under the model's inference lock (acquired by the model's own
    inference entry points), so concurrent sessions — and direct model
    calls — serialize against each other and against mode flips, and
    results are identical to calling the model directly.  The lock does
    *not* cover trainer steps: training concurrently with serving is
    unsupported — retrain offline, then :meth:`MTMLFQO.mark_updated`.
    """

    def __init__(self, model: MTMLFQO, db_name: str):
        self.model = model
        self.db_name = db_name
        # Session-private scratch arena for no-tape kernel outputs.  It
        # must never be shared across sessions or hoisted to module
        # scope (the scratch-privacy checker enforces the latter): all
        # uses run under the model's inference lock, so buffers are
        # never written concurrently.
        self.scratch = nn.ScratchArena()
        model.featurizer_for(db_name)  # fail fast on a missing (F) module
        with model._infer_lock:
            model.eval()

    def predict_join_orders(self, items: list[LabeledQuery], **kwargs) -> list[list[str]]:
        """Batched join-order inference; see :meth:`MTMLFQO.predict_join_orders`."""
        kwargs.setdefault("scratch", self.scratch)
        return self.model.predict_join_orders(self.db_name, items, **kwargs)

    def predict_cardinalities(self, items: list[LabeledQuery]) -> list[np.ndarray]:
        return self.model.predict_cardinalities(self.db_name, items)

    def predict_costs(self, items: list[LabeledQuery]) -> list[np.ndarray]:
        return self.model.predict_costs(self.db_name, items)
