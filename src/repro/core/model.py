"""The MTMLF-QO model: (F) featurizers + (S) Trans_Share + (T) task heads.

One :class:`MTMLFQO` instance holds a *single* shared representation
module and task-specific module, plus one attached
:class:`DatabaseFeaturizer` per database — mirroring Figure 1: the (F)
module is database-specific, (S)/(T) are shared across tasks *and*
databases (which is what MLA exploits).

Per the paper's training rule ("the gradient ... will be backpropagated
to update the parameters of the (S) and (T) modules only"), featurizer
outputs are detached inside node assembly; the per-table encoders are
trained separately (Algorithm 1, line 4).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..engine.plan import JoinOp, PlanNode, ScanOp
from ..nn.positional import tree_path_encoding
from ..workload.labeler import LabeledQuery
from .beam import BeamCandidate, beam_search_join_order
from .config import ModelConfig
from .encoders import DatabaseFeaturizer
from .heads import EstimationHead
from .serializer import serialize_plan
from .shared import SharedRepresentation
from .trans_jo import TransJO

__all__ = ["MTMLFQO", "EncodedQuery"]


class EncodedQuery:
    """Cached raw features of one labeled query (F-module output)."""

    __slots__ = ("features", "tree_encodings", "leaf_positions", "num_nodes")

    def __init__(self, features: np.ndarray, tree_encodings: np.ndarray, leaf_positions: dict[str, int]):
        self.features = features              # (L, node_feature_dim)
        self.tree_encodings = tree_encodings  # (L, d_model)
        self.leaf_positions = leaf_positions  # table -> node index
        self.num_nodes = features.shape[0]


class MTMLFQO(nn.Module):
    """The multi-task model for CardEst + CostEst + JoinSel."""

    def __init__(self, config: ModelConfig | None = None):
        super().__init__()
        self.config = config or ModelConfig()
        rng = np.random.default_rng(self.config.seed)
        self.shared = SharedRepresentation(self.config, rng)
        self.card_head = EstimationHead(self.config, rng)
        self.cost_head = EstimationHead(self.config, rng)
        self.trans_jo = TransJO(self.config, rng)
        self.featurizers: dict[str, DatabaseFeaturizer] = {}
        self._cache: dict[int, EncodedQuery] = {}

    # -- Module plumbing ------------------------------------------------------
    def named_parameters(self, prefix: str = ""):
        found = []
        found.extend(self.shared.named_parameters(prefix=f"{prefix}shared."))
        found.extend(self.card_head.named_parameters(prefix=f"{prefix}card_head."))
        found.extend(self.cost_head.named_parameters(prefix=f"{prefix}cost_head."))
        found.extend(self.trans_jo.named_parameters(prefix=f"{prefix}trans_jo."))
        return found

    def shared_task_parameters(self) -> list[nn.Parameter]:
        """Parameters of the (S) and (T) modules (the trainable set)."""
        return [p for _, p in self.named_parameters()]

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for module in (self.shared, self.card_head, self.cost_head, self.trans_jo):
            module._set_mode(training)
        for featurizer in self.featurizers.values():
            featurizer._set_mode(training)

    # ------------------------------------------------------------------
    def attach_featurizer(self, db_name: str, featurizer: DatabaseFeaturizer) -> None:
        """Register the (F) module of a database."""
        self.featurizers[db_name] = featurizer

    def featurizer_for(self, db_name: str) -> DatabaseFeaturizer:
        try:
            return self.featurizers[db_name]
        except KeyError:
            raise KeyError(f"no featurizer attached for database {db_name!r}") from None

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # Node assembly (F -> raw node sequence)
    # ------------------------------------------------------------------
    def _node_extra_features(self, node: PlanNode, featurizer: DatabaseFeaturizer, depth: int) -> np.ndarray:
        out = np.zeros(self.config.node_extra_dim, dtype=np.float64)
        db = featurizer.db
        total_base = sum(db.statistics(t).num_rows for t in node.tables)
        out[7] = np.log10(max(total_base, 1)) / 7.0
        out[8] = len(node.tables) / 10.0
        out[9] = depth / 10.0
        if node.is_scan:
            out[0] = 1.0
            if node.scan_op is ScanOp.SEQ:
                out[2] = 1.0
            elif node.scan_op is ScanOp.INDEX:
                out[3] = 1.0
            out[11] = len(node.filter) / 4.0 if node.filter is not None else 0.0
        else:
            out[1] = 1.0
            if node.join_op is JoinOp.HASH:
                out[4] = 1.0
            elif node.join_op is JoinOp.MERGE:
                out[5] = 1.0
            elif node.join_op is JoinOp.NESTED_LOOP:
                out[6] = 1.0
            out[10] = len(node.join_predicates) / 4.0
            out[12] = len(node.left.tables) / 10.0
            out[13] = len(node.right.tables) / 10.0
        return out

    def _node_content(self, node: PlanNode, featurizer: DatabaseFeaturizer) -> np.ndarray:
        """The d_model content slice of a node's raw features (detached)."""
        d = self.config.d_model
        if node.is_scan:
            with nn.no_grad():
                encoded = featurizer.encode_filter(node.filter)
            return encoded.data.reshape(d)
        # Joins: mean embedding of the join-key columns (per-DB knowledge).
        half = d // 2
        ids = []
        for predicate in node.join_predicates:
            ids.append(featurizer.predicates.column_index[(predicate.left, predicate.left_column)] + 1)
            ids.append(featurizer.predicates.column_index[(predicate.right, predicate.right_column)] + 1)
        with nn.no_grad():
            vectors = featurizer.column_embedding(np.asarray(ids, dtype=np.int64))
        content = np.zeros(d, dtype=np.float64)
        content[:half] = vectors.data.mean(axis=0)
        return content

    def encode_query(self, db_name: str, labeled: LabeledQuery) -> EncodedQuery:
        """Run the (F) module on one query's plan; cached per LabeledQuery."""
        key = id(labeled)
        if key in self._cache:
            return self._cache[key]
        featurizer = self.featurizer_for(db_name)
        nodes, positions = serialize_plan(labeled.plan)
        features = np.zeros((len(nodes), self.config.node_feature_dim), dtype=np.float64)
        tree_enc = np.zeros((len(nodes), self.config.d_model), dtype=np.float64)
        leaf_positions: dict[str, int] = {}
        for index, (node, position) in enumerate(zip(nodes, positions)):
            features[index, : self.config.d_model] = self._node_content(node, featurizer)
            features[index, self.config.d_model:] = self._node_extra_features(node, featurizer, position.depth)
            tree_enc[index] = tree_path_encoding(position, self.config.d_model)
            if node.is_scan:
                leaf_positions[node.table] = index
        encoded = EncodedQuery(features, tree_enc, leaf_positions)
        self._cache[key] = encoded
        return encoded

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def forward_batch(
        self, db_name: str, items: list[LabeledQuery]
    ) -> tuple[nn.Tensor, np.ndarray, list[EncodedQuery]]:
        """Shared representations for a batch of queries.

        Returns ``(S, pad_mask, encodings)`` where S is
        (B, Lmax, d_model) and pad_mask is True at padded node slots.
        """
        encodings = [self.encode_query(db_name, item) for item in items]
        max_len = max(e.num_nodes for e in encodings)
        batch = np.zeros((len(items), max_len, self.config.node_feature_dim), dtype=np.float64)
        trees = np.zeros((len(items), max_len, self.config.d_model), dtype=np.float64)
        pad_mask = np.ones((len(items), max_len), dtype=bool)
        for i, encoding in enumerate(encodings):
            batch[i, : encoding.num_nodes] = encoding.features
            trees[i, : encoding.num_nodes] = encoding.tree_encodings
            pad_mask[i, : encoding.num_nodes] = False
        shared = self.shared(nn.Tensor(batch), trees, key_padding_mask=pad_mask)
        return shared, pad_mask, encodings

    def predict_log_nodes(
        self, db_name: str, items: list[LabeledQuery]
    ) -> tuple[nn.Tensor, nn.Tensor, np.ndarray, list[EncodedQuery], nn.Tensor]:
        """Per-node log-card and log-cost predictions for a batch."""
        shared, pad_mask, encodings = self.forward_batch(db_name, items)
        log_cards = self.card_head(shared)
        log_costs = self.cost_head(shared)
        return log_cards, log_costs, pad_mask, encodings, shared

    def join_order_memory(
        self, shared_row: nn.Tensor, encoding: EncodedQuery, table_order: list[str]
    ) -> nn.Tensor:
        """Single-table representations (1, m, d) for Trans_JO.

        ``shared_row`` is the (Lmax, d) shared output of one query;
        ``table_order`` fixes the position -> table correspondence
        (queries list tables in generation order).
        """
        rows = [
            shared_row[encoding.leaf_positions[table]: encoding.leaf_positions[table] + 1, :]
            for table in table_order
        ]
        memory = nn.functional.concat(rows, axis=0) if len(rows) > 1 else rows[0]
        return memory.reshape(1, len(rows), self.config.d_model)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_cardinalities(self, db_name: str, items: list[LabeledQuery]) -> list[np.ndarray]:
        """Per-node cardinality predictions (linear scale), preorder."""
        self.eval()
        with nn.no_grad():
            log_cards, _, _, encodings, _ = self.predict_log_nodes(db_name, items)
        out = []
        for i, encoding in enumerate(encodings):
            out.append(np.exp(log_cards.data[i, : encoding.num_nodes]))
        return out

    def predict_costs(self, db_name: str, items: list[LabeledQuery]) -> list[np.ndarray]:
        """Per-node cost predictions (linear scale), preorder."""
        self.eval()
        with nn.no_grad():
            _, log_costs, _, encodings, _ = self.predict_log_nodes(db_name, items)
        out = []
        for i, encoding in enumerate(encodings):
            out.append(np.exp(log_costs.data[i, : encoding.num_nodes]))
        return out

    def predict_join_order(
        self,
        db_name: str,
        labeled: LabeledQuery,
        beam_width: int | None = None,
        enforce_legality: bool = True,
        rerank_with_cost: bool | None = None,
    ) -> list[str]:
        """Beam-search decode a legal join order for one query.

        ``rerank_with_cost`` enables the multi-task synergy the paper
        motivates ("the inference of each task can effectively take
        others into consideration"): the top beam candidates are turned
        into left-deep plans and re-ranked by the model's *own* CostEst
        head, so a sequence-likelihood favourite with a catastrophic
        predicted cost is demoted.  Defaults to on whenever the cost
        task was trained (``w_cost > 0``); the MTMLF-JoinSel ablation
        has no cost head signal and decodes by likelihood alone.
        """
        self.eval()
        with nn.no_grad():
            shared, _, encodings = self.forward_batch(db_name, [labeled])
            memory = self.join_order_memory(shared[0], encodings[0], labeled.query.tables)
        candidates = beam_search_join_order(
            self.trans_jo,
            memory,
            labeled.query.adjacency_matrix(),
            beam_width=beam_width or self.config.beam_width,
            enforce_legality=enforce_legality,
        )
        if not candidates:
            raise RuntimeError("beam search produced no candidates")
        if rerank_with_cost is None:
            rerank_with_cost = self.config.w_cost > 0.0
        if rerank_with_cost and len(candidates) > 1 and labeled.query.num_tables > 2:
            return self._rerank_by_cost(db_name, labeled, candidates)
        return candidates[0].tables(labeled.query.tables)

    def _rerank_by_cost(
        self, db_name: str, labeled: LabeledQuery, candidates, margin: float = 0.7
    ) -> list[str]:
        """Demote the likelihood favourite only on a clear cost signal.

        Each legal candidate is costed by the model's own CostEst head;
        the beam favourite is kept unless some other candidate's
        predicted log-cost undercuts it by more than ``margin`` (0.7 in
        natural log ~ a 2x predicted speedup).  The margin makes the
        rerank a disaster-avoidance mechanism rather than a full
        re-ordering: CostEst is accurate enough to spot catastrophic
        orders but noisier than the decoder on near-ties.
        """
        from ..optimizer.planner import plan_with_order
        from ..optimizer.selectivity import HistogramEstimator

        featurizer = self.featurizer_for(db_name)
        estimator = HistogramEstimator(featurizer.db)
        scored: list[tuple[list[str], float]] = []
        for candidate in candidates:
            order = candidate.tables(labeled.query.tables)
            try:
                plan = plan_with_order(labeled.query, order, estimator)
            except ValueError:
                continue
            probe = LabeledQuery(
                query=labeled.query,
                plan=plan,
                node_cardinalities=[0] * len(plan.nodes_preorder()),
                node_costs=[0.0] * len(plan.nodes_preorder()),
                total_time_ms=0.0,
            )
            with nn.no_grad():
                _, log_costs, _, _, _ = self.predict_log_nodes(db_name, [probe])
            self._cache.pop(id(probe), None)
            scored.append((order, float(log_costs.data[0, 0])))
        if not scored:
            return candidates[0].tables(labeled.query.tables)
        favourite_order, favourite_cost = scored[0]
        challenger_order, challenger_cost = min(scored, key=lambda item: item[1])
        if challenger_cost < favourite_cost - margin:
            return challenger_order
        return favourite_order

    def beam_candidates(
        self,
        db_name: str,
        labeled: LabeledQuery,
        beam_width: int | None = None,
        enforce_legality: bool = False,
    ) -> list[BeamCandidate]:
        """Raw beam candidates (used by the sequence-level loss)."""
        with nn.no_grad():
            shared, _, encodings = self.forward_batch(db_name, [labeled])
            memory = self.join_order_memory(shared[0], encodings[0], labeled.query.tables)
        return beam_search_join_order(
            self.trans_jo,
            memory,
            labeled.query.adjacency_matrix(),
            beam_width=beam_width or self.config.beam_width,
            enforce_legality=enforce_legality,
        )
