"""Model hyper-parameters for MTMLF-QO.

The paper (Section 6.1): transformers with 3 blocks and 4 heads for each
``Enc_i``, ``Trans_Share`` and ``Trans_JO``; two-layer MLP heads; loss
weights all 1; Adam at 1e-4.  Defaults here keep the paper's shape at a
CPU-trainable width (``d_model`` 48); everything is overridable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelConfig"]


@dataclass
class ModelConfig:
    """Hyper-parameters shared by the (F), (S) and (T) modules."""

    d_model: int = 48
    num_heads: int = 4
    encoder_layers: int = 2     # per-table Enc_i blocks (paper: 3)
    shared_layers: int = 3      # Trans_Share blocks (paper: 3)
    decoder_layers: int = 2     # Trans_JO blocks (paper: 3)
    ff_multiplier: int = 2
    dropout: float = 0.0

    # Featurization
    predicate_feature_dim: int = 20   # raw, DB-agnostic predicate features
    node_extra_dim: int = 16          # raw structural/statistical node features

    # Loss weights (Equation 1); all 1.0 in the paper
    w_card: float = 1.0
    w_cost: float = 1.0
    w_jo: float = 1.0

    # Sequence-level loss (Equation 3)
    sequence_loss_lambda: float = 4.0
    beam_width: int = 3

    # Plan-feature cache: max structurally-distinct plans kept (LRU).
    feature_cache_size: int = 4096

    # Optimization
    learning_rate: float = 1e-3
    grad_clip: float = 5.0
    seed: int = 0

    @property
    def ff_dim(self) -> int:
        return self.ff_multiplier * self.d_model

    @property
    def node_feature_dim(self) -> int:
        """Raw node feature width before the shared input projection."""
        return self.d_model + self.node_extra_dim
