"""MTMLF-QO loss criteria.

- :func:`node_qerror_loss` — L.i/L.ii: smooth q-error surrogate over the
  per-node cardinality / cost predictions;
- :func:`join_order_token_loss` — L.iii: token-level cross entropy over
  Trans_JO's stepwise distributions;
- :func:`joint_loss` — Equation 1: ``w_card*L_card + w_cost*L_cost +
  w_jo*L_jo``;
- :func:`sequence_level_loss` — Equation 3: the JOEU-weighted
  sequence-level criterion over beam-search candidates (Section 5).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .beam import BeamCandidate
from .joeu import joeu

__all__ = [
    "node_qerror_loss",
    "join_order_token_loss",
    "joint_loss",
    "sequence_level_loss",
    "sequence_log_prob",
]


def node_qerror_loss(
    log_predictions: nn.Tensor, true_values: np.ndarray, mask: np.ndarray | None = None, floor: float = 1.0
) -> nn.Tensor:
    """Mean |log pred - log true| over (batch, nodes) predictions.

    Minimising the absolute log difference minimises the geometric-mean
    q-error ``max(pred/true, true/pred)`` (L.i / L.ii of the paper).
    """
    true = np.maximum(np.asarray(true_values, dtype=np.float64), floor)
    diff = (log_predictions - nn.Tensor(np.log(true))).abs()
    if mask is not None:
        weights = np.asarray(mask, dtype=np.float64)
        count = max(float(weights.sum()), 1.0)
        return (diff * nn.Tensor(weights)).sum() * (1.0 / count)
    return diff.mean()


def join_order_token_loss(logits: nn.Tensor, target_positions: list[int]) -> nn.Tensor:
    """Token-level CE averaged over the m timestamps (L.iii)."""
    return nn.cross_entropy(logits, np.asarray(target_positions, dtype=np.int64))


def joint_loss(
    card_loss: nn.Tensor | None,
    cost_loss: nn.Tensor | None,
    jo_loss: nn.Tensor | None,
    w_card: float = 1.0,
    w_cost: float = 1.0,
    w_jo: float = 1.0,
) -> nn.Tensor:
    """Equation 1: the weighted multi-task training criterion.

    Tasks may be disabled (for the single-task ablations) by passing
    None or a zero weight.
    """
    total: nn.Tensor | None = None
    for loss, weight in ((card_loss, w_card), (cost_loss, w_cost), (jo_loss, w_jo)):
        if loss is None or weight == 0.0:
            continue
        term = loss * weight
        total = term if total is None else total + term
    if total is None:
        raise ValueError("all tasks disabled: nothing to optimize")
    return total


def sequence_log_prob(trans_jo, memory: nn.Tensor, positions: list[int]) -> nn.Tensor:
    """Differentiable log p(u | x): sum of stepwise log-probabilities."""
    logits = trans_jo(memory, positions)  # (m, m) teacher-forced on u itself
    log_probs = F.log_softmax(logits, axis=-1)
    onehot = F.one_hot(np.asarray(positions, dtype=np.int64), logits.shape[-1])
    return (log_probs * nn.Tensor(onehot)).sum()


def sequence_level_loss(
    trans_jo,
    memory: nn.Tensor,
    optimal_positions: list[int],
    candidates: list[BeamCandidate],
    penalty: float = 4.0,
) -> nn.Tensor:
    """Equation 3: the sequence-level join-order criterion.

    ``L = -log p(u*|x) + sum_{u in U(x)} (1 - JOEU(u, u*)) log p(u|x)
    + lambda * log sum_{u in U̅(x)} p(u|x)``

    where U(x) are the *legal* beam candidates, U̅(x) the illegal ones
    and u* the optimal order.  The second term suppresses legal but
    suboptimal orders in proportion to how early they diverge; the third
    suppresses illegal orders with weight ``penalty``.
    """
    loss = -sequence_log_prob(trans_jo, memory, optimal_positions)

    illegal_log_probs: list[nn.Tensor] = []
    for candidate in candidates:
        if candidate.positions == optimal_positions:
            continue
        log_p = sequence_log_prob(trans_jo, memory, candidate.positions)
        if candidate.legal:
            weight = 1.0 - joeu(candidate.positions, optimal_positions)
            if weight > 0.0:
                loss = loss + log_p * weight
        else:
            illegal_log_probs.append(log_p)

    if illegal_log_probs:
        # log sum_u p(u) computed stably as logsumexp of sequence log-probs.
        stacked = F.concat([lp.reshape(1) for lp in illegal_log_probs], axis=0)
        max_val = float(stacked.data.max())
        shifted = (stacked - max_val).exp().sum().log() + max_val
        loss = loss + shifted * penalty
    return loss
