"""(F.i) Featurization: predicates and plan nodes to raw feature vectors.

The design rule of the paper's MLA (Section 3.3) is that *all
database-specific information is pushed into the (F) module*, while the
(S)/(T) modules see a database-agnostic representation.  We realise that
by featurizing with **statistical coordinates** instead of raw values:

- a numeric literal becomes its *quantile position* in the column's
  histogram (the same physical meaning in every DB);
- an equality value becomes its estimated *frequency class* (MCV hit or
  1/ndv residual);
- LIKE patterns become structural features (wildcard shape, length);
- a column contributes its log-scale distinct count and type flag;
- a table contributes log-scale row count.

On top of these fixed-layout vectors, the per-DB learnable parts —
column embeddings and the per-table ``Enc_i`` encoders — live in
:mod:`repro.core.encoders`.
"""

from __future__ import annotations

import numpy as np

from ..sql.predicates import (
    BetweenPredicate,
    Comparison,
    CompareOp,
    Conjunction,
    InPredicate,
    LikePredicate,
)
from ..storage.catalog import Database
from .config import ModelConfig

__all__ = ["PredicateFeaturizer"]

# Operator slots in the one-hot prefix of a predicate feature vector.
_OP_SLOTS = {
    CompareOp.EQ: 0,
    CompareOp.NE: 1,
    CompareOp.LT: 2,
    CompareOp.LE: 3,
    CompareOp.GT: 4,
    CompareOp.GE: 5,
}
_SLOT_BETWEEN = 6
_SLOT_IN = 7
_SLOT_LIKE = 8
_SLOT_NOT_LIKE = 9
_NUM_OP_SLOTS = 10


class PredicateFeaturizer:
    """Maps predicates of one database to fixed-width feature vectors."""

    def __init__(self, db: Database, config: ModelConfig | None = None):
        self.db = db
        self.config = config or ModelConfig()
        if self.config.predicate_feature_dim < _NUM_OP_SLOTS + 9:
            raise ValueError("predicate_feature_dim too small for the feature layout")
        # Global column vocabulary of this DB (for learned column embeddings).
        self.column_index: dict[tuple[str, str], int] = {}
        for table_name in db.table_names:
            for column_name in db.table(table_name).column_order:
                self.column_index[(table_name, column_name)] = len(self.column_index)

    @property
    def num_columns(self) -> int:
        return len(self.column_index)

    def schema_signature(self) -> tuple:
        """Stable identity of the column vocabulary this featurizer indexes.

        A tuple of ``(table, (columns...))`` pairs in vocabulary order.
        Learned column embeddings are addressed through ``column_index``,
        so two featurizers are state-dict compatible exactly when their
        signatures match; checkpoints compare this on restore.
        """
        per_table: dict[str, list[str]] = {}
        for table_name, column_name in self.column_index:
            per_table.setdefault(table_name, []).append(column_name)
        return tuple(
            (table_name, tuple(per_table.get(table_name, ())))
            for table_name in self.db.table_names
        )

    # ------------------------------------------------------------------
    def _quantile(self, table: str, column: str, value: float) -> float:
        stats = self.db.statistics(table).column(column)
        if stats.histogram is None:
            return 0.5
        return stats.histogram.selectivity_le(float(value))

    def _column_scalars(self, table: str, column: str) -> list[float]:
        stats = self.db.statistics(table).column(column)
        log_ndv = np.log10(max(stats.n_distinct, 1)) / 7.0
        is_string = 0.0 if stats.histogram is not None else 1.0
        return [log_ndv, is_string]

    def featurize_predicate(self, predicate) -> np.ndarray:
        """One predicate -> a ``predicate_feature_dim`` vector.

        Layout: [op one-hot (10) | low-q | high-q | eq-frequency |
        like shape (4) | log-ndv | is-string | padding].
        """
        out = np.zeros(self.config.predicate_feature_dim, dtype=np.float64)
        table = predicate.table
        column = predicate.column_names()[0]
        stats = self.db.statistics(table).column(column)

        low_q, high_q, eq_freq = 0.0, 1.0, 0.0
        like_shape = [0.0, 0.0, 0.0, 0.0]

        if isinstance(predicate, Comparison):
            out[_OP_SLOTS[predicate.op]] = 1.0
            if predicate.op in (CompareOp.EQ, CompareOp.NE):
                eq_freq = stats.equality_selectivity(predicate.value)
                if predicate.op is CompareOp.NE:
                    eq_freq = 1.0 - eq_freq
            elif isinstance(predicate.value, (int, float, np.floating, np.integer)):
                q = self._quantile(table, column, float(predicate.value))
                if predicate.op in (CompareOp.LT, CompareOp.LE):
                    high_q = q
                else:
                    low_q = q
        elif isinstance(predicate, BetweenPredicate):
            out[_SLOT_BETWEEN] = 1.0
            low_q = self._quantile(table, column, predicate.low)
            high_q = self._quantile(table, column, predicate.high)
        elif isinstance(predicate, InPredicate):
            out[_SLOT_IN] = 1.0
            eq_freq = min(
                sum(stats.equality_selectivity(v) for v in predicate.values), 1.0
            )
        elif isinstance(predicate, LikePredicate):
            out[_SLOT_NOT_LIKE if predicate.negated else _SLOT_LIKE] = 1.0
            pattern = predicate.pattern
            like_shape = [
                1.0 if pattern.startswith("%") else 0.0,
                1.0 if pattern.endswith("%") else 0.0,
                min(sum(c in "%_" for c in pattern) / 4.0, 1.0),
                min(len(pattern.replace("%", "").replace("_", "")) / 12.0, 1.0),
            ]
        else:
            raise TypeError(f"unsupported predicate type {type(predicate).__name__}")

        cursor = _NUM_OP_SLOTS
        out[cursor: cursor + 3] = [low_q, high_q, eq_freq]
        cursor += 3
        out[cursor: cursor + 4] = like_shape
        cursor += 4
        out[cursor: cursor + 2] = self._column_scalars(table, column)
        return out

    def featurize_conjunction(self, conjunction: Conjunction) -> tuple[np.ndarray, np.ndarray]:
        """A conjunction -> (token matrix, column-index vector).

        Row 0 is a summary token (all zeros except a table log-size
        scalar in the last slot); rows 1.. are the predicates.  The
        column-index vector aligns with rows (index 0 = a shared
        "no column" slot handled by the caller).
        """
        table = conjunction.table
        tokens = [np.zeros(self.config.predicate_feature_dim, dtype=np.float64)]
        tokens[0][-1] = np.log10(max(self.db.statistics(table).num_rows, 1)) / 7.0
        column_ids = [0]
        for predicate in conjunction.predicates:
            tokens.append(self.featurize_predicate(predicate))
            key = (table, predicate.column_names()[0])
            column_ids.append(self.column_index[key] + 1)  # 0 reserved
        return np.stack(tokens), np.asarray(column_ids, dtype=np.int64)
