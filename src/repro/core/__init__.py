"""``repro.core`` — the paper's contribution: the MTMLF-QO model.

Featurization (F), per-table encoders Enc_i, tree serialization with
decoding embeddings (Figures 3-4), the shared representation Trans_Share
(S), task heads and the Trans_JO join-order decoder (T), legality-aware
beam search, JOEU, the Equation 1/3 loss criteria, the joint trainer and
the MLA cross-DB meta-learner (Algorithm 1).
"""

from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    load_checkpoint,
    load_optimizer_state,
    read_checkpoint_meta,
    replicate_model,
    save_checkpoint,
)
from .beam import (
    BeamCandidate,
    BeamSearchState,
    beam_search_join_order,
    beam_search_join_order_sequential,
    connected_components,
    drive_beam_states,
    is_legal_order,
    require_connected,
)
from .config import ModelConfig
from .encoders import DatabaseFeaturizer, TableEncoder
from .featurize import PredicateFeaturizer
from .heads import EstimationHead
from .joeu import joeu, shared_prefix_length
from .losses import (
    join_order_token_loss,
    joint_loss,
    node_qerror_loss,
    sequence_level_loss,
    sequence_log_prob,
)
from .federated import (
    AggregationError,
    FederatedClient,
    FederatedConfig,
    FederatedTrainer,
    SHARED_MODULE_PREFIXES,
    aggregate_shared_states,
    shared_state_dict,
)
from .meta import MetaLearner, MLAConfig
from .model import EncodedQuery, FeatureCache, InferenceSession, MTMLFQO
from .serializer import (
    JoinTree,
    decoding_embeddings,
    join_tree_from_order,
    join_tree_from_plan,
    plan_signature,
    query_signature,
    serialize_plan,
    tree_from_embeddings,
)
from .shared import SharedRepresentation
from .trainer import JointTrainer, TrainingExample, TrainResult, order_positions
from .trans_jo import TransJO

__all__ = [
    "ModelConfig",
    "CheckpointError",
    "CHECKPOINT_FORMAT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "load_optimizer_state",
    "read_checkpoint_meta",
    "replicate_model",
    "PredicateFeaturizer",
    "TableEncoder",
    "DatabaseFeaturizer",
    "SharedRepresentation",
    "EstimationHead",
    "TransJO",
    "MTMLFQO",
    "EncodedQuery",
    "FeatureCache",
    "InferenceSession",
    "BeamCandidate",
    "BeamSearchState",
    "beam_search_join_order",
    "beam_search_join_order_sequential",
    "connected_components",
    "require_connected",
    "drive_beam_states",
    "is_legal_order",
    "joeu",
    "shared_prefix_length",
    "node_qerror_loss",
    "join_order_token_loss",
    "joint_loss",
    "sequence_level_loss",
    "sequence_log_prob",
    "JointTrainer",
    "TrainResult",
    "TrainingExample",
    "order_positions",
    "MetaLearner",
    "MLAConfig",
    "FederatedTrainer",
    "FederatedClient",
    "FederatedConfig",
    "AggregationError",
    "SHARED_MODULE_PREFIXES",
    "aggregate_shared_states",
    "shared_state_dict",
    "JoinTree",
    "join_tree_from_order",
    "join_tree_from_plan",
    "serialize_plan",
    "plan_signature",
    "query_signature",
    "decoding_embeddings",
    "tree_from_embeddings",
]
