"""(S) The shared representation module ``Trans_Share``.

A transformer encoder over the serialized plan-node embeddings E(P).
Its outputs (S_1, S_2, ...) correspond one-to-one to plan nodes; S_i
represents the sub-plan rooted at node N_i (Section 3.2).  The input
projection from raw node features to d_model belongs to this module —
the raw feature *layout* is database-agnostic, so the projection is
shared across DBs and participates in cross-DB meta-learning.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.spec import shape_spec
from .config import ModelConfig

__all__ = ["SharedRepresentation"]


class SharedRepresentation(nn.Module):
    """Input projection + tree-positional encoding + transformer encoder."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator | None = None):
        super().__init__()
        self.config = config
        rng = rng or np.random.default_rng(config.seed)
        self.input_proj = nn.Linear(config.node_feature_dim, config.d_model, rng=rng)
        self.encoder = nn.TransformerEncoder(
            config.d_model,
            config.num_heads,
            config.shared_layers,
            ff_dim=config.ff_dim,
            dropout=config.dropout,
            rng=rng,
        )

    @shape_spec(inputs={"node_features": "(B, L, node_feature_dim)",
                        "tree_encodings": "(B, L, d_model)"},
                out="(B, L, d_model)",
                params=("input_proj", "encoder"))
    def forward(
        self,
        node_features: nn.Tensor,
        tree_encodings: np.ndarray,
        key_padding_mask: np.ndarray | None = None,
    ) -> nn.Tensor:
        """(B, L, node_feature_dim) + (B, L, d_model) tree pos -> (B, L, d_model)."""
        x = self.input_proj(node_features)
        x = x + nn.Tensor(tree_encodings)
        return self.encoder(x, key_padding_mask=key_padding_mask)
