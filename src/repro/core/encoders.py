"""(F.ii) Per-table encoders ``Enc_i`` and the per-DB featurization module.

Each table gets a small transformer encoder over its filter-predicate
tokens; the pooled output ``E(f(T_i))`` represents "the distribution of
T_i after applying f(T_i)" (Section 3.2).  Per Algorithm 1 line 4, every
``Enc_i`` is trained *separately* on a single-table CardEst task: given
the filter predicate tokens, predict the log-selectivity of the filter.

``DatabaseFeaturizer`` bundles everything database-specific: the
predicate featurizer, a per-DB column embedding, one ``Enc_i`` per
table, and the selectivity training head.  This is the (F) module the
paper retrains per database while (S)/(T) transfer.

The encoders are built from dual-mode ``repro.nn`` layers (DESIGN.md
section 11): under serving's ``nn.no_grad()`` their forwards dispatch
to the no-tape raw-ndarray kernels automatically, bit-identical to the
tape path — nothing here needs to know which mode it runs in.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..sql.predicates import Conjunction
from ..sql.query import Query
from ..storage.catalog import Database
from ..workload.generator import generate_single_table_queries
from .config import ModelConfig
from .featurize import PredicateFeaturizer

__all__ = ["TableEncoder", "DatabaseFeaturizer"]


class TableEncoder(nn.Module):
    """``Enc_i``: transformer encoder over predicate tokens for one table."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.input_proj = nn.Linear(config.predicate_feature_dim + config.d_model // 2, config.d_model, rng=rng)
        self.encoder = nn.TransformerEncoder(
            config.d_model,
            config.num_heads,
            config.encoder_layers,
            ff_dim=config.ff_dim,
            dropout=config.dropout,
            rng=rng,
        )
        # Selectivity head used only for Enc_i's own single-table training.
        self.selectivity_head = nn.MLP([config.d_model, config.d_model, 1], rng=rng)

    def forward(self, tokens: np.ndarray, column_vectors: nn.Tensor) -> nn.Tensor:
        """Encode (L, feat_dim) predicate tokens -> (1, d_model) summary.

        ``column_vectors`` is (L, d_model // 2): the per-DB learned
        embedding of each token's column.
        """
        token_tensor = nn.Tensor(tokens[None, :, :])  # (1, L, F)
        col = column_vectors.reshape(1, column_vectors.shape[0], column_vectors.shape[1])
        x = nn.functional.concat([token_tensor, col], axis=2)
        x = self.input_proj(x)
        hidden = self.encoder(x)  # (1, L, d)
        return hidden[:, 0, :]  # summary token

    def predict_log_selectivity(self, tokens: np.ndarray, column_vectors: nn.Tensor) -> nn.Tensor:
        """Log-selectivity (<= 0) of the filter; Enc_i's training target."""
        summary = self.forward(tokens, column_vectors)
        raw = self.selectivity_head(summary).reshape(1).clip(-30.0, 30.0)
        # Selectivity lies in (0, 1]: parameterize log-sel = -softplus(raw),
        # which is always <= 0 and unbounded below.
        return -(raw.exp() + 1.0).log()


class DatabaseFeaturizer(nn.Module):
    """The complete (F) module for one database.

    Holds the database-specific knowledge: the statistics-based
    predicate featurizer, learned column embeddings, and one trained
    ``Enc_i`` per table.  Produces ``E(f(T_i))`` encodings consumed by
    the node assembler in :mod:`repro.core.model`.
    """

    def __init__(self, db: Database, config: ModelConfig | None = None, seed: int | None = None):
        super().__init__()
        self.db = db
        self.config = config or ModelConfig()
        seed = self.config.seed if seed is None else seed
        rng = np.random.default_rng(seed)
        self.predicates = PredicateFeaturizer(db, self.config)
        self.column_embedding = nn.Embedding(
            self.predicates.num_columns + 1, self.config.d_model // 2, rng=rng
        )
        self.encoders = {
            table: TableEncoder(self.config, rng) for table in db.table_names
        }

    # Parameter traversal and train/eval switching of the ``encoders``
    # dict are handled by the ``Module`` base class, which walks
    # dict-valued attributes in sorted-key order.

    def schema_signature(self) -> tuple:
        """Structural identity of the (F) module's learnable layout.

        Checkpoints persist this signature: a featurizer state dict only
        loads into a featurizer built over a schema with the same tables
        and per-table column lists (column embeddings are indexed by the
        schema-derived vocabulary, so any drift would silently permute
        them).
        """
        return self.predicates.schema_signature()

    # ------------------------------------------------------------------
    def encode_filter(self, conjunction: Conjunction) -> nn.Tensor:
        """``E(f(T_i))``: (1, d_model) encoding of a filtered table."""
        tokens, column_ids = self.predicates.featurize_conjunction(conjunction)
        column_vectors = self.column_embedding(column_ids)
        return self.encoders[conjunction.table](tokens, column_vectors)

    def predict_filter_selectivity(self, conjunction: Conjunction) -> nn.Tensor:
        """Log-selectivity prediction (Enc_i's training task)."""
        tokens, column_ids = self.predicates.featurize_conjunction(conjunction)
        column_vectors = self.column_embedding(column_ids)
        return self.encoders[conjunction.table].predict_log_selectivity(tokens, column_vectors)

    # ------------------------------------------------------------------
    def train_encoders(
        self,
        queries_per_table: int = 40,
        epochs: int = 30,
        seed: int = 0,
        verbose: bool = False,
    ) -> dict[str, float]:
        """Algorithm 1 line 4: train each ``Enc_i`` on single-table CardEst.

        Generates filter-only queries per table, computes true
        selectivities by evaluating the filters, and regresses the
        log-selectivity with an absolute-log (q-error) loss.  Returns the
        final mean loss per table.
        """
        losses: dict[str, float] = {}
        for table_index, table in enumerate(self.db.table_names):
            queries = generate_single_table_queries(
                self.db, table, queries_per_table, seed=seed + table_index
            )
            examples = []
            base = self.db.table(table)
            rows = max(base.num_rows, 1)
            for query in queries:
                conj = query.filter_for(table)
                true_rows = int(conj.evaluate(base).sum())
                selectivity = max(true_rows / rows, 1.0 / (10.0 * rows))
                examples.append((conj, np.log(selectivity)))
            encoder = self.encoders[table]
            params = encoder.parameters() + self.column_embedding.parameters()
            optimizer = nn.Adam(params, lr=self.config.learning_rate)
            final = 0.0
            for _ in range(epochs):
                total = 0.0
                for conj, target in examples:
                    optimizer.zero_grad()
                    pred = self.predict_filter_selectivity(conj)
                    loss = (pred - nn.Tensor(np.array([target]))).abs().mean()
                    loss.backward()
                    nn.clip_grad_norm(params, self.config.grad_clip)
                    optimizer.step()
                    total += loss.item()
                final = total / max(len(examples), 1)
            losses[table] = final
            if verbose:
                print(f"  Enc[{table}]: final |log sel| error {final:.3f}")
        return losses
