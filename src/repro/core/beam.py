"""Legality-aware beam search for join orders (Section 4.3).

The query's join predicates induce an adjacency matrix over its tables.
A legal left-deep join order must, at every timestamp after the first,
pick a table adjacent to at least one already-joined table (no cross
products).  The beam search expands the top-k candidates per step and
restricts expansion to legal tables, so every emitted candidate is
guaranteed executable; for a connected query the search can never dead-
end (a connected graph always has a spanning order from any start).

``legal=False`` candidates are additionally collectable (by disabling
the adjacency restriction) to feed the illegal-order penalty term of the
sequence-level loss (Equation 3).

Decoding is **batched** (DESIGN.md section 2): per timestep all active
beams are expanded with a single ``TransJO.step_logits_batch`` forward,
and the legality masks are vectorized numpy operations over the
adjacency matrix.  :class:`BeamSearchState` holds one query's beam
frontier so that many searches can be driven in lockstep off one shared
decoder call (see :func:`drive_beam_states` and
``MTMLFQO.predict_join_orders``).  The original one-forward-per-beam
path is kept as :func:`beam_search_join_order_sequential`; the batched
search is bit-identical to it (the parity tests assert so) because every
row of a batched forward performs the same float operations as the
corresponding single-row forward.

A disconnected join graph has no legal complete order; with legality
enforced the search detects this up front and raises ``ValueError``
naming the components instead of silently returning no candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DisconnectedQueryError

from .. import nn
from ..nn import functional as F

__all__ = [
    "BeamCandidate",
    "BeamSearchState",
    "beam_search_join_order",
    "beam_search_join_order_sequential",
    "connected_components",
    "require_connected",
    "drive_beam_states",
    "is_legal_order",
]


@dataclass
class BeamCandidate:
    """One decoded join order with its sequence log-probability."""

    positions: list[int]
    log_prob: float
    legal: bool

    def tables(self, table_names: list[str]) -> list[str]:
        return [table_names[p] for p in self.positions]


def is_legal_order(positions: list[int], adjacency: np.ndarray) -> bool:
    """True iff the order never joins a table disconnected from its prefix."""
    if not positions:
        return False
    joined = {positions[0]}
    for position in positions[1:]:
        if not any(adjacency[position, j] for j in joined):
            return False
        joined.add(position)
    return True


def connected_components(adjacency: np.ndarray) -> list[list[int]]:
    """Connected components of the join graph, as sorted position lists."""
    adjacency = np.asarray(adjacency, dtype=bool)
    m = adjacency.shape[0]
    seen: set[int] = set()
    components: list[list[int]] = []
    for root in range(m):
        if root in seen:
            continue
        frontier = [root]
        component = {root}
        while frontier:
            node = frontier.pop()
            for other in np.flatnonzero(adjacency[node]):
                other = int(other)
                if other not in component:
                    component.add(other)
                    frontier.append(other)
        seen |= component
        components.append(sorted(component))
    return components


def require_connected(adjacency: np.ndarray, tables: list[str] | None = None) -> None:
    """Raise ``ValueError`` naming the components if the graph is disconnected.

    ``tables`` renders components by table name instead of position.
    A disconnected join graph has no legal complete order, so every
    legality-enforcing decode checks this up front rather than silently
    dead-ending.
    """
    components = connected_components(adjacency)
    if len(components) > 1:
        render = (lambda p: tables[p]) if tables is not None else str
        rendered = "; ".join("{" + ", ".join(render(p) for p in c) + "}" for c in components)
        raise DisconnectedQueryError(
            f"query join graph is disconnected — components: {rendered}; "
            "no legal join order exists (cross products are not supported)"
        )


class BeamSearchState:
    """The beam frontier of one query's join-order decode.

    Holds the active prefixes as a dense ``(B, t)`` matrix plus their
    scores and used-table masks, and advances all beams at once from a
    ``(B, m)`` block of next-step log-probabilities.  The expansion and
    pruning rules replicate the sequential reference exactly (including
    stable tie-breaking), so candidates are bit-identical to it.
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        beam_width: int = 3,
        enforce_legality: bool = True,
        max_candidates: int = 16,
    ):
        self.adjacency = np.asarray(adjacency, dtype=bool)
        self.m = self.adjacency.shape[0]
        self.beam_width = beam_width
        self.enforce_legality = enforce_legality
        self.max_candidates = max_candidates
        self._adjacency_float = self.adjacency.astype(np.float64)
        self.prefixes = np.zeros((1, 0), dtype=np.int64)
        self.scores = np.zeros(1, dtype=np.float64)
        self.used = np.zeros((1, self.m), dtype=bool)
        self.done = self.m == 0

    @property
    def num_active(self) -> int:
        return 0 if self.done else self.prefixes.shape[0]

    def active_prefixes(self) -> list[list[int]]:
        return [row.tolist() for row in self.prefixes]

    def _allowed_mask(self) -> np.ndarray:
        """(B, m) mask of positions each beam may expand to."""
        allowed = ~self.used
        if self.enforce_legality and self.prefixes.shape[1] > 0:
            # A position is reachable iff adjacent to any prefix member;
            # membership == used (prefixes never repeat positions).
            connected = (self.used.astype(np.float64) @ self._adjacency_float) > 0.0
            allowed &= connected
        return allowed

    def advance(self, log_probs: np.ndarray) -> None:
        """Expand every active beam from its ``(B, m)`` log-probabilities."""
        if self.done:
            raise RuntimeError("advance() on a finished beam search")
        t = self.prefixes.shape[1]
        num_beams = self.prefixes.shape[0]
        allowed = self._allowed_mask()
        counts = allowed.sum(axis=1)
        if not counts.any():
            # Dead end (disconnected graph with legality enforced was
            # rejected up front; this guards duck-typed callers).
            self.prefixes = np.zeros((0, t), dtype=np.int64)
            self.scores = np.zeros(0, dtype=np.float64)
            self.done = True
            return
        # Per-beam top-k: stable argsort on -log_prob with disallowed
        # positions pushed past the end, matching the reference's stable
        # ``sorted(allowed, key=lambda p: -log_probs[p])[:beam_width]``.
        k = min(max(self.beam_width, 1), self.m)
        ranked = np.argsort(np.where(allowed, -log_probs, np.inf), axis=1, kind="stable")[:, :k]
        take = np.minimum(counts, k)
        valid = np.arange(k)[None, :] < take[:, None]
        beam_index = np.repeat(np.arange(num_beams), take)
        positions = ranked[valid]
        new_scores = self.scores[beam_index] + log_probs[beam_index, positions]
        # Global prune: stable sort by descending score (ties keep the
        # (beam, rank) emission order, as the reference's list.sort does).
        keep = max(self.beam_width, 1) if t + 1 < self.m else self.max_candidates
        order = np.argsort(-new_scores, kind="stable")[:keep]
        beam_index, positions, new_scores = beam_index[order], positions[order], new_scores[order]
        self.prefixes = np.concatenate(
            [self.prefixes[beam_index], positions[:, None]], axis=1
        )
        self.scores = new_scores
        self.used = self.used[beam_index].copy()
        self.used[np.arange(len(positions)), positions] = True
        self.done = self.prefixes.shape[1] == self.m

    def candidates(self) -> list[BeamCandidate]:
        """Completed candidates, sorted by descending log-probability."""
        out = [
            BeamCandidate(
                positions=prefix.tolist(),
                log_prob=float(score),
                legal=is_legal_order(prefix.tolist(), self.adjacency),
            )
            for prefix, score in zip(self.prefixes, self.scores)
            if len(prefix) == self.m
        ]
        out.sort(key=lambda c: -c.log_prob)
        return out[: self.max_candidates]


def drive_beam_states(
    trans_jo,
    memories: list[nn.Tensor],
    states: list[BeamSearchState],
    scratch: "nn.ScratchArena | None" = None,
) -> None:
    """Advance many beam searches in lockstep off shared decoder calls.

    ``memories[i]`` is the (1, m_i, d) encoder memory of ``states[i]``.
    Each global timestep gathers every active beam of every unfinished
    state — grouped by table count, so all rows of a call share one
    ``(B_group, m, d)`` shape — and performs one ``step_logits_batch``
    forward per group.  Grouping by size (rather than zero-padding to
    the largest query) keeps every gemm the same shape as a solo
    decode's, which is what makes the batched path bit-identical to the
    sequential reference: numpy's batched matmul runs one identically-
    shaped 2D product per row, while padded shapes may pick different
    BLAS kernels and differ in the last ulp.  Workloads have few
    distinct table counts, so the fan-in per call stays high.

    On the no-tape fast path each query's encoder memory is projected
    (cross-attention K/V per decoder layer, pointer keys) exactly once
    into a per-query :class:`nn.KVCache` created here — and therefore
    dropped here, so projections can never leak across decodes or model
    hot-swaps — then broadcast to the active beams and concatenated per
    step.  ``scratch`` is the caller's session-private arena for kernel
    output buffers.
    """
    if len(memories) != len(states):
        raise ValueError("one memory per beam state required")
    use_fast = nn.fastpath_enabled() and hasattr(trans_jo, "infer_step_logits_batch")
    # One cache per query, living exactly as long as this drive call.
    caches = [nn.KVCache(memory) for memory in memories] if use_fast else None
    # Assembled batched inputs depend only on (group, beam counts) —
    # which stabilize after the first step — so they too are memoized
    # for the duration of this drive (fast path only).
    assembled: dict[tuple, tuple] = {}
    with nn.no_grad():
        fast = use_fast and nn.no_tape_active()
        while True:
            by_size: dict[int, list[int]] = {}
            for i, state in enumerate(states):
                if not state.done:
                    by_size.setdefault(state.m, []).append(i)
            if not by_size:
                return
            for group in by_size.values():
                counts = [states[i].num_active for i in group]
                if fast:
                    # All states of a group advanced in lockstep from step
                    # 0, so their prefix matrices share one length — the
                    # concatenated dense matrix is exactly the padded
                    # batch pad_index_sequences would build from lists.
                    if len(group) == 1:
                        prefixes = states[group[0]].prefixes
                    else:
                        prefixes = np.concatenate(
                            [states[i].prefixes for i in group], axis=0
                        )
                    key = (tuple(group), tuple(counts))
                    cached = assembled.get(key)
                    if cached is None:
                        blocks = [
                            np.broadcast_to(memories[i].data, (n,) + memories[i].shape[1:])
                            for i, n in zip(group, counts)
                        ]
                        per_query = [trans_jo.infer_memory_kv(memories[i], caches[i]) for i in group]
                        memory_nd = np.concatenate(blocks, axis=0)
                        start_block = np.ascontiguousarray(
                            np.broadcast_to(
                                trans_jo.start_token.data.reshape(1, 1, -1),
                                (memory_nd.shape[0], 1, memory_nd.shape[2]),
                            )
                        )
                        cached = (
                            memory_nd,
                            *trans_jo.concat_memory_kv(per_query, counts),
                            start_block,
                        )
                        assembled[key] = cached
                    memory_nd, memory_kv, pointer_keys, start_block = cached
                    log_probs = nn.kernels.log_softmax(
                        trans_jo.infer_step_logits_batch(
                            memory_nd,
                            prefixes,
                            memory_kv=memory_kv,
                            pointer_keys=pointer_keys,
                            scratch=scratch,
                            start_block=start_block,
                        )
                    )
                else:
                    prefixes = []
                    for i in group:
                        prefixes.extend(states[i].active_prefixes())
                    blocks = [
                        np.broadcast_to(memories[i].data, (n,) + memories[i].shape[1:])
                        for i, n in zip(group, counts)
                    ]
                    logits = trans_jo.step_logits_batch(
                        nn.Tensor(np.concatenate(blocks, axis=0)), prefixes
                    )
                    log_probs = F.log_softmax(logits).data
                offset = 0
                for i in group:
                    n_beams = states[i].num_active
                    states[i].advance(log_probs[offset: offset + n_beams])
                    offset += n_beams


def beam_search_join_order(
    trans_jo,
    memory: nn.Tensor,
    adjacency: np.ndarray,
    beam_width: int = 3,
    enforce_legality: bool = True,
    max_candidates: int = 16,
    scratch: "nn.ScratchArena | None" = None,
) -> list[BeamCandidate]:
    """Decode join orders with batched beam search.

    Parameters
    ----------
    trans_jo:
        A :class:`repro.core.trans_jo.TransJO` (or anything exposing
        ``step_logits_batch(memory, prefixes) -> Tensor``; objects
        exposing only ``step_logits`` fall back to the sequential path).
    memory:
        (1, m, d) single-table representations from Trans_Share.
    adjacency:
        (m, m) boolean join adjacency of the query.
    enforce_legality:
        When True (inference), only adjacency-respecting expansions are
        considered — the emitted orders are guaranteed executable, and a
        disconnected join graph raises ``ValueError`` up front.  When
        False (loss collection), only the "no repeats" rule applies and
        candidates are labelled legal/illegal afterwards.

    Returns candidates sorted by descending log-probability.
    """
    adjacency = np.asarray(adjacency, dtype=bool)
    if enforce_legality:
        require_connected(adjacency)
    if not hasattr(trans_jo, "step_logits_batch"):
        return beam_search_join_order_sequential(
            trans_jo,
            memory,
            adjacency,
            beam_width=beam_width,
            enforce_legality=enforce_legality,
            max_candidates=max_candidates,
        )
    state = BeamSearchState(
        adjacency,
        beam_width=beam_width,
        enforce_legality=enforce_legality,
        max_candidates=max_candidates,
    )
    drive_beam_states(trans_jo, [memory], [state], scratch=scratch)
    return state.candidates()


def beam_search_join_order_sequential(
    trans_jo,
    memory: nn.Tensor,
    adjacency: np.ndarray,
    beam_width: int = 3,
    enforce_legality: bool = True,
    max_candidates: int = 16,
) -> list[BeamCandidate]:
    """Reference beam search: one decoder forward per beam per timestep.

    Kept as the ground truth the batched path is parity-tested against,
    and as the baseline of ``benchmarks/bench_batched_decode.py``.
    """
    if enforce_legality:
        require_connected(adjacency)
    m = memory.shape[1]
    # Per-search KV cache (fast path only): projections of this memory
    # are computed once and die with this search.
    kv_cache = nn.KVCache(memory) if hasattr(trans_jo, "infer_memory_kv") else None
    beams: list[tuple[list[int], float]] = [([], 0.0)]
    for _ in range(m):
        expansions: list[tuple[list[int], float]] = []
        for prefix, score in beams:
            with nn.no_grad():
                if kv_cache is not None:
                    logits = trans_jo.step_logits(memory, prefix, kv_cache=kv_cache)
                else:
                    logits = trans_jo.step_logits(memory, prefix)
            log_probs = F.log_softmax(logits.reshape(1, -1)).data.reshape(-1)
            allowed = _allowed_positions(prefix, adjacency, enforce_legality)
            if not allowed:
                continue
            ranked = sorted(allowed, key=lambda p: -log_probs[p])[:beam_width]
            for position in ranked:
                expansions.append((prefix + [position], score + float(log_probs[position])))
        if not expansions:
            break
        expansions.sort(key=lambda item: -item[1])
        beams = expansions[: max(beam_width, 1) if len(expansions[0][0]) < m else max_candidates]

    candidates = [
        BeamCandidate(
            positions=prefix,
            log_prob=score,
            legal=is_legal_order(prefix, adjacency),
        )
        for prefix, score in beams
        if len(prefix) == m
    ]
    candidates.sort(key=lambda c: -c.log_prob)
    return candidates[:max_candidates]


def _allowed_positions(prefix: list[int], adjacency: np.ndarray, enforce_legality: bool) -> list[int]:
    m = adjacency.shape[0]
    used = set(prefix)
    allowed = []
    for position in range(m):
        if position in used:
            continue
        if enforce_legality and prefix:
            if not any(adjacency[position, j] for j in prefix):
                continue
        allowed.append(position)
    return allowed
