"""Legality-aware beam search for join orders (Section 4.3).

The query's join predicates induce an adjacency matrix over its tables.
A legal left-deep join order must, at every timestamp after the first,
pick a table adjacent to at least one already-joined table (no cross
products).  The beam search expands the top-k candidates per step and
restricts expansion to legal tables, so every emitted candidate is
guaranteed executable; for a connected query the search can never dead-
end (a connected graph always has a spanning order from any start).

``legal=False`` candidates are additionally collectable (by disabling
the adjacency restriction) to feed the illegal-order penalty term of the
sequence-level loss (Equation 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn import functional as F

__all__ = ["BeamCandidate", "beam_search_join_order", "is_legal_order"]


@dataclass
class BeamCandidate:
    """One decoded join order with its sequence log-probability."""

    positions: list[int]
    log_prob: float
    legal: bool

    def tables(self, table_names: list[str]) -> list[str]:
        return [table_names[p] for p in self.positions]


def is_legal_order(positions: list[int], adjacency: np.ndarray) -> bool:
    """True iff the order never joins a table disconnected from its prefix."""
    if not positions:
        return False
    joined = {positions[0]}
    for position in positions[1:]:
        if not any(adjacency[position, j] for j in joined):
            return False
        joined.add(position)
    return True


def beam_search_join_order(
    trans_jo,
    memory: nn.Tensor,
    adjacency: np.ndarray,
    beam_width: int = 3,
    enforce_legality: bool = True,
    max_candidates: int = 16,
) -> list[BeamCandidate]:
    """Decode join orders with beam search.

    Parameters
    ----------
    trans_jo:
        A :class:`repro.core.trans_jo.TransJO` (or anything exposing
        ``step_logits(memory, prefix) -> Tensor``).
    memory:
        (1, m, d) single-table representations from Trans_Share.
    adjacency:
        (m, m) boolean join adjacency of the query.
    enforce_legality:
        When True (inference), only adjacency-respecting expansions are
        considered — the emitted orders are guaranteed executable.  When
        False (loss collection), only the "no repeats" rule applies and
        candidates are labelled legal/illegal afterwards.

    Returns candidates sorted by descending log-probability.
    """
    m = memory.shape[1]
    beams: list[tuple[list[int], float]] = [([], 0.0)]
    for _ in range(m):
        expansions: list[tuple[list[int], float]] = []
        for prefix, score in beams:
            with nn.no_grad():
                logits = trans_jo.step_logits(memory, prefix)
            log_probs = F.log_softmax(logits.reshape(1, -1)).data.reshape(-1)
            allowed = _allowed_positions(prefix, adjacency, enforce_legality)
            if not allowed:
                continue
            ranked = sorted(allowed, key=lambda p: -log_probs[p])[:beam_width]
            for position in ranked:
                expansions.append((prefix + [position], score + float(log_probs[position])))
        if not expansions:
            break
        expansions.sort(key=lambda item: -item[1])
        beams = expansions[: max(beam_width, 1) if len(expansions[0][0]) < m else max_candidates]

    candidates = [
        BeamCandidate(
            positions=prefix,
            log_prob=score,
            legal=is_legal_order(prefix, adjacency),
        )
        for prefix, score in beams
        if len(prefix) == m
    ]
    candidates.sort(key=lambda c: -c.log_prob)
    return candidates[:max_candidates]


def _allowed_positions(prefix: list[int], adjacency: np.ndarray, enforce_legality: bool) -> list[int]:
    m = adjacency.shape[0]
    used = set(prefix)
    allowed = []
    for position in range(m):
        if position in used:
            continue
        if enforce_legality and prefix:
            if not any(adjacency[position, j] for j in prefix):
                continue
        allowed.append(position)
    return allowed
