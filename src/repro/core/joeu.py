"""JOEU — Join Order Evaluation Understudy (Section 5).

Inspired by BLEU: ``JOEU(u, u*)`` is the length of the shared prefix of
the generated join order ``u`` and the optimal order ``u*``, divided by
the sequence length.  Motivation (from the paper): if the partial join
order up to timestamp t is not optimal, the overall order cannot be
optimal regardless of what follows, so only the shared prefix counts.
"""

from __future__ import annotations

__all__ = ["joeu", "shared_prefix_length"]


def shared_prefix_length(u: list, u_star: list) -> int:
    """Length of the common prefix of two sequences."""
    count = 0
    for a, b in zip(u, u_star):
        if a != b:
            break
        count += 1
    return count


def joeu(u: list, u_star: list) -> float:
    """JOEU(u, u*) in [0, 1]; 1 iff the orders are identical.

    Sequences of different lengths are compared over the longer length
    (trailing mismatch counts against the score).
    """
    if not u_star and not u:
        return 1.0
    length = max(len(u), len(u_star))
    return shared_prefix_length(u, u_star) / length
