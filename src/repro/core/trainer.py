"""(L) Joint multi-task training of MTMLF-QO.

Implements the paper's training procedure: all three QO tasks trained
jointly under the Equation 1 criterion, gradients updating the (S) and
(T) modules only (featurizers are pre-trained separately per Algorithm 1
line 4 and frozen here).  Optionally refines Trans_JO with the
sequence-level criterion of Equation 3 (Section 5).

Single-task ablations (MTMLF-CardEst / -CostEst / -JoinSel of Tables
1-2) are obtained by zeroing the other tasks' loss weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..workload.labeler import LabeledQuery
from .config import ModelConfig
from .losses import (
    join_order_token_loss,
    joint_loss,
    node_qerror_loss,
    sequence_level_loss,
)
from .model import MTMLFQO

__all__ = ["TrainingExample", "JointTrainer", "TrainResult"]

# A training example is (database name, labeled query).
TrainingExample = tuple[str, LabeledQuery]

_COST_FLOOR = 1e-6


@dataclass
class TrainResult:
    """Per-epoch loss history."""

    epoch_losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


def order_positions(labeled: LabeledQuery) -> list[int]:
    """Optimal join order as positions into ``query.tables``."""
    if labeled.optimal_order is None:
        raise ValueError("query has no optimal-order label")
    index = {table: i for i, table in enumerate(labeled.query.tables)}
    return [index[table] for table in labeled.optimal_order]


def planner_order_positions(labeled: LabeledQuery) -> list[int] | None:
    """The initial plan's join order as positions (weak JoinSel label).

    The paper's Section 3.2 research note suggests two-phase training:
    an existing DBMS generates *sub-optimal* join orders to bootstrap
    the model before the expensive optimal orders refine it.  The weak
    label is simply the initial plan's leaf order (left-deep plans).
    """
    if not labeled.plan.is_left_deep():
        return None
    index = {table: i for i, table in enumerate(labeled.query.tables)}
    return [index[table] for table in labeled.plan.leaf_tables_in_order()]


class JointTrainer:
    """Trains (S)+(T) on labeled queries from one or many databases."""

    def __init__(self, model: MTMLFQO, learning_rate: float | None = None):
        self.model = model
        self.config: ModelConfig = model.config
        self.parameters = model.shared_task_parameters()
        # Named parameters: the optimizer's moment estimates are keyed by
        # parameter name, so warm-start state saved in a checkpoint can
        # only ever restore onto the parameters it was computed for.
        self.optimizer = nn.Adam(
            model.named_parameters(), lr=learning_rate or self.config.learning_rate
        )
        # Which join-order labels _batch_losses trains on: "optimal" uses
        # the (expensive) exact orders; "planner" uses the initial plan's
        # order as weak supervision (two-phase training, Section 3.2).
        self.jo_label_source = "optimal"

    # ------------------------------------------------------------------
    def _batch_losses(self, db_name: str, batch: list[LabeledQuery]) -> nn.Tensor:
        log_cards, log_costs, pad_mask, encodings, shared = self.model.predict_log_nodes(db_name, batch)
        max_len = log_cards.shape[1]

        card_targets = np.ones((len(batch), max_len), dtype=np.float64)
        cost_targets = np.full((len(batch), max_len), _COST_FLOOR, dtype=np.float64)
        for i, item in enumerate(batch):
            card_targets[i, : item.num_nodes] = item.node_cardinalities
            cost_targets[i, : item.num_nodes] = item.node_costs
        valid = ~pad_mask

        card_loss = None
        cost_loss = None
        if self.config.w_card:
            card_loss = node_qerror_loss(log_cards, card_targets, mask=valid)
        if self.config.w_cost:
            cost_loss = node_qerror_loss(log_costs, cost_targets, mask=valid, floor=_COST_FLOOR)

        jo_loss = None
        if self.config.w_jo:
            jo_terms = []
            for i, item in enumerate(batch):
                if item.query.num_tables < 2:
                    continue
                if self.jo_label_source == "planner":
                    positions = planner_order_positions(item)
                elif item.optimal_order is not None:
                    positions = order_positions(item)
                else:
                    positions = None
                if positions is None:
                    continue
                memory = self.model.join_order_memory(shared[i], encodings[i], item.query.tables)
                logits = self.model.trans_jo(memory, positions)
                jo_terms.append(join_order_token_loss(logits, positions))
            if jo_terms:
                jo_loss = jo_terms[0]
                for term in jo_terms[1:]:
                    jo_loss = jo_loss + term
                jo_loss = jo_loss * (1.0 / len(jo_terms))

        return joint_loss(
            card_loss,
            cost_loss,
            jo_loss,
            w_card=self.config.w_card,
            w_cost=self.config.w_cost,
            w_jo=self.config.w_jo,
        )

    def train(
        self,
        examples: list[TrainingExample],
        epochs: int = 20,
        batch_size: int = 16,
        seed: int = 0,
        verbose: bool = False,
    ) -> TrainResult:
        """Run joint training; examples may mix databases (MLA shuffles)."""
        if not examples:
            raise ValueError("no training examples")
        rng = np.random.default_rng(seed)
        result = TrainResult()
        self.model.train()
        for epoch in range(epochs):
            order = rng.permutation(len(examples))
            # Database-boundary splits produce ragged batches; weight
            # each batch by its example count so the epoch loss is the
            # per-example mean rather than biased toward tiny batches.
            total, count = 0.0, 0
            batch: list[LabeledQuery] = []
            batch_db: str | None = None
            for idx in order:
                db_name, item = examples[idx]
                if batch and (db_name != batch_db or len(batch) >= batch_size):
                    total += self._step(batch_db, batch) * len(batch)
                    count += len(batch)
                    batch = []
                batch_db = db_name
                batch.append(item)
            if batch:
                total += self._step(batch_db, batch) * len(batch)
                count += len(batch)
            epoch_loss = total / max(count, 1)
            result.epoch_losses.append(epoch_loss)
            if verbose:
                print(f"  epoch {epoch + 1}/{epochs}: loss {epoch_loss:.4f}")
        self.model.mark_updated()
        self.model.eval()
        return result

    # ------------------------------------------------------------------
    def save_checkpoint(self, path: str) -> str:
        """Persist the model *and* this trainer's Adam state to ``path``.

        Returns the resolved path; ``warm_start`` (or
        :func:`repro.core.checkpoint.load_optimizer_state`) restores the
        optimizer moments so training resumes where it left off instead
        of re-warming from zeroed moments.
        """
        from .checkpoint import save_checkpoint

        return save_checkpoint(self.model, path, optimizer=self.optimizer)

    @classmethod
    def warm_start(cls, path: str, databases, learning_rate: float | None = None) -> "JointTrainer":
        """Rebuild a trainer (model + optimizer moments) from a checkpoint.

        The checkpoint's Adam hyper-parameters (lr, betas, eps, weight
        decay) are restored along with the moments — resuming really
        does continue the saved run; pass ``learning_rate`` to override
        the saved lr deliberately.
        """
        from .checkpoint import load_checkpoint, load_optimizer_state, read_checkpoint_meta

        model = load_checkpoint(path, databases=databases)
        trainer = cls(model, learning_rate=learning_rate)
        load_optimizer_state(path, trainer.optimizer)
        saved = read_checkpoint_meta(path)["optimizer"]
        trainer.optimizer.beta1, trainer.optimizer.beta2 = saved["betas"]
        trainer.optimizer.eps = saved["eps"]
        trainer.optimizer.weight_decay = saved["weight_decay"]
        if learning_rate is None:
            trainer.optimizer.lr = saved["lr"]
        return trainer

    def _step(self, db_name: str, batch: list[LabeledQuery]) -> float:
        self.optimizer.zero_grad()
        loss = self._batch_losses(db_name, batch)
        loss.backward()
        nn.clip_grad_norm(self.parameters, self.config.grad_clip)
        self.optimizer.step()
        return loss.item()

    # ------------------------------------------------------------------
    def refine_sequence_level(
        self,
        examples: list[TrainingExample],
        epochs: int = 3,
        seed: int = 0,
        verbose: bool = False,
        collect_batch: int = 8,
    ) -> TrainResult:
        """Section 5: refine Trans_JO with the Equation 3 criterion.

        Beam candidates (legality *not* enforced, so illegal orders can
        be penalized) are re-scored differentiably and the JOEU-weighted
        sequence loss is applied.

        Candidate collection goes through the batched decoding subsystem
        (``MTMLFQO.beam_candidates_batch``): per database, groups of
        ``collect_batch`` queries share one Trans_Share forward and one
        lockstep beam decode, instead of a full per-beam decoder call
        per query.  Candidates within a group are sampled from the
        parameters at the group boundary (at most ``collect_batch - 1``
        gradient steps stale) — U(x) in Equation 3 is just a sampled
        candidate set, so this does not change the criterion, only the
        sampling schedule.
        """
        eligible = [
            (db, item)
            for db, item in examples
            if item.optimal_order is not None and item.query.num_tables >= 2
        ]
        if not eligible:
            raise ValueError("no examples with optimal-order labels")
        collect_batch = max(collect_batch, 1)
        rng = np.random.default_rng(seed)
        result = TrainResult()
        self.model.train()
        for epoch in range(epochs):
            order = rng.permutation(len(eligible))
            total = 0.0
            for group_start in range(0, len(order), collect_batch):
                group = [eligible[idx] for idx in order[group_start: group_start + collect_batch]]
                # Collection is batched per database run within the group.
                group_candidates: list = []
                run_start = 0
                while run_start < len(group):
                    run_db = group[run_start][0]
                    run_end = run_start
                    while run_end < len(group) and group[run_end][0] == run_db:
                        run_end += 1
                    group_candidates.extend(
                        self.model.beam_candidates_batch(
                            run_db,
                            [item for _, item in group[run_start:run_end]],
                            enforce_legality=False,
                        )
                    )
                    run_start = run_end
                for (db_name, item), candidates in zip(group, group_candidates):
                    self.optimizer.zero_grad()
                    shared, _, encodings = self.model.forward_batch(db_name, [item])
                    memory = self.model.join_order_memory(shared[0], encodings[0], item.query.tables)
                    loss = sequence_level_loss(
                        self.model.trans_jo,
                        memory,
                        order_positions(item),
                        candidates,
                        penalty=self.config.sequence_loss_lambda,
                    )
                    loss.backward()
                    nn.clip_grad_norm(self.parameters, self.config.grad_clip)
                    self.optimizer.step()
                    total += loss.item()
            epoch_loss = total / len(eligible)
            result.epoch_losses.append(epoch_loss)
            if verbose:
                print(f"  seq epoch {epoch + 1}/{epochs}: loss {epoch_loss:.4f}")
        self.model.mark_updated()
        self.model.eval()
        return result
