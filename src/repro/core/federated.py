"""Federated MLA — the paper's Section 7 research opportunity.

The paper's cloud workflow trains MTMLF on many users' databases, and
explicitly proposes federated learning so the provider never sees raw
data: users compute gradients locally and share only model updates
("anonymous training data or gradients of model parameters").

``FederatedTrainer`` implements FedAvg (McMahan et al.) over the shared
(S) and task (T) modules:

1. the server broadcasts the current (S)/(T) weights to every client;
2. each client runs local epochs of the Equation 1 criterion on its own
   labeled workload — raw tuples and queries never leave the client;
3. the server averages the returned weights, weighted by client example
   counts.

Per-database featurizers (F) are trained entirely client-side and are
never shared — consistent with the MLA design (all database-specific
knowledge stays in (F)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..storage.catalog import Database
from ..workload.labeler import LabeledQuery
from .config import ModelConfig
from .encoders import DatabaseFeaturizer
from .model import MTMLFQO
from .trainer import JointTrainer

__all__ = ["FederatedClient", "FederatedTrainer", "FederatedConfig"]


@dataclass
class FederatedConfig:
    """Knobs for federated pre-training."""

    rounds: int = 5
    local_epochs: int = 2
    batch_size: int = 16
    encoder_queries_per_table: int = 15
    encoder_epochs: int = 6
    seed: int = 0
    verbose: bool = False


@dataclass
class FederatedClient:
    """One participating database and its private labeled workload."""

    db: Database
    workload: list[LabeledQuery]
    featurizer: DatabaseFeaturizer | None = None

    @property
    def num_examples(self) -> int:
        return len(self.workload)


class FederatedTrainer:
    """FedAvg over the (S)/(T) modules of MTMLF-QO."""

    def __init__(self, model_config: ModelConfig | None = None, fed_config: FederatedConfig | None = None):
        self.model_config = model_config or ModelConfig()
        self.fed_config = fed_config or FederatedConfig()
        self.server_model = MTMLFQO(self.model_config)
        self.round_losses: list[float] = []

    # ------------------------------------------------------------------
    def prepare_client(self, client: FederatedClient) -> None:
        """Client-side: train the private featurization module (F)."""
        if client.featurizer is None:
            client.featurizer = DatabaseFeaturizer(client.db, self.model_config)
            client.featurizer.train_encoders(
                queries_per_table=self.fed_config.encoder_queries_per_table,
                epochs=self.fed_config.encoder_epochs,
                seed=self.fed_config.seed,
                verbose=self.fed_config.verbose,
            )
        # The server model needs the featurizer handle to *evaluate* on
        # this client; in a real deployment evaluation also happens
        # client-side and only metrics travel.
        self.server_model.attach_featurizer(client.db.name, client.featurizer)

    def _client_update(self, client: FederatedClient, seed: int) -> tuple[dict, float]:
        """One client's local training pass; returns (weights, mean loss)."""
        local = MTMLFQO(self.model_config)
        local.attach_featurizer(client.db.name, client.featurizer)
        local.load_state_dict(self.server_model.state_dict())
        trainer = JointTrainer(local)
        result = trainer.train(
            [(client.db.name, item) for item in client.workload],
            epochs=self.fed_config.local_epochs,
            batch_size=self.fed_config.batch_size,
            seed=seed,
            verbose=False,
        )
        return local.state_dict(), result.final_loss

    def train(self, clients: list[FederatedClient]) -> list[float]:
        """Run federated rounds; returns the per-round mean client loss."""
        if not clients:
            raise ValueError("no federated clients")
        for client in clients:
            if not client.workload:
                raise ValueError(f"client {client.db.name!r} has an empty workload")
            self.prepare_client(client)

        for round_index in range(self.fed_config.rounds):
            states: list[dict] = []
            weights: list[float] = []
            losses: list[float] = []
            for i, client in enumerate(clients):
                state, loss = self._client_update(
                    client, seed=self.fed_config.seed + round_index * 97 + i
                )
                states.append(state)
                weights.append(float(client.num_examples))
                losses.append(loss)
            self._aggregate(states, weights)
            round_loss = float(np.average(losses, weights=weights))
            self.round_losses.append(round_loss)
            if self.fed_config.verbose:
                print(f"  federated round {round_index + 1}/{self.fed_config.rounds}: loss {round_loss:.4f}")
        return self.round_losses

    def _aggregate(self, states: list[dict], weights: list[float]) -> None:
        """Server-side FedAvg: example-weighted parameter mean."""
        total = sum(weights)
        merged: dict[str, np.ndarray] = {}
        for name in states[0]:
            merged[name] = sum(
                state[name] * (weight / total) for state, weight in zip(states, weights)
            )
        self.server_model.load_state_dict(merged)
        self.server_model.mark_updated()

    # ------------------------------------------------------------------
    def transfer(self, new_db: Database, featurizer: DatabaseFeaturizer | None = None) -> None:
        """Deploy the federated model on a new database (train (F) only)."""
        if featurizer is None:
            featurizer = DatabaseFeaturizer(new_db, self.model_config)
            featurizer.train_encoders(
                queries_per_table=self.fed_config.encoder_queries_per_table,
                epochs=self.fed_config.encoder_epochs,
                seed=self.fed_config.seed,
            )
        self.server_model.attach_featurizer(new_db.name, featurizer)
