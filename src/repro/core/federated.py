"""Federated MLA — the paper's Section 7 research opportunity.

The paper's cloud workflow trains MTMLF on many users' databases, and
explicitly proposes federated learning so the provider never sees raw
data: users compute gradients locally and share only model updates
("anonymous training data or gradients of model parameters").

``FederatedTrainer`` implements FedAvg (McMahan et al.) over the shared
(S) and task (T) modules:

1. the server broadcasts the current (S)/(T) weights to every client;
2. each client runs local epochs of the Equation 1 criterion on its own
   labeled workload — raw tuples and queries never leave the client;
3. the server averages the returned weights, weighted by client example
   counts.

Per-database featurizers (F) are trained entirely client-side and are
never shared — consistent with the MLA design (all database-specific
knowledge stays in (F)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..storage.catalog import Database
from ..workload.labeler import LabeledQuery
from .config import ModelConfig
from .encoders import DatabaseFeaturizer
from .model import MTMLFQO
from .trainer import JointTrainer

__all__ = [
    "AggregationError",
    "FederatedClient",
    "FederatedTrainer",
    "FederatedConfig",
    "SHARED_MODULE_PREFIXES",
    "aggregate_shared_states",
    "shared_state_dict",
]

# The modules whose parameters are shared across the federation: the
# representation module (S) and the task modules (T).  Everything else —
# in particular per-database featurizer (F) parameters — is private to
# its client and must never travel or be averaged.
SHARED_MODULE_PREFIXES = ("shared.", "card_head.", "cost_head.", "trans_jo.")


class AggregationError(ValueError):
    """A FedAvg merge could not be performed safely: a client state is
    missing a shared (S)/(T) parameter, a shape disagrees across clients,
    or the inputs are malformed (no states, weight mismatch)."""


def shared_state_dict(model: MTMLFQO) -> dict[str, np.ndarray]:
    """The name-keyed (S)/(T) parameters of ``model`` — the only state a
    federation participant is allowed to ship.

    Selected by parameter-name prefix (:data:`SHARED_MODULE_PREFIXES`),
    so even a state dict that happened to contain featurizer entries
    could never leak them through this function.
    """
    return {
        name: value
        for name, value in model.state_dict().items()
        if name.startswith(SHARED_MODULE_PREFIXES)
    }


def aggregate_shared_states(
    states: list[dict],
    weights: list[float],
    reference: dict | None = None,
) -> dict[str, np.ndarray]:
    """Example-weighted FedAvg over the shared (S)/(T) parameters only.

    ``reference`` (defaults to ``states[0]``) fixes the shared key set
    and shapes being merged — typically the server model's state dict.
    Only parameters whose names carry a :data:`SHARED_MODULE_PREFIXES`
    prefix are averaged; any other key a client state contains (e.g. a
    per-database featurizer parameter) is ignored, never merged — the
    "(F) is never shared" contract.  A client state *missing* a shared
    key, or carrying one with a mismatched shape, raises
    :class:`AggregationError` naming the client and parameter.
    """
    if not states:
        raise AggregationError("no client states to aggregate")
    if len(states) != len(weights):
        raise AggregationError(
            f"{len(states)} client states but {len(weights)} weights"
        )
    if any(weight <= 0 for weight in weights):
        raise AggregationError(f"client weights must be positive, got {weights}")
    reference = states[0] if reference is None else reference
    shared_names = sorted(
        name for name in reference if name.startswith(SHARED_MODULE_PREFIXES)
    )
    if not shared_names:
        raise AggregationError(
            "reference state holds no shared (S)/(T) parameters "
            f"(expected names starting with {SHARED_MODULE_PREFIXES})"
        )
    total = float(sum(weights))
    merged: dict[str, np.ndarray] = {}
    for name in shared_names:
        expected_shape = np.asarray(reference[name]).shape
        accumulator: np.ndarray | None = None
        for client_index, (state, weight) in enumerate(zip(states, weights)):
            if name not in state:
                raise AggregationError(
                    f"client {client_index} state is missing shared parameter {name!r}"
                )
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != expected_shape:
                raise AggregationError(
                    f"shape mismatch for shared parameter {name!r}: "
                    f"client {client_index} has {value.shape}, expected {expected_shape}"
                )
            contribution = value * (weight / total)
            accumulator = contribution if accumulator is None else accumulator + contribution
        merged[name] = accumulator
    return merged


@dataclass
class FederatedConfig:
    """Knobs for federated pre-training."""

    rounds: int = 5
    local_epochs: int = 2
    batch_size: int = 16
    encoder_queries_per_table: int = 15
    encoder_epochs: int = 6
    seed: int = 0
    verbose: bool = False


@dataclass
class FederatedClient:
    """One participating database and its private labeled workload."""

    db: Database
    workload: list[LabeledQuery]
    featurizer: DatabaseFeaturizer | None = None

    @property
    def num_examples(self) -> int:
        return len(self.workload)


class FederatedTrainer:
    """FedAvg over the (S)/(T) modules of MTMLF-QO."""

    def __init__(self, model_config: ModelConfig | None = None, fed_config: FederatedConfig | None = None):
        self.model_config = model_config or ModelConfig()
        self.fed_config = fed_config or FederatedConfig()
        self.server_model = MTMLFQO(self.model_config)
        self.round_losses: list[float] = []
        # Per-client Adam moments (name-keyed state dicts), carried
        # across rounds: each round's local pass resumes the client's
        # own optimizer trajectory instead of re-warming from zeroed
        # moments on a freshly built trainer.
        self._client_optimizer_state: dict[str, dict] = {}

    # ------------------------------------------------------------------
    def prepare_client(self, client: FederatedClient) -> None:
        """Client-side: train the private featurization module (F)."""
        if client.featurizer is None:
            client.featurizer = DatabaseFeaturizer(client.db, self.model_config)
            client.featurizer.train_encoders(
                queries_per_table=self.fed_config.encoder_queries_per_table,
                epochs=self.fed_config.encoder_epochs,
                seed=self.fed_config.seed,
                verbose=self.fed_config.verbose,
            )
        # The server model needs the featurizer handle to *evaluate* on
        # this client; in a real deployment evaluation also happens
        # client-side and only metrics travel.
        self.server_model.attach_featurizer(client.db.name, client.featurizer)

    def _client_update(self, client: FederatedClient, seed: int) -> tuple[dict, float]:
        """One client's local training pass; returns (weights, mean loss)."""
        local = MTMLFQO(self.model_config)
        local.attach_featurizer(client.db.name, client.featurizer)
        local.load_state_dict(self.server_model.state_dict())
        trainer = JointTrainer(local)
        saved_optimizer = self._client_optimizer_state.get(client.db.name)
        if saved_optimizer is not None:
            trainer.optimizer.load_state_dict(saved_optimizer)
        result = trainer.train(
            [(client.db.name, item) for item in client.workload],
            epochs=self.fed_config.local_epochs,
            batch_size=self.fed_config.batch_size,
            seed=seed,
            verbose=False,
        )
        self._client_optimizer_state[client.db.name] = trainer.optimizer.state_dict()
        return shared_state_dict(local), result.final_loss

    def train(self, clients: list[FederatedClient]) -> list[float]:
        """Run federated rounds; returns the per-round mean client loss."""
        if not clients:
            raise ValueError("no federated clients")
        for client in clients:
            if not client.workload:
                raise ValueError(f"client {client.db.name!r} has an empty workload")
            self.prepare_client(client)

        for round_index in range(self.fed_config.rounds):
            states: list[dict] = []
            weights: list[float] = []
            losses: list[float] = []
            for i, client in enumerate(clients):
                state, loss = self._client_update(
                    client, seed=self.fed_config.seed + round_index * 97 + i
                )
                states.append(state)
                weights.append(float(client.num_examples))
                losses.append(loss)
            self._aggregate(states, weights)
            round_loss = float(np.average(losses, weights=weights))
            self.round_losses.append(round_loss)
            if self.fed_config.verbose:
                print(f"  federated round {round_index + 1}/{self.fed_config.rounds}: loss {round_loss:.4f}")
        return self.round_losses

    def _aggregate(self, states: list[dict], weights: list[float]) -> None:
        """Server-side FedAvg over shared (S)/(T) parameters only.

        Keys are selected *by name* against the server model's shared
        parameter set (:func:`aggregate_shared_states`): per-client
        featurizer parameters can never be averaged across clients with
        different schemas, and a missing or shape-mismatched shared key
        raises :class:`AggregationError` instead of corrupting the merge.
        """
        merged = aggregate_shared_states(
            states, weights, reference=self.server_model.state_dict()
        )
        self.server_model.load_state_dict(merged)
        self.server_model.mark_updated()

    # ------------------------------------------------------------------
    def transfer(self, new_db: Database, featurizer: DatabaseFeaturizer | None = None) -> None:
        """Deploy the federated model on a new database (train (F) only)."""
        if featurizer is None:
            featurizer = DatabaseFeaturizer(new_db, self.model_config)
            featurizer.train_encoders(
                queries_per_table=self.fed_config.encoder_queries_per_table,
                epochs=self.fed_config.encoder_epochs,
                seed=self.fed_config.seed,
            )
        self.server_model.attach_featurizer(new_db.name, featurizer)
