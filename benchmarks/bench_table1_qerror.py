"""Table 1: Q-errors on the JOB-like workload.

Reproduces the paper's Table 1 — cardinality and cost q-errors
(median / max / mean) for PostgreSQL, Tree-LSTM, MTMLF-QO and the
single-task ablations MTMLF-CardEst / MTMLF-CostEst.

Expected shape (paper): PostgreSQL ≫ Tree-LSTM > MTMLF-QO; the
single-task ablations slightly worse than the jointly-trained model.

Run:  pytest benchmarks/bench_table1_qerror.py --benchmark-only -s
"""

from repro.eval import format_table1


def test_table1_qerrors(benchmark, study):
    """Train all methods and evaluate q-errors (the full Table 1)."""

    def run():
        return study.table1(with_ablations=True)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table1(rows, title="Table 1 (reproduced): Q-errors on the JOB-like workload"))

    by_name = {row.method: row for row in rows}
    assert set(by_name) == {"PostgreSQL", "Tree-LSTM", "MTMLF-QO", "MTMLF-CardEst", "MTMLF-CostEst"}
    for row in rows:
        for stats in (row.card, row.cost):
            if stats is not None:
                assert stats.median >= 1.0
                assert stats.max >= stats.median
                assert stats.mean >= 1.0
    # The paper's headline: the learned multi-task model beats the
    # classical estimator on mean q-error.
    assert by_name["MTMLF-QO"].card.mean < by_name["PostgreSQL"].card.mean
