"""Benchmark: the federated fleet vs isolated per-tenant adaptation.

The paper's Section 7 cloud story, end to end (``repro.federation``,
DESIGN.md "Federation fleet"): N tenant databases serve drifting
traffic; each accumulates private execution-labeled experience; a
``FleetCoordinator`` runs FedAvg rounds that merge shared-(S)/(T)-only
updates and push the merged model back through every tenant's
regression gate.  Three properties are asserted:

1. **Fleet beats isolation.**  One high-traffic tenant sees the drifted
   regime heavily; the low-traffic tenants see too little of it to
   clear the retrain bar on their own.  Under *isolated* adaptation
   (same knobs, no weight sharing) only the high-traffic tenant adapts;
   under the fleet, its update is merged and gate-accepted by the
   low-traffic tenants too.  Total drifted-phase simulated latency of
   the fleet must end strictly below the isolated control.
2. **Onboarding beats scratch.**  A cold tenant onboarded via
   ``FleetCoordinator.onboard`` — a freshly trained featurizer (F) plus
   the current global (S)/(T), zero-shot — must beat an identical
   tenant whose (S)/(T) was never federated (random initialization),
   on total simulated latency.
3. **A poisoned tenant is gate-blocked.**  One tenant's experience is
   poisoned (worst sampled legal orders as JoinSel labels, fine-tuned
   hot); its round's merged model must be rejected by every tenant's
   gate, all live models and served orders unchanged, and the global
   lineage reverted.

Run:
    PYTHONPATH=src python benchmarks/bench_federated_fleet.py           # full
    PYTHONPATH=src python benchmarks/bench_federated_fleet.py --smoke   # CI

The scored quantity is deterministic simulated latency (the Table 2
metric), so the assertions do not flake on noisy shared runners; the
scale is deliberately fixed at one verified operating point (``--smoke``
is accepted for CI-interface parity with the other benchmarks).  This
file is a standalone script (not collected by the tier-1 pytest run) so
the CI federated-fleet job can run it directly.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.core import DatabaseFeaturizer, JointTrainer, ModelConfig, MTMLFQO, shared_state_dict
from repro.datagen import generate_databases
from repro.eval import format_fleet_report, join_order_execution_time, worst_legal_order
from repro.federation import FleetConfig, FleetCoordinator, TenantNode
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator, traffic_stream

MODEL = ModelConfig(d_model=32, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1)
NUM_TENANTS = 3


def pretrain_epochs() -> int:
    # Zero-shot (S)/(T) transfer needs a *converged* pre-train: at ~16
    # epochs the global model reaches the optimal-order baseline on an
    # unseen database's 2-4 table queries; at 4 it is no better than
    # random initialization.
    return 16


def build_fixture():
    """Tenant databases, featurizers, and per-phase labeled pools.

    Tenant 0 is the high-traffic tenant: it serves (and therefore
    experiences) the whole drifted pool.  Tenants 1..N-1 serve only a
    small slice of theirs — below the fleet's fresh-experience bar, so
    they cannot retrain alone.
    """
    dbs = generate_databases(
        NUM_TENANTS + 1, base_seed=31, row_range=(150, 500), attr_range=(2, 3),
        fk_skew=1.3, fk_correlation=0.8,
    )
    eval_size = 10
    tenants = []
    for i, db in enumerate(dbs):
        featurizer = DatabaseFeaturizer(db, MODEL)
        featurizer.train_encoders(queries_per_table=4, epochs=2, seed=i)
        labeler = QueryLabeler(db, max_intermediate_rows=2_000_000)
        pre_gen = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=3, seed=40 + i))
        drift_gen = WorkloadGenerator(
            db,
            WorkloadConfig(min_tables=4, max_tables=5, seed=60 + i,
                           like_probability=0.6, filter_probability=0.8),
        )
        pre_pool = [
            item for item in labeler.label_many(pre_gen.generate(18), with_optimal_order=True)
            if item.optimal_order is not None
        ][:10]
        drift_pool = [
            item for item in labeler.label_many(drift_gen.generate(2 * eval_size + 8),
                                                with_optimal_order=True)
            if item.optimal_order is not None
        ][: eval_size + 4]
        assert len(pre_pool) >= 6 and len(drift_pool) >= eval_size, (
            f"db {db.name}: {len(pre_pool)} pre / {len(drift_pool)} drifted"
        )
        tenants.append((db, featurizer, pre_pool, drift_pool[:eval_size]))
    return tenants


def pretrain_global(tenants) -> dict:
    """The provider's cloud pre-training: (S)/(T) on pooled pre-drift
    workloads of the founding tenants (featurizers stay per-tenant)."""
    model = MTMLFQO(MODEL)
    for db, featurizer, _, _ in tenants[:NUM_TENANTS]:
        model.attach_featurizer(db.name, featurizer)
    examples = [
        (db.name, item)
        for db, _, pre_pool, _ in tenants[:NUM_TENANTS]
        for item in pre_pool
    ]
    JointTrainer(model).train(examples, epochs=pretrain_epochs(), batch_size=8)
    return model.state_dict()


def fleet_config() -> FleetConfig:
    # Measured operating point: with a 0.4 validation split the
    # high-traffic tenant's 24-epoch drift adaptation transfers
    # positively to (at least) one low-traffic tenant, and the tenants
    # it would hurt reject it at their gates — which is the property
    # this benchmark scores.
    return FleetConfig(
        fine_tune_epochs=24,
        batch_size=8,
        min_new_experience=8,
        validation_fraction=0.4,
        encoder_queries_per_table=4,
        encoder_epochs=2,
    )


def experience_slice(tenant_index: int, drift_pool):
    """What each tenant actually serves in the drift phase: tenant 0
    sees everything, the others only a below-the-bar sliver."""
    if tenant_index == 0:
        return drift_pool
    return drift_pool[:5]


def build_nodes(fleet, tenants, global_state, config):
    nodes = []
    for db, featurizer, _, _ in tenants[:NUM_TENANTS]:
        model = MTMLFQO(MODEL)
        model.load_state_dict(global_state)
        model.attach_featurizer(db.name, featurizer)
        tenant = TenantNode(db, model, config=config)
        if fleet is not None:
            fleet.register(tenant)
        nodes.append(tenant)
    return nodes


def serve_phase(node: TenantNode, pool, seed: int) -> float:
    """Serve ``pool`` through the tenant's service; total simulated ms."""
    total = 0.0
    memo: dict = {}
    for index, item in traffic_stream(pool, occurrences=1, seed=seed):
        order = node.optimize(item, timeout=120)
        key = (index, tuple(order))
        if key not in memo:
            memo[key] = join_order_execution_time(node.db, item, order)
        total += memo[key]
    return total


def run_arm(tenants, global_state, config, federated: bool):
    """One arm: drift traffic -> adaptation -> scored drifted serving.

    The two arms differ in exactly one thing: the federated arm merges
    and pushes through the coordinator; the isolated arm lets each
    tenant apply only its *own* fine-tune (same knobs, gate included).
    """
    fleet = FleetCoordinator(MODEL, config) if federated else None
    if fleet is not None:
        fleet.global_model.load_state_dict(global_state)
    nodes = build_nodes(fleet, tenants, global_state, config)
    for node in nodes:
        node.start()
    try:
        # Drift phase: each tenant bulk-imports its pre-labeled drifted
        # experience (the deterministic training basis) and then serves
        # the same queries as live traffic — the collector dedups the
        # served signatures against the imported ones, so the serving
        # loop and its counters run for real while the round trains on
        # exactly the labeled pool.
        for i, (node, (_, _, _, drift_pool)) in enumerate(zip(nodes, tenants)):
            sliver = experience_slice(i, drift_pool)
            node.inject_experience(sliver)
            serve_phase(node, sliver, seed=5 + i)
        for node in nodes:
            node.collector.drain(timeout=300)

        if federated:
            round_ = fleet.run_round()
        else:
            round_ = None
            for node in nodes:
                update = node.local_update(shared_state_dict(node.live_model))
                if update is not None:
                    node.consider_global(update[0])

        # Scored phase: every tenant serves its full drifted eval pool.
        scores = [
            serve_phase(node, tenants[i][3], seed=100 + i)
            for i, node in enumerate(nodes)
        ]
        report = fleet.report() if fleet is not None else None
    finally:
        for node in nodes:
            node.stop()
        if fleet is not None:
            fleet.shutdown()
    return scores, round_, report, (fleet, nodes) if federated else (None, nodes)


def run_onboarding(global_state, tenants, config):
    """Zero-shot onboarding vs a never-federated from-scratch tenant.

    The cold tenant is scored on its day-one traffic (2-4 table
    queries — the regime the federation has collectively seen): the
    onboarded tenant runs the global (S)/(T) zero-shot, the control
    runs a random-initialized (S)/(T), both over identical featurizer
    weights so the delta is exactly the federated knowledge.
    """
    db, featurizer, _, _ = tenants[NUM_TENANTS]
    labeler = QueryLabeler(db, max_intermediate_rows=2_000_000)
    eval_gen = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=4, seed=90))
    eval_pool = [
        item for item in labeler.label_many(eval_gen.generate(30), with_optimal_order=True)
        if item.optimal_order is not None
    ][:16]
    with FleetCoordinator(MODEL, config) as fleet:
        fleet.global_model.load_state_dict(global_state)
        onboarded = fleet.onboard(db, featurizer=featurizer)
        with onboarded:
            onboarded_ms = serve_phase(onboarded, eval_pool, seed=7)

    scratch = MTMLFQO(MODEL)  # random (S)/(T): no federation ever happened
    scratch_featurizer = DatabaseFeaturizer(db, MODEL)
    scratch_featurizer.load_state_dict(featurizer.state_dict())
    scratch.attach_featurizer(db.name, scratch_featurizer)
    scratch_ms = 0.0
    orders = scratch.predict_join_orders(db.name, eval_pool)
    for item, order in zip(eval_pool, orders):
        scratch_ms += join_order_execution_time(db, item, order)
    return onboarded_ms, scratch_ms


def run_poison(tenants, global_state, config):
    """A poisoned tenant's round must be blocked by every gate.

    The adversarial target is a *well-adapted* fleet: each tenant's
    live model is the global (S)/(T) fine-tuned on that tenant's own
    full drifted pool, so every gate compares the poisoned merge
    against a model genuinely fit to the tenant's regime.  (Against a
    never-adapted fleet the test would be vacuous the other way: a
    near-random candidate can measure as an "improvement" over a live
    model that is itself near-random on the drifted queries.)
    """
    with FleetCoordinator(MODEL, config) as fleet:
        fleet.global_model.load_state_dict(global_state)
        nodes = []
        for i, (db, featurizer, _, drift_pool) in enumerate(tenants[:NUM_TENANTS]):
            train_pool = list(drift_pool)
            if i == 0:
                # The poisoned tenant's gate validates partly on queries
                # outside its serving pool (the adversary's fresh
                # signatures), so its live model gets a broader drifted
                # training set — a fleet's high-traffic tenant has
                # plenty of real traffic to fit.
                extra_gen = WorkloadGenerator(
                    db,
                    WorkloadConfig(min_tables=4, max_tables=5, seed=888,
                                   like_probability=0.6, filter_probability=0.8),
                )
                labeler = QueryLabeler(db, max_intermediate_rows=2_000_000)
                train_pool += [
                    item for item in labeler.label_many(extra_gen.generate(16),
                                                        with_optimal_order=True)
                    if item.optimal_order is not None
                ][:8]
            model = MTMLFQO(MODEL)
            model.load_state_dict(global_state)
            model.attach_featurizer(db.name, featurizer)
            JointTrainer(model).train(
                [(db.name, item) for item in train_pool], epochs=32, batch_size=8
            )
            nodes.append(fleet.register(TenantNode(db, model, config=config)))
        for node in nodes:
            node.start()
        try:
            # Traffic flows; the buffered experience is what each gate
            # will validate the poisoned merge against.
            for i, (node, (_, _, _, drift_pool)) in enumerate(zip(nodes, tenants)):
                node.inject_experience(drift_pool)
                serve_phase(node, drift_pool, seed=5 + i)
            for node in nodes:
                node.collector.drain(timeout=300)

            # Poison the high-traffic tenant: fresh-signature drifted
            # queries with adversarial labels, fine-tuned hot.  Its
            # example weight dominates the merge, and every tenant's
            # gate — including its own — must reject the result.  The
            # raised participation bar keeps the healthy tenants'
            # (unharvested) buffers out of the round's local phase.
            config.learning_rate = 0.2
            config.fine_tune_epochs = 20
            config.min_new_experience = max(
                config.min_new_experience, len(tenants[0][3]) + 2
            )
            poison_db, _, _, _ = tenants[0]
            # 3-4 table queries without LIKE-heavy filters: cheap to
            # execute under any order, so a competent live model and a
            # scrambled candidate separate cleanly at the gate (penalty-
            # bound monsters would compress the margin to zero).
            poison_gen = WorkloadGenerator(
                poison_db,
                WorkloadConfig(min_tables=3, max_tables=4, seed=777),
            )
            labeler = QueryLabeler(poison_db, max_intermediate_rows=2_000_000)
            poison_pool = [
                item for item in labeler.label_many(poison_gen.generate(24),
                                                    with_optimal_order=True)
                if item.optimal_order is not None
            ][: config.min_new_experience + 6]
            # Corrupt every label: JoinSel learns the worst orders,
            # CardEst/CostEst learn reversed per-node targets (so the
            # cost-rerank cannot rescue the poisoned decoder).
            poisoned = [
                dataclasses.replace(
                    item,
                    optimal_order=worst_legal_order(poison_db, item),
                    node_cardinalities=list(reversed(item.node_cardinalities)),
                    node_costs=list(reversed(item.node_costs)),
                )
                for item in poison_pool
            ]
            injected = nodes[0].inject_experience(poisoned)
            assert injected >= config.min_new_experience, injected

            # Order snapshots decode directly on the live models (the
            # batched service path is bit-identical): serving these
            # through optimize() would feed the collectors and change
            # which tenants have fresh experience for the poison round.
            def decoded_orders():
                return [
                    [node.live_model.predict_join_order(node.db.name, item)
                     for item in tenants[i][3]]
                    for i, node in enumerate(nodes)
                ]

            live_before = [node.live_model for node in nodes]
            orders_before = decoded_orders()
            global_before = {k: v.copy() for k, v in fleet.global_state().items()}

            round_ = fleet.run_round()

            models_unchanged = all(
                node.live_model is live for node, live in zip(nodes, live_before)
            )
            orders_after = decoded_orders()
            global_after = fleet.global_state()
            import numpy as np

            global_reverted = all(
                np.array_equal(global_before[key], global_after[key])
                for key in global_before
            )
            gates = {node.name: node.last_gate for node in nodes}
        finally:
            for node in nodes:
                node.stop()
    return {
        "participants": [name for name, _ in round_.participants],
        "accepted": round_.accepted,
        "rejected": round_.rejected,
        "reverted": round_.reverted,
        "models_unchanged": models_unchanged,
        "orders_unchanged": orders_after == orders_before,
        "global_reverted": global_reverted,
        "gates": gates,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="accepted for CI-interface parity with the other benchmarks; "
        "this benchmark always runs at its one fixed, verified "
        "deterministic scale (~10s)",
    )
    parser.parse_args(argv)

    print(f"Federated fleet vs isolated adaptation ({NUM_TENANTS} tenants + 1 onboard)")
    print("-" * 64)
    started = time.perf_counter()
    tenants = build_fixture()
    global_state = pretrain_global(tenants)
    print(f"fixture: {NUM_TENANTS} tenant DBs + 1 onboard DB, global (S)/(T) "
          f"pre-trained on pooled pre-drift workloads  "
          f"({time.perf_counter() - started:.1f}s)")
    failed = False

    print("\n[fleet phase]  drifted-phase total simulated latency per tenant")
    isolated_scores, _, _, _ = run_arm(
        tenants, global_state, fleet_config(), federated=False
    )
    federated_scores, round_, report, _ = run_arm(
        tenants, global_state, fleet_config(), federated=True
    )
    for i in range(NUM_TENANTS):
        marker = "high-traffic" if i == 0 else "low-traffic"
        print(f"  tenant {i} ({marker:<12})  isolated {isolated_scores[i]:>9.1f} ms"
              f"   federated {federated_scores[i]:>9.1f} ms")
    isolated_total = sum(isolated_scores)
    federated_total = sum(federated_scores)
    win = (isolated_total - federated_total) / isolated_total if isolated_total else 0.0
    print(f"  {'fleet total':<24}isolated {isolated_total:>9.1f} ms"
          f"   federated {federated_total:>9.1f} ms   win {100 * win:.1f}%")
    print(f"  round: participants={[p for p, _ in round_.participants]} "
          f"accepted={round_.accepted} rejected={round_.rejected}")
    if federated_total >= isolated_total:
        print(f"FAIL: federated fleet {federated_total:.1f} ms not strictly below "
              f"isolated {isolated_total:.1f} ms", file=sys.stderr)
        failed = True
    print()
    print(format_fleet_report(report))

    print("\n[onboarding phase]  zero-shot federated (S)/(T) vs from scratch")
    onboarded_ms, scratch_ms = run_onboarding(global_state, tenants, fleet_config())
    onboard_win = (scratch_ms - onboarded_ms) / scratch_ms if scratch_ms else 0.0
    print(f"  onboarded (zero-shot) {onboarded_ms:>9.1f} ms   "
          f"scratch {scratch_ms:>9.1f} ms   win {100 * onboard_win:.1f}%")
    if onboarded_ms >= scratch_ms:
        print(f"FAIL: onboarded tenant {onboarded_ms:.1f} ms not strictly below "
              f"scratch {scratch_ms:.1f} ms", file=sys.stderr)
        failed = True

    print("\n[poison phase]  poisoned tenant round vs every tenant's gate")
    poison = run_poison(tenants, global_state, fleet_config())
    print(f"  participants {poison['participants']}   accepted {poison['accepted']}   "
          f"rejected {poison['rejected']}   lineage reverted {poison['reverted']}")
    for name, gate in poison["gates"].items():
        if gate is not None:
            print(f"  gate {name}: candidate {gate.candidate_ms:.2f} ms vs live "
                  f"{gate.live_ms:.2f} ms on {gate.validation_count} held-out queries")
    print(f"  live models unchanged {poison['models_unchanged']}   "
          f"orders unchanged {poison['orders_unchanged']}   "
          f"global state reverted {poison['global_reverted']}")
    if poison["accepted"] or not poison["rejected"]:
        print("FAIL: a gate accepted the poisoned round", file=sys.stderr)
        failed = True
    if not (poison["models_unchanged"] and poison["orders_unchanged"]
            and poison["global_reverted"]):
        print("FAIL: the poisoned round disturbed live state", file=sys.stderr)
        failed = True

    print(f"\ntotal wall clock {time.perf_counter() - started:.1f}s")
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
