"""Benchmark: batched vs sequential beam decoding for Trans_JO.

The batched subsystem (DESIGN.md section 2) expands all active beams
with one decoder forward per timestep; the sequential reference invokes
the full decoder once per beam per timestep.  This script measures both
on the ISSUE's reference point — beam width 8, 8-table queries — and
verifies the candidates are bit-identical before trusting the timing.

Run:
    PYTHONPATH=src python benchmarks/bench_batched_decode.py           # full: asserts >= 3x
    PYTHONPATH=src python benchmarks/bench_batched_decode.py --smoke   # CI: parity + report

This file is a standalone script (not collected by the tier-1 pytest
run) so the CI decode-speed job can run it directly.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

import repro.nn as nn
from repro.core import ModelConfig, TransJO
from repro.core.beam import (
    beam_search_join_order,
    beam_search_join_order_sequential,
)


def random_connected_adjacency(m: int, rng: np.random.Generator, extra_edges: int = 2) -> np.ndarray:
    """A connected join graph: a random spanning tree plus a few extras."""
    adj = np.zeros((m, m), dtype=bool)
    order = rng.permutation(m)
    for i in range(1, m):
        a, b = order[i], order[rng.integers(0, i)]
        adj[a, b] = adj[b, a] = True
    for _ in range(extra_edges):
        a, b = rng.integers(0, m, size=2)
        if a != b:
            adj[a, b] = adj[b, a] = True
    return adj


def build_cases(num_queries: int, m: int, d_model: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        (nn.Tensor(rng.normal(size=(1, m, d_model))), random_connected_adjacency(m, rng))
        for _ in range(num_queries)
    ]


def run_benchmark(
    num_queries: int = 8,
    m: int = 8,
    beam_width: int = 8,
    d_model: int = 48,
    decoder_layers: int = 2,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    config = ModelConfig(d_model=d_model, num_heads=4, decoder_layers=decoder_layers)
    trans_jo = TransJO(config, np.random.default_rng(seed))
    cases = build_cases(num_queries, m, d_model, seed=seed + 1)

    def decode_all(search):
        return [
            search(trans_jo, memory, adjacency, beam_width=beam_width)
            for memory, adjacency in cases
        ]

    # Parity first: the speedup is meaningless if the answers differ.
    batched = decode_all(beam_search_join_order)
    sequential = decode_all(beam_search_join_order_sequential)
    mismatches = 0
    for fast, slow in zip(batched, sequential):
        if len(fast) != len(slow):
            mismatches += 1
            continue
        for a, b in zip(fast, slow):
            if a.positions != b.positions or a.log_prob != b.log_prob or a.legal != b.legal:
                mismatches += 1

    timings = {"batched": [], "sequential": []}
    for _ in range(repeats):
        start = time.perf_counter()
        decode_all(beam_search_join_order_sequential)
        timings["sequential"].append(time.perf_counter() - start)
        start = time.perf_counter()
        decode_all(beam_search_join_order)
        timings["batched"].append(time.perf_counter() - start)

    sequential_s = min(timings["sequential"])
    batched_s = min(timings["batched"])
    return {
        "num_queries": num_queries,
        "m": m,
        "beam_width": beam_width,
        "mismatches": mismatches,
        "sequential_s": sequential_s,
        "batched_s": batched_s,
        "speedup": sequential_s / batched_s if batched_s > 0 else float("inf"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: asserts candidate parity only and reports the "
        "speedup (timing thresholds are left to the full run to avoid "
        "flaking on noisy shared runners)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        result = run_benchmark(num_queries=4, m=8, beam_width=8, repeats=2)
        required = None
    else:
        result = run_benchmark(num_queries=8, m=8, beam_width=8, repeats=3)
        required = 3.0

    print("Batched beam decoding vs sequential reference")
    print("-" * 56)
    print(f"queries={result['num_queries']}  tables={result['m']}  beam_width={result['beam_width']}")
    print(f"{'sequential':<14}{1000 * result['sequential_s']:>10.1f} ms")
    print(f"{'batched':<14}{1000 * result['batched_s']:>10.1f} ms")
    threshold = f"(required >= {required:.0f}x)" if required else "(informational)"
    print(f"{'speedup':<14}{result['speedup']:>10.2f} x   {threshold}")
    print(f"{'parity':<14}{'bit-identical' if result['mismatches'] == 0 else 'MISMATCH':>10}")

    if result["mismatches"]:
        print(f"FAIL: {result['mismatches']} candidate mismatches between paths", file=sys.stderr)
        return 1
    if required is not None and result["speedup"] < required:
        print(f"FAIL: speedup {result['speedup']:.2f}x below required {required:.0f}x", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
