"""Benchmark: decode-path trajectory for Trans_JO beam search.

Three phases over the same workload (beam width 8, 8-table queries):

- ``sequential``   — one decoder forward per beam per timestep (the
  original reference path, running on the current default mode).
- ``tape_batched`` — the batched search under ``nn.force_tape()``: every
  op records autograd bookkeeping exactly as the pre-fast-path code did.
  This is the pre-PR batched decode the fast path is measured against.
- ``fast_batched`` — the batched search on the no-tape fast path
  (raw-ndarray kernels, per-decode KV cache, session scratch arena).

Candidates from all phases are verified bit-identical before any timing
is trusted.  Timing is interleaved (one repeat of each phase per round,
best-of-N) so CPU frequency drift hits all phases equally.

Run:
    PYTHONPATH=src python benchmarks/bench_batched_decode.py                 # full: asserts gates
    PYTHONPATH=src python benchmarks/bench_batched_decode.py --smoke         # CI: parity + report
    PYTHONPATH=src python benchmarks/bench_batched_decode.py --profile       # per-op kernel counters
    PYTHONPATH=src python benchmarks/bench_batched_decode.py \
        --save BENCH_decode.json                                             # write snapshot
    PYTHONPATH=src python benchmarks/bench_batched_decode.py \
        --check-against BENCH_decode.json                                    # perf trajectory gate

The ``--check-against`` mode fails when the fresh fast-vs-tape speedup
falls more than 15% below the committed snapshot's — the perf trajectory
gate: the fast path may only get faster relative to the tape path.

This file is a standalone script (not collected by the tier-1 pytest
run) so the CI decode-speed job can run it directly.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time

import numpy as np

import repro.nn as nn
from repro.core import ModelConfig, TransJO
from repro.core.beam import (
    beam_search_join_order,
    beam_search_join_order_sequential,
)

# The fast path may regress to no less than this fraction of the
# committed snapshot's fast-vs-tape speedup (--check-against).
REGRESSION_TOLERANCE = 0.85
# Absolute within-run floor asserted by the full run.  The measured
# ratio (recorded in BENCH_decode.json) is ~2x; the hard floor sits
# below it so shared-runner noise cannot flake the gate, while the
# trajectory check above keeps the recorded ratio honest.
FAST_VS_TAPE_FLOOR = 1.5
# Batched vs sequential, both on the current default mode.  The old 3x
# floor was calibrated when both ran the tape path; the fast path sped
# the sequential reference up more than the batched search (it has more
# per-op overhead to shed), so the honest same-mode ratio sits ~2.9x.
SEQ_VS_BATCHED_FLOOR = 2.5


def random_connected_adjacency(m: int, rng: np.random.Generator, extra_edges: int = 2) -> np.ndarray:
    """A connected join graph: a random spanning tree plus a few extras."""
    adj = np.zeros((m, m), dtype=bool)
    order = rng.permutation(m)
    for i in range(1, m):
        a, b = order[i], order[rng.integers(0, i)]
        adj[a, b] = adj[b, a] = True
    for _ in range(extra_edges):
        a, b = rng.integers(0, m, size=2)
        if a != b:
            adj[a, b] = adj[b, a] = True
    return adj


def build_cases(num_queries: int, m: int, d_model: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        (nn.Tensor(rng.normal(size=(1, m, d_model))), random_connected_adjacency(m, rng))
        for _ in range(num_queries)
    ]


def _candidate_key(candidates):
    return [(c.positions, c.log_prob, c.legal) for c in candidates]


def run_benchmark(
    num_queries: int = 8,
    m: int = 8,
    beam_width: int = 8,
    d_model: int = 48,
    decoder_layers: int = 2,
    repeats: int = 7,
    seed: int = 0,
) -> dict:
    config = ModelConfig(d_model=d_model, num_heads=4, decoder_layers=decoder_layers)
    trans_jo = TransJO(config, np.random.default_rng(seed))
    trans_jo.eval()
    cases = build_cases(num_queries, m, d_model, seed=seed + 1)
    scratch = nn.ScratchArena()  # stands in for InferenceSession.scratch

    def sequential():
        return [
            beam_search_join_order_sequential(trans_jo, memory, adjacency, beam_width=beam_width)
            for memory, adjacency in cases
        ]

    def tape_batched():
        with nn.force_tape():
            return [
                beam_search_join_order(trans_jo, memory, adjacency, beam_width=beam_width)
                for memory, adjacency in cases
            ]

    def fast_batched():
        return [
            beam_search_join_order(trans_jo, memory, adjacency, beam_width=beam_width, scratch=scratch)
            for memory, adjacency in cases
        ]

    phases = {"sequential": sequential, "tape_batched": tape_batched, "fast_batched": fast_batched}

    # Parity first: the speedup is meaningless if the answers differ.
    # (This run doubles as warmup for every phase.)
    results = {name: [_candidate_key(q) for q in fn()] for name, fn in phases.items()}
    reference = results["sequential"]
    mismatches = sum(
        1
        for name, result in results.items()
        for got, want in zip(result, reference)
        if got != want
    )

    # Interleaved best-of-N: each round times every phase once, so slow
    # drift (thermal / frequency scaling) cannot bias one phase.  GC is
    # paused inside the timed region (standard timeit hygiene — the tape
    # phase's graph churn otherwise triggers collections at random
    # points, smearing several ms onto whichever phase is running).
    best = {name: float("inf") for name in phases}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for name, fn in phases.items():
                t0 = time.perf_counter()
                fn()
                best[name] = min(best[name], time.perf_counter() - t0)
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()

    fast_s, tape_s, seq_s = best["fast_batched"], best["tape_batched"], best["sequential"]
    return {
        "meta": {
            "num_queries": num_queries,
            "m": m,
            "beam_width": beam_width,
            "d_model": d_model,
            "decoder_layers": decoder_layers,
            "repeats": repeats,
            "seed": seed,
            "numpy": np.__version__,
            "python": sys.version.split()[0],
        },
        "mismatches": mismatches,
        "phases_ms": {name: 1000.0 * seconds for name, seconds in best.items()},
        "qps": {name: num_queries / seconds for name, seconds in best.items()},
        "speedups": {
            "fast_vs_tape": tape_s / fast_s,
            "fast_vs_sequential": seq_s / fast_s,
            "sequential_vs_batched": seq_s / fast_s,  # legacy alias
            "tape_batched_vs_sequential": seq_s / tape_s,
        },
    }


def save_snapshot(result: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")


def check_against(result: dict, path: str) -> list[str]:
    """Perf-trajectory gate: compare a fresh run to the committed snapshot.

    Returns a list of failure messages (empty = pass).  Only ratios are
    compared — absolute times differ across machines, but the fast/tape
    ratio is a property of the code, measured within one process.
    """
    with open(path) as f:
        snapshot = json.load(f)
    failures = []
    committed = snapshot["speedups"]["fast_vs_tape"]
    fresh = result["speedups"]["fast_vs_tape"]
    floor = committed * REGRESSION_TOLERANCE
    if fresh < floor:
        failures.append(
            f"fast_vs_tape speedup regressed: fresh {fresh:.2f}x < "
            f"{floor:.2f}x ({REGRESSION_TOLERANCE:.0%} of committed {committed:.2f}x)"
        )
    return failures


def report(result: dict, required_fast: float | None, required_seq: float | None) -> None:
    meta = result["meta"]
    print("Trans_JO decode trajectory: sequential / tape batched / fast batched")
    print("-" * 68)
    print(
        f"queries={meta['num_queries']}  tables={meta['m']}  "
        f"beam_width={meta['beam_width']}  d_model={meta['d_model']}  "
        f"layers={meta['decoder_layers']}"
    )
    for name, ms in result["phases_ms"].items():
        print(f"{name:<16}{ms:>10.1f} ms   {result['qps'][name]:>8.1f} qps")
    fast_gate = f"(required >= {required_fast:.1f}x)" if required_fast else "(informational)"
    seq_gate = f"(required >= {required_seq:.1f}x)" if required_seq else "(informational)"
    print(f"{'fast vs tape':<16}{result['speedups']['fast_vs_tape']:>10.2f} x   {fast_gate}")
    print(f"{'fast vs seq':<16}{result['speedups']['fast_vs_sequential']:>10.2f} x   {seq_gate}")
    parity = "bit-identical" if result["mismatches"] == 0 else "MISMATCH"
    print(f"{'parity':<16}{parity:>13}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: asserts candidate parity only and reports the "
        "speedups (timing thresholds are left to the full run to avoid "
        "flaking on noisy shared runners)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the fast phase under kernels.profiled() and dump per-op "
        "call / time / allocation counters",
    )
    parser.add_argument("--save", metavar="PATH", help="write the result snapshot as JSON")
    parser.add_argument(
        "--check-against",
        metavar="PATH",
        help="fail if the fresh fast-vs-tape speedup is more than 15%% below "
        "the committed snapshot's (perf trajectory gate)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        result = run_benchmark(num_queries=4, m=8, beam_width=8, repeats=2)
        required_fast = required_seq = None
    else:
        result = run_benchmark(num_queries=8, m=8, beam_width=8, repeats=7)
        required_fast = FAST_VS_TAPE_FLOOR
        required_seq = SEQ_VS_BATCHED_FLOOR

    report(result, required_fast, required_seq)

    if args.profile:
        config = ModelConfig(d_model=48, num_heads=4, decoder_layers=2)
        trans_jo = TransJO(config, np.random.default_rng(0))
        trans_jo.eval()
        cases = build_cases(result["meta"]["num_queries"], 8, 48, seed=1)
        scratch = nn.ScratchArena()
        with nn.kernels.profiled() as profile:
            for memory, adjacency in cases:
                beam_search_join_order(trans_jo, memory, adjacency, beam_width=8, scratch=scratch)
        print()
        print("fast-path kernel profile (one decode sweep):")
        print(profile.table())

    if args.save:
        save_snapshot(result, args.save)
        print(f"snapshot written to {args.save}")

    failures = []
    if result["mismatches"]:
        failures.append(f"{result['mismatches']} candidate mismatches between decode paths")
    if required_fast is not None and result["speedups"]["fast_vs_tape"] < required_fast:
        failures.append(
            f"fast_vs_tape speedup {result['speedups']['fast_vs_tape']:.2f}x "
            f"below required {required_fast:.1f}x"
        )
    if required_seq is not None and result["speedups"]["fast_vs_sequential"] < required_seq:
        failures.append(
            f"fast_vs_sequential speedup {result['speedups']['fast_vs_sequential']:.2f}x "
            f"below required {required_seq:.1f}x"
        )
    if args.check_against:
        failures.extend(check_against(result, args.check_against))

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
