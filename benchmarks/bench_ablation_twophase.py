"""Ablation A5: two-phase JoinSel training (Section 3.2 research note).

Optimal join orders are exponentially expensive to label; the paper
suggests bootstrapping from an existing DBMS's sub-optimal orders and
refining with few optimal ones.  This bench compares three regimes on
held-out join-order quality:

- optimal-only: trained on the (scarce) optimal orders;
- planner-only: trained on the classical planner's (weak) orders;
- two-phase: planner warm-up, then optimal refinement.

Run:  pytest benchmarks/bench_ablation_twophase.py --benchmark-only -s
"""

import numpy as np

from repro.core import JointTrainer, MTMLFQO, ModelConfig, joeu


def _quality(model, db_name, items):
    scores, hits = [], 0
    for item, order in zip(items, model.predict_join_orders(db_name, items)):
        scores.append(joeu(order, item.optimal_order))
        hits += order == item.optimal_order
    return float(np.mean(scores)), hits / len(items)


def test_two_phase_training(benchmark, study):
    db_name = study.db.name
    train = [item for item in study.train if item.optimal_order is not None]
    test = [item for item in study.test if item.optimal_order is not None]
    assert test
    # Simulate label scarcity: optimal orders for only 25% of training data.
    scarce = train[: max(len(train) // 4, 5)]
    config = ModelConfig(
        **{**study.config.model.__dict__, "w_card": 0.0, "w_cost": 0.0, "w_jo": 1.0}
    )

    def make_model():
        model = MTMLFQO(config)
        model.attach_featurizer(db_name, study.train_featurizer())
        return model

    def run():
        results = {}
        # optimal-only (scarce labels)
        model = make_model()
        trainer = JointTrainer(model)
        trainer.train([(db_name, i) for i in scarce], epochs=12, batch_size=16, seed=0)
        results["optimal-only (25% labels)"] = _quality(model, db_name, test)
        # planner-only (abundant weak labels)
        model = make_model()
        trainer = JointTrainer(model)
        trainer.jo_label_source = "planner"
        trainer.train([(db_name, i) for i in train], epochs=12, batch_size=16, seed=0)
        results["planner-only (weak)"] = _quality(model, db_name, test)
        # two-phase
        model = make_model()
        trainer = JointTrainer(model)
        trainer.jo_label_source = "planner"
        trainer.train([(db_name, i) for i in train], epochs=8, batch_size=16, seed=0)
        trainer.jo_label_source = "optimal"
        trainer.train([(db_name, i) for i in scarce], epochs=6, batch_size=16, seed=1)
        results["two-phase"] = _quality(model, db_name, test)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation: two-phase JoinSel training (held-out quality)")
    print("-" * 62)
    print(f"{'regime':<28}{'mean JOEU':>12}{'optimal %':>12}")
    for name, (mean_joeu, optimal) in results.items():
        print(f"{name:<28}{mean_joeu:>12.3f}{100 * optimal:>11.1f}%")

    for mean_joeu, optimal in results.values():
        assert 0.0 <= mean_joeu <= 1.0 and 0.0 <= optimal <= 1.0
