"""Shared fixtures for the benchmark suite.

The experiment benchmarks reproduce the paper's tables at a reduced,
CPU-friendly scale (see DESIGN.md "Benchmark scale").  Training fixtures are
session-scoped so Table 1 and Table 2 benchmarks share one trained
model set, as in the paper.
"""

import pytest

from repro.core import ModelConfig
from repro.datagen import imdb_like
from repro.eval import SingleDBStudy, StudyConfig


BENCH_MODEL = ModelConfig(
    d_model=48,
    num_heads=4,
    encoder_layers=1,
    shared_layers=2,
    decoder_layers=2,
)

BENCH_STUDY = StudyConfig(
    num_queries=260,
    min_tables=3,
    max_tables=6,
    model=BENCH_MODEL,
    encoder_queries_per_table=15,
    encoder_epochs=6,
    joint_epochs=25,
    treelstm_epochs=12,
    filter_probability=0.7,
    like_probability=0.6,
    max_filters_per_table=1,
)


@pytest.fixture(scope="session")
def imdb_db():
    """The IMDB-like 21-table database at benchmark scale."""
    return imdb_like(seed=0, scale=0.5, fk_skew=1.3, fk_correlation=0.8)


@pytest.fixture(scope="session")
def study(imdb_db):
    """A prepared single-DB study (workload generated and labeled)."""
    s = SingleDBStudy(imdb_db, BENCH_STUDY)
    s.prepare()
    return s
