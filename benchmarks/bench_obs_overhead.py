"""Benchmark: telemetry overhead on the serving hot path.

The observability contract (DESIGN.md "Observability"): a handle-present
but *disabled* :class:`repro.obs.Telemetry` costs one int check per
touchpoint — serving throughput must stay within 3% of the true
no-telemetry baseline (``telemetry=None``).  This load generator drives
the same 16-client request stream through a 2-replica service three
ways and compares min-of-repeats wall clock:

1. **baseline** — ``telemetry=None``: no telemetry object anywhere;
2. **disabled** — ``Telemetry.disabled()``: the handle threads through
   every layer but the one-int gate short-circuits spans and SLOs;
3. **enabled** — ``Telemetry()``: full tracing, SLOs, and snapshot.

The enabled run also functions as the end-to-end observability check:
its snapshot must contain at least one *complete* request trace
(enqueue -> queue_wait -> batch -> decode -> cache event), per-replica
busy-time histograms, and a per-tenant SLO burn rate.  Every run writes
``BENCH_obs.json``; CI uploads it as an artifact.

Run:
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke   # CI

This file is a standalone script (not collected by the tier-1 pytest
run) so the CI obs job can run it directly.
"""

from __future__ import annotations

import os

# Pin BLAS to one thread per op *before* numpy loads: the 3% bound
# compares wall clocks, so BLAS-internal threading noise would swamp
# the effect being measured.
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")

import argparse
import json
import random
import sys
import threading
import time

from repro.core import DatabaseFeaturizer, ModelConfig, MTMLFQO
from repro.datagen import generate_database
from repro.obs import Telemetry, telemetry_snapshot, write_snapshot
from repro.serve import OptimizerService, ServeConfig
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator

CONCURRENCY = 16
REPLICAS = 2
OVERHEAD_BOUND = 1.03  # disabled path vs no-telemetry baseline
REQUEST_SPANS = {"enqueue", "queue_wait", "batch", "decode"}
SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")
TRACE_SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs_traces.json")


def build_fixture(num_queries: int, seed: int = 5):
    config = ModelConfig(d_model=48, num_heads=4, encoder_layers=1, shared_layers=2, decoder_layers=2)
    db = generate_database(seed=seed, num_tables=8, row_range=(80, 300), attr_range=(2, 3))
    featurizer = DatabaseFeaturizer(db, config)
    featurizer.train_encoders(queries_per_table=3, epochs=1)
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=3, max_tables=5, seed=3))
    items = QueryLabeler(db).label_many(generator.generate(num_queries), with_optimal_order=False)
    model = MTMLFQO(config)
    model.attach_featurizer(db.name, featurizer)
    return model, db, items


def request_stream(items, occurrences: int = 2, seed: int = 11):
    """Production-shaped: each query appears twice so cache hits occur."""
    stream = [item for item in items for _ in range(occurrences)]
    random.Random(seed).shuffle(stream)
    return stream


def run_served(model, db, requests, telemetry):
    """One pass of ``requests`` from ``CONCURRENCY`` client threads."""
    model.clear_cache()
    service = OptimizerService(
        model,
        db.name,
        ServeConfig(
            num_replicas=REPLICAS,
            max_batch_size=CONCURRENCY,
            max_wait_ms=4.0,
            plan_cache_size=1024,
        ),
        telemetry=telemetry,
    )
    work = list(requests)
    lock = threading.Lock()

    def client():
        while True:
            with lock:
                if not work:
                    return
                item = work.pop()
            service.optimize(item)

    with service:
        start = time.perf_counter()
        threads = [threading.Thread(target=client) for _ in range(CONCURRENCY)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        report = service.report()
    assert report.completed == len(requests), (report.completed, len(requests))
    return elapsed, report


def measure_modes(model, db, requests, repeats: int, factories: dict):
    """min-of-``repeats`` wall clock per mode, repeats *interleaved*
    round-robin so machine drift during the run lands on every mode
    equally (sequential blocks would bias whichever mode ran during a
    noisy stretch).  Telemetry is rebuilt per repeat."""
    results = {
        name: {"seconds": float("inf"), "report": None, "telemetry": None}
        for name in factories
    }
    for _ in range(repeats):
        for name, make_telemetry in factories.items():
            candidate = make_telemetry()
            elapsed, run_report = run_served(model, db, requests, candidate)
            best = results[name]
            if elapsed < best["seconds"]:
                best.update(seconds=elapsed, report=run_report, telemetry=candidate)
    return results


def check_enabled_snapshot(telemetry, db_name: str) -> list[str]:
    """The acceptance checks on the enabled run; returns failures."""
    failures: list[str] = []
    complete = telemetry.tracer.complete_traces(REQUEST_SPANS)
    cache_complete = [
        tid
        for tid in complete
        if any(
            s.name in ("cache.fill", "cache.hit")
            for s in telemetry.tracer.trace(tid)
        )
    ]
    if not cache_complete:
        failures.append(
            "no complete request trace (enqueue -> queue_wait -> batch -> "
            "decode -> cache event) in the enabled run"
        )
    replica_busy = [
        m for m in telemetry.registry.metrics() if m.name == "serve.replica.busy_s"
    ]
    if len(replica_busy) < REPLICAS:
        failures.append(
            f"expected {REPLICAS} per-replica busy histograms, found {len(replica_busy)}"
        )
    status = telemetry.slo.status(db_name)
    if status is None or status.total == 0:
        failures.append(f"no SLO state recorded for tenant {db_name!r}")
    return failures


def print_mode(name: str, seconds: float, requests: int, baseline_s: float) -> None:
    ratio = seconds / baseline_s if baseline_s > 0 else float("inf")
    print(
        f"  {name:<10}{1000 * seconds:>10.1f} ms   {requests / seconds:>8.1f} q/s"
        f"   {ratio:>6.3f}x of baseline"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: smaller workload, same checks",
    )
    parser.add_argument(
        "--output",
        default=SNAPSHOT_PATH,
        help="where to write the BENCH_obs.json result summary",
    )
    parser.add_argument(
        "--trace-output",
        default=TRACE_SNAPSHOT_PATH,
        help="where to write the enabled run's full telemetry snapshot "
        "(render it with: python -m repro.obs BENCH_obs_traces.json)",
    )
    args = parser.parse_args(argv)

    num_queries, repeats = (16, 5) if args.smoke else (48, 5)
    model, db, items = build_fixture(num_queries)
    requests = request_stream(items, occurrences=2)
    model.predict_join_orders(db.name, items[:4])  # warm BLAS + code paths
    run_served(model, db, requests, None)  # warm the serving stack; discarded

    print(
        f"Telemetry overhead ({CONCURRENCY} clients, {REPLICAS} replicas, "
        f"{len(requests)} requests, min of {repeats} interleaved)"
    )
    print("-" * 64)
    modes = measure_modes(
        model,
        db,
        requests,
        repeats,
        {"baseline": lambda: None, "disabled": Telemetry.disabled, "enabled": Telemetry},
    )
    baseline, disabled, enabled = modes["baseline"], modes["disabled"], modes["enabled"]

    print_mode("baseline", baseline["seconds"], len(requests), baseline["seconds"])
    print_mode("disabled", disabled["seconds"], len(requests), baseline["seconds"])
    print_mode("enabled", enabled["seconds"], len(requests), baseline["seconds"])

    disabled_ratio = disabled["seconds"] / baseline["seconds"]
    enabled_ratio = enabled["seconds"] / baseline["seconds"]
    failures = check_enabled_snapshot(enabled["telemetry"], db.name)
    if disabled_ratio > OVERHEAD_BOUND:
        failures.append(
            f"disabled-telemetry run {disabled_ratio:.3f}x of baseline "
            f"(bound {OVERHEAD_BOUND:.2f}x)"
        )

    payload = telemetry_snapshot(enabled["telemetry"])
    trace_file = write_snapshot(args.trace_output, payload)
    print(f"telemetry snapshot: {os.path.abspath(trace_file)}")
    print(f"  render with: PYTHONPATH=src python -m repro.obs {os.path.relpath(trace_file)}")

    status = enabled["telemetry"].slo.status(db.name)
    summary = {
        "benchmark": "obs_overhead",
        "smoke": args.smoke,
        "client_concurrency": CONCURRENCY,
        "num_replicas": REPLICAS,
        "requests": len(requests),
        "repeats": repeats,
        "seconds": {
            "baseline": round(baseline["seconds"], 6),
            "disabled": round(disabled["seconds"], 6),
            "enabled": round(enabled["seconds"], 6),
        },
        "overhead": {
            "disabled_vs_baseline": round(disabled_ratio, 4),
            "enabled_vs_baseline": round(enabled_ratio, 4),
            "bound_disabled": OVERHEAD_BOUND,
        },
        "enabled_run": {
            "complete_traces": len(
                enabled["telemetry"].tracer.complete_traces(REQUEST_SPANS)
            ),
            "spans": len(enabled["telemetry"].tracer.spans()),
            "slo": status.to_dict() if status is not None else None,
        },
    }
    output = os.path.abspath(args.output)
    with open(output, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"snapshot: {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
