"""Ablation A2: token-level vs sequence-level join-order loss (Section 5).

The paper proposes the JOEU-based sequence-level criterion (Equation 3)
to fix the train/decode mismatch of the token-level loss.  This bench
trains Trans_JO with the token-level loss, snapshots its join-order
quality, refines with the sequence-level loss, and reports the change
in mean JOEU and exact-optimal fraction on held-out queries.

Run:  pytest benchmarks/bench_ablation_seqloss.py --benchmark-only -s
"""

import numpy as np

from repro.core import JointTrainer, MTMLFQO, ModelConfig, joeu


def _jo_quality(model, db_name, items):
    scores, hits = [], 0
    for item, order in zip(items, model.predict_join_orders(db_name, items)):
        scores.append(joeu(order, item.optimal_order))
        hits += order == item.optimal_order
    return float(np.mean(scores)), hits / len(items)


def test_sequence_level_loss_ablation(benchmark, study):
    db_name = study.db.name
    train = [item for item in study.train if item.optimal_order is not None][:80]
    test = [item for item in study.test if item.optimal_order is not None]
    assert test, "no held-out queries with optimal-order labels"

    config = ModelConfig(
        **{**study.config.model.__dict__, "w_card": 0.0, "w_cost": 0.0, "w_jo": 1.0}
    )

    def run():
        model = MTMLFQO(config)
        model.attach_featurizer(db_name, study.train_featurizer())
        trainer = JointTrainer(model)
        examples = [(db_name, item) for item in train]
        trainer.train(examples, epochs=15, batch_size=16, seed=0)
        token_quality = _jo_quality(model, db_name, test)
        trainer.refine_sequence_level(examples[:40], epochs=2, seed=0)
        seq_quality = _jo_quality(model, db_name, test)
        return token_quality, seq_quality

    (token_joeu, token_opt), (seq_joeu, seq_opt) = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation: join-order loss criterion (held-out queries)")
    print("-" * 58)
    print(f"{'criterion':<28}{'mean JOEU':>12}{'optimal %':>12}")
    print(f"{'token-level (L.iii)':<28}{token_joeu:>12.3f}{100 * token_opt:>11.1f}%")
    print(f"{'+ sequence-level (Eq. 3)':<28}{seq_joeu:>12.3f}{100 * seq_opt:>11.1f}%")

    assert 0.0 <= token_joeu <= 1.0 and 0.0 <= seq_joeu <= 1.0
