"""Figures 3-4: tree-structured plan codec (Section 4.1).

The paper's Figures 3 and 4 illustrate the left-deep and bushy plan
trees and their complete-binary-tree decoding embeddings.  This bench
regenerates the exact embedding vectors of the paper's two examples and
measures the codec's throughput on random plans (the codec runs inside
the training loop, so its speed matters).

Run:  pytest benchmarks/bench_fig34_tree_codec.py --benchmark-only -s
"""

import numpy as np

from repro.core import (
    JoinTree,
    decoding_embeddings,
    join_tree_from_order,
    tree_from_embeddings,
)


def paper_left_deep():
    return join_tree_from_order(["T1", "T2", "T3", "T4"])


def paper_bushy():
    return JoinTree(
        left=JoinTree(left=JoinTree(table="T1"), right=JoinTree(table="T2")),
        right=JoinTree(left=JoinTree(table="T3"), right=JoinTree(table="T4")),
    )


def test_fig4_paper_embeddings(benchmark):
    """Regenerate the exact decoding embeddings of Figure 4."""

    def run():
        return decoding_embeddings(paper_left_deep()), decoding_embeddings(paper_bushy())

    left_deep, bushy = benchmark(run)

    print("\nFigure 4 (reproduced): decoding embeddings")
    print("left-deep plan j(j(j(T1,T2),T3),T4):")
    for table in ["T1", "T2", "T3", "T4"]:
        print(f"  {table}: {left_deep[table].astype(int).tolist()}")
    print("bushy plan j(j(T1,T2),j(T3,T4)):")
    for table in ["T1", "T2", "T3", "T4"]:
        print(f"  {table}: {bushy[table].astype(int).tolist()}")

    np.testing.assert_array_equal(left_deep["T3"], [0, 0, 1, 1, 0, 0, 0, 0])
    np.testing.assert_array_equal(left_deep["T4"], [0, 0, 0, 0, 1, 1, 1, 1])
    np.testing.assert_array_equal(bushy["T3"], [0, 0, 1, 0, 0, 0, 0, 0])
    np.testing.assert_array_equal(bushy["T4"], [0, 0, 0, 1, 0, 0, 0, 0])


def test_codec_roundtrip_throughput(benchmark):
    """Round-trip random plans through the codec (seq-to-tree decode)."""
    rng = np.random.default_rng(0)

    def random_tree(num_leaves: int) -> JoinTree:
        names = [f"T{i}" for i in range(num_leaves)]

        def build(leaves):
            if len(leaves) == 1:
                return JoinTree(table=leaves[0])
            split = int(rng.integers(1, len(leaves)))
            return JoinTree(left=build(leaves[:split]), right=build(leaves[split:]))

        return build(names)

    trees = [random_tree(int(rng.integers(2, 8))) for _ in range(64)]

    def run():
        ok = 0
        for tree in trees:
            if tree_from_embeddings(decoding_embeddings(tree)) == tree:
                ok += 1
        return ok

    assert benchmark(run) == len(trees)
