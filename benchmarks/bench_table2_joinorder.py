"""Table 2: Execution time with different join orders.

Reproduces the paper's Table 2 — total simulated execution time of the
held-out workload under four join-order sources: the PostgreSQL-style
planner, the true-cardinality optimal orders (ECQO substitute),
MTMLF-QO's beam-decoded orders, and the MTMLF-JoinSel single-task
ablation.

Expected shape (paper): Optimal < MTMLF-QO < MTMLF-JoinSel <=
PostgreSQL, with MTMLF-QO recovering most of the optimal improvement
and emitting the exactly-optimal order for a large fraction of queries.

Run:  pytest benchmarks/bench_table2_joinorder.py --benchmark-only -s
"""

from repro.eval import format_table2


def test_table2_join_orders(benchmark, study):
    def run():
        return study.table2(with_ablation=True)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table2(rows, title="Table 2 (reproduced): execution time with different join orders"))

    by_name = {row.method: row for row in rows}
    assert set(by_name) == {"PostgreSQL", "Optimal", "MTMLF-QO", "MTMLF-JoinSel"}
    # Optimal orders cannot be meaningfully slower than the classical
    # planner's (tolerance covers op-choice differences at eval time).
    assert by_name["Optimal"].total_time_ms <= by_name["PostgreSQL"].total_time_ms * 1.02
    # All learned orders are legal and executable, hence produced a time.
    for row in rows:
        assert row.total_time_ms > 0
    assert by_name["MTMLF-QO"].optimal_fraction is not None
