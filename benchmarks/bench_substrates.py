"""M1: substrate micro-benchmarks.

Throughput of the building blocks beneath the experiments: the
vectorized equi-join kernel, plan execution, histogram estimation, DP
join enumeration, the autograd transformer, and the per-query true-
cardinality oracle.  These bound how far the experiment scale knobs can
be raised.

Run:  pytest benchmarks/bench_substrates.py --benchmark-only
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.datagen import generate_database
from repro.engine import execute_plan, left_deep_plan
from repro.engine.operators import equi_join_positions
from repro.optimizer import HistogramEstimator, TrueCardinalityOracle, dp_join_enumeration
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator


@pytest.fixture(scope="module")
def micro_db():
    return generate_database(seed=5, num_tables=7, row_range=(500, 3000), attr_range=(2, 4))


@pytest.fixture(scope="module")
def micro_queries(micro_db):
    generator = WorkloadGenerator(micro_db, WorkloadConfig(min_tables=3, max_tables=5, seed=0))
    return generator.generate(20)


def test_equi_join_kernel_100k(benchmark):
    rng = np.random.default_rng(0)
    left = rng.integers(0, 10_000, size=100_000)
    right = rng.integers(0, 10_000, size=100_000)
    lp, rp = benchmark(equi_join_positions, left, right)
    assert len(lp) == len(rp)


def test_plan_execution_three_way(benchmark, micro_db, micro_queries):
    query = next(q for q in micro_queries if q.num_tables >= 3)
    order = micro_db.join_schema.spanning_join_order(query.tables, start=query.tables[0])
    plan = left_deep_plan(query, order)
    result = benchmark(execute_plan, plan, micro_db)
    assert result.cardinality >= 0


def test_histogram_estimation(benchmark, micro_db, micro_queries):
    estimator = HistogramEstimator(micro_db)

    def run():
        return [estimator.estimate(q, frozenset(q.tables)) for q in micro_queries]

    estimates = benchmark(run)
    assert all(e >= 0 for e in estimates)


def test_dp_enumeration(benchmark, micro_db, micro_queries):
    estimator = HistogramEstimator(micro_db)
    query = max(micro_queries, key=lambda q: q.num_tables)

    def run():
        return dp_join_enumeration(query, estimator)

    planned = benchmark(run)
    assert planned.plan is not None


def test_true_cardinality_oracle(benchmark, micro_db, micro_queries):
    query = next(q for q in micro_queries if q.num_tables == 3)

    def run():
        oracle = TrueCardinalityOracle(micro_db)
        return oracle.estimate(query, frozenset(query.tables))

    assert benchmark(run) >= 0


def test_workload_labeling(benchmark, micro_db, micro_queries):
    labeler = QueryLabeler(micro_db)

    def run():
        return labeler.label_many(micro_queries[:5], with_optimal_order=True)

    labeled = benchmark(run)
    assert labeled


def test_transformer_forward_backward(benchmark):
    rng = np.random.default_rng(0)
    encoder = nn.TransformerEncoder(48, 4, 2, rng=rng)
    head = nn.Linear(48, 1, rng=rng)
    params = encoder.parameters() + head.parameters()
    x = rng.normal(size=(16, 9, 48))
    y = rng.normal(size=16)

    def run():
        for p in params:
            p.grad = None
        hidden = encoder(nn.Tensor(x))
        loss = nn.mse_loss(head(hidden.mean(axis=1)).reshape(16), y)
        loss.backward()
        return loss.item()

    assert np.isfinite(benchmark(run))
