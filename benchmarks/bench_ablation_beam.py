"""Ablation A3: beam width sweep for the legality beam search (§4.3).

The paper's beam search takes the top-k tables per step; this bench
sweeps k and reports join-order quality (mean JOEU, exact-optimal
fraction) and decode latency — the exploration/latency trade-off the
beam width controls.

Run:  pytest benchmarks/bench_ablation_beam.py --benchmark-only -s
"""

import time

import numpy as np

from repro.core import joeu


def test_beam_width_sweep(benchmark, study):
    db_name = study.db.name
    model = study.train_mtmlf("MTMLF-QO")
    test = [item for item in study.test if item.optimal_order is not None]
    assert test

    def sweep():
        results = {}
        for width in (1, 2, 4):
            start = time.perf_counter()
            scores, hits = [], 0
            orders = model.predict_join_orders(db_name, test, beam_width=width)
            for item, order in zip(test, orders):
                scores.append(joeu(order, item.optimal_order))
                hits += order == item.optimal_order
            elapsed = time.perf_counter() - start
            results[width] = (float(np.mean(scores)), hits / len(test), elapsed / len(test))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation: beam width k (legality-aware beam search)")
    print("-" * 62)
    print(f"{'k':>3}{'mean JOEU':>14}{'optimal %':>12}{'ms/query':>14}")
    for width, (mean_joeu, optimal, latency) in sorted(results.items()):
        print(f"{width:>3}{mean_joeu:>14.3f}{100 * optimal:>11.1f}%{1000 * latency:>13.2f}")

    # Wider beams may only improve the (greedy) k=1 sequence likelihood
    # ranking; quality must never collapse.
    for mean_joeu, optimal, _ in results.values():
        assert 0.0 <= mean_joeu <= 1.0
        assert 0.0 <= optimal <= 1.0
