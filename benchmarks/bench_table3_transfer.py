"""Table 3: Cross-DB transferability of MTMLF-QO (Section 6.3).

Reproduces the paper's Table 3 — total simulated execution time on a
*held-out* database for: the PostgreSQL-style planner, MTMLF-QO
pre-trained on the other databases via MLA (Algorithm 1) and
transferred (only the featurizer trained locally + small fine-tune),
and a control MTMLF-QO trained from scratch on the test database.

Expected shape (paper): both MTMLF variants beat PostgreSQL by a wide
margin, and the transferred model lands close to the natively-trained
one — evidence that (S)/(T) capture database-agnostic knowledge.

Run:  pytest benchmarks/bench_table3_transfer.py --benchmark-only -s
"""

from repro.core import MLAConfig, ModelConfig
from repro.datagen import generate_databases
from repro.eval import format_table3, run_table3


def test_table3_cross_db_transfer(benchmark):
    databases = generate_databases(
        4, base_seed=100, row_range=(200, 900), attr_range=(2, 4),
        fk_skew=1.3, fk_correlation=0.8,
    )

    def run():
        return run_table3(
            databases,
            num_queries=120,
            max_tables=4,
            mla_config=MLAConfig(
                encoder_queries_per_table=12,
                encoder_epochs=6,
                joint_epochs=22,
                fine_tune_epochs=8,
            ),
            model_config=ModelConfig(
                d_model=48, num_heads=4, encoder_layers=1, shared_layers=2, decoder_layers=2
            ),
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table3(rows, title="Table 3 (reproduced): execution time on the unseen DB"))

    by_name = {row.method: row for row in rows}
    assert set(by_name) == {"PostgreSQL", "MTMLF-QO (MLA)", "MTMLF-QO (single)"}
    for row in rows:
        assert row.total_time_ms > 0
