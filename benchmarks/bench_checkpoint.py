"""Smoke + timing: full-model checkpoint round trip and live hot-swap.

Exercises the model-lifecycle subsystem end to end (DESIGN.md "Model
lifecycle"):

1. train a small MTMLF-QO, ``save_checkpoint`` (model + featurizer +
   Adam moments) and ``load_checkpoint`` it back — asserting the round
   trip is **bit-exact** (identical join orders and cardinality
   predictions) and reporting save/load wall-clock and file size;
2. serve 16 concurrent clients through an :class:`OptimizerService`
   and ``swap_model`` a retrained checkpoint in mid-stream — asserting
   no request is lost, every response matches one of the two models'
   direct results, and post-swap traffic is served by the new model
   only (never from the pre-swap plan cache).

Run:
    PYTHONPATH=src python benchmarks/bench_checkpoint.py           # full
    PYTHONPATH=src python benchmarks/bench_checkpoint.py --smoke   # CI scale

This file is a standalone script (not collected by the tier-1 pytest
run) so the CI checkpoint job can run it directly.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import tempfile
import threading
import time

import numpy as np

from repro.core import (
    DatabaseFeaturizer,
    JointTrainer,
    ModelConfig,
    MTMLFQO,
    load_checkpoint,
)
from repro.datagen import generate_database
from repro.serve import OptimizerService, ServeConfig
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator

CONCURRENCY = 16


def build(num_queries: int, train_epochs: int):
    db = generate_database(seed=5, num_tables=5, row_range=(80, 250), attr_range=(2, 3))
    config = ModelConfig(d_model=32, num_heads=2, encoder_layers=1, shared_layers=1,
                         decoder_layers=1)
    featurizer = DatabaseFeaturizer(db, config)
    featurizer.train_encoders(queries_per_table=4, epochs=2)
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=4, seed=9))
    pool = QueryLabeler(db).label_many(generator.generate(num_queries), with_optimal_order=False)
    model = MTMLFQO(config)
    model.attach_featurizer(db.name, featurizer)
    trainer = JointTrainer(model)
    trainer.train([(db.name, item) for item in pool], epochs=train_epochs, batch_size=8)
    return db, config, featurizer, pool, model, trainer


def check_round_trip(db, pool, model, trainer, checkpoint_dir: str) -> str:
    started = time.perf_counter()
    path = trainer.save_checkpoint(os.path.join(checkpoint_dir, "model_v1"))
    save_s = time.perf_counter() - started
    size_mb = os.path.getsize(path) / 1e6
    started = time.perf_counter()
    loaded = load_checkpoint(path, databases=db)
    load_s = time.perf_counter() - started
    print(f"checkpoint: {size_mb:.1f} MB, save {save_s * 1e3:.0f} ms, load {load_s * 1e3:.0f} ms")

    direct = model.predict_join_orders(db.name, pool)
    restored = loaded.predict_join_orders(db.name, pool)
    assert restored == direct, "round-trip join orders diverged"
    for a, b in zip(model.predict_cardinalities(db.name, pool),
                    loaded.predict_cardinalities(db.name, pool)):
        np.testing.assert_array_equal(a, b)
    assert loaded.version == model.version
    print(f"round trip bit-exact on {len(pool)} queries (model_version {loaded.version})")
    return path


def check_hot_swap(db, config, featurizer, pool, model, checkpoint_dir: str,
                   requests_per_client: int) -> None:
    retrained = MTMLFQO(config)
    retrained.attach_featurizer(db.name, featurizer)
    JointTrainer(retrained).train([(db.name, item) for item in pool], epochs=2, batch_size=8)
    from repro.core import save_checkpoint

    path = save_checkpoint(retrained, os.path.join(checkpoint_dir, "model_v2"))
    direct_old = model.predict_join_orders(db.name, pool, beam_width=2)
    direct_new = retrained.predict_join_orders(db.name, pool, beam_width=2)

    answers: list[list[tuple[int, list[str]]]] = [[] for _ in range(CONCURRENCY)]
    errors: list[BaseException] = []
    serve_config = ServeConfig(max_batch_size=CONCURRENCY, max_wait_ms=2.0, beam_width=2)
    with OptimizerService(model, db.name, serve_config) as service:
        def client(slot):
            rng = random.Random(slot)
            try:
                for _ in range(requests_per_client):
                    index = rng.randrange(len(pool))
                    answers[slot].append((index, service.optimize(pool[index])))
            except BaseException as error:
                errors.append(error)

        threads = [threading.Thread(target=client, args=(slot,)) for slot in range(CONCURRENCY)]
        for thread in threads:
            thread.start()
        service.swap_model(path)  # rolling update, traffic still flowing
        for thread in threads:
            thread.join()
        post = [service.optimize(item) for item in pool]
        report = service.report()

    assert not errors, errors
    received = sum(len(slot_answers) for slot_answers in answers)
    assert received == CONCURRENCY * requests_per_client, "lost/duplicated responses"
    for slot_answers in answers:
        for index, order in slot_answers:
            assert order in (direct_old[index], direct_new[index]), "cross-model garbage"
    assert post == direct_new, "post-swap traffic not served by the new model"
    assert report.swaps == 1 and report.failed == 0
    print(f"hot swap under {CONCURRENCY} clients: {received} responses, none lost; "
          f"post-swap parity {len(pool)}/{len(pool)}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI scale (fewer queries/epochs)")
    args = parser.parse_args(argv)
    num_queries = 12 if args.smoke else 24
    train_epochs = 1 if args.smoke else 3
    requests_per_client = 6 if args.smoke else 20

    db, config, featurizer, pool, model, trainer = build(num_queries, train_epochs)
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        check_round_trip(db, pool, model, trainer, checkpoint_dir)
        check_hot_swap(db, config, featurizer, pool, model, checkpoint_dir, requests_per_client)
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
