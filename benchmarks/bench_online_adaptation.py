"""Benchmark: adapt-while-serving vs a frozen model under workload drift.

The closed loop (``repro.serve.feedback`` + ``repro.serve.adaptation``,
DESIGN.md "Online adaptation") is driven end to end:

1. a model is trained on a **pre-drift** workload (2-3 table queries);
2. 16 concurrent clients serve traffic that **drifts mid-run** — the
   workload generator's templates shift to 4-6 table, LIKE-heavy
   queries over a foreign-key-skewed database;
3. the adaptive service executes served orders into experience, a
   background ``AdaptationWorker`` warm-starts from the latest
   checkpoint, fine-tunes, passes the join-order-regret regression
   gate, and hot-swaps the serving model — all while traffic flows;
4. a **frozen control** serves the bit-identical request stream on the
   same starting weights with no feedback path.

Scored by total *simulated* execution latency (the Table 2 metric) of
every response in the drifted phase: the adaptive service must end
strictly below the frozen control.

A final adversarial phase poisons the experience buffer (worst sampled
legal orders as labels) against a well-trained model and asserts the
regression gate blocks the swap: ``swaps_rejected >= 1`` with the live
model — and every served order — unchanged.

Run:
    PYTHONPATH=src python benchmarks/bench_online_adaptation.py           # full
    PYTHONPATH=src python benchmarks/bench_online_adaptation.py --smoke   # CI

Both modes assert the drift win and the poison block; ``--smoke``
shortens the streams.  This file is a standalone script (not collected
by the tier-1 pytest run) so the CI online-adaptation job can run it
directly.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import tempfile
import threading
import time

from repro.core import DatabaseFeaturizer, JointTrainer, ModelConfig, MTMLFQO
from repro.core.checkpoint import load_checkpoint
from repro.core.serializer import query_signature
from repro.datagen import generate_database
from repro.eval import format_serving_report, join_order_execution_time, worst_legal_order
from repro.serve import (
    AdaptationConfig,
    AdaptationWorker,
    ExperienceBuffer,
    FeedbackCollector,
    FeedbackConfig,
    OptimizerService,
    ServeConfig,
)
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator, traffic_stream

CONCURRENCY = 16
MODEL = ModelConfig(d_model=32, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1)


def build_fixture():
    """Database, featurizer, pre-drift and post-drift labeled pools."""
    db = generate_database(
        seed=9, num_tables=6, row_range=(150, 600), attr_range=(2, 3),
        fk_skew=1.3, fk_correlation=0.8,
    )
    featurizer = DatabaseFeaturizer(db, MODEL)
    featurizer.train_encoders(queries_per_table=4, epochs=2)
    labeler = QueryLabeler(db, max_intermediate_rows=2_000_000)
    pre_gen = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=3, seed=7))
    post_gen = WorkloadGenerator(
        db,
        WorkloadConfig(min_tables=4, max_tables=6, seed=21,
                       like_probability=0.6, filter_probability=0.8),
    )
    pre_pool = [i for i in labeler.label_many(pre_gen.generate(24), with_optimal_order=True)
                if i.optimal_order is not None][:10]
    post_pool = [i for i in labeler.label_many(post_gen.generate(30), with_optimal_order=True)
                 if i.optimal_order is not None][:16]
    assert len(pre_pool) >= 8 and len(post_pool) >= 12
    return db, featurizer, pre_pool, post_pool


def train_initial(db, featurizer, pre_pool, checkpoint_path):
    """Train the pre-drift model once; both services load it bit-exactly."""
    model = MTMLFQO(MODEL)
    model.attach_featurizer(db.name, featurizer)
    JointTrainer(model).train([(db.name, item) for item in pre_pool], epochs=4, batch_size=8)
    from repro.core import save_checkpoint

    return save_checkpoint(model, checkpoint_path)


def drive(service, stream):
    """Serve ``stream`` (list of (index, item)) from CONCURRENCY clients."""
    work = list(enumerate(stream))
    responses: dict[int, tuple[int, list[str]]] = {}
    errors: list[BaseException] = []
    lock = threading.Lock()

    def client():
        while True:
            with lock:
                if not work:
                    return
                slot, (index, item) = work.pop()
            try:
                order = service.optimize(item)
            except BaseException as error:  # surfaced to the caller
                errors.append(error)
                return
            with lock:
                responses[slot] = (index, order)

    threads = [threading.Thread(target=client) for _ in range(CONCURRENCY)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return [responses[slot] for slot in sorted(responses)]


class LatencyLedger:
    """Total simulated latency of responses; memoized per (query, order)."""

    def __init__(self, db, pool):
        self.db = db
        self.pool = pool
        self._memo: dict[tuple, float] = {}
        self.total_ms = 0.0
        self.responses = 0

    def record(self, index, order):
        key = (index, tuple(order))
        if key not in self._memo:
            self._memo[key] = join_order_execution_time(self.db, self.pool[index], order)
        self.total_ms += self._memo[key]
        self.responses += 1


def run_drift(db, featurizer, checkpoint, pre_pool, post_pool, adaptive, occurrences):
    """One serving run over the drifting stream; returns the ledger + report."""
    model = load_checkpoint(checkpoint, databases={db.name: db})
    service = OptimizerService(model, db.name, ServeConfig(max_batch_size=CONCURRENCY, max_wait_ms=2.0))
    pre_ledger = LatencyLedger(db, pre_pool)
    post_ledger = LatencyLedger(db, post_pool)
    collector = worker = None
    swap_wait_s = 0.0
    with service:
        if adaptive:
            # The buffer is a *rolling window* sized to the drifted pool:
            # once the workload shifts, pre-drift experience ages out and
            # the retrain sees only the regime it must adapt to.  The
            # trigger threshold equals total distinct traffic, so exactly
            # one deterministic cycle fires — after every query has been
            # executed into experience.
            collector = FeedbackCollector(
                db,
                FeedbackConfig(buffer_capacity=len(post_pool), max_intermediate_rows=2_000_000),
            ).start()
            service.attach_feedback(collector)
            worker = AdaptationWorker(
                service, db, collector.buffer,
                AdaptationConfig(min_new_experience=len(pre_pool) + len(post_pool),
                                 fine_tune_epochs=16, batch_size=8, poll_interval_s=0.05),
            ).start()
        # Phase 1: pre-drift traffic (both services are identical here).
        for index, order in drive(service, traffic_stream(pre_pool, occurrences, seed=3)):
            pre_ledger.record(index, order)
        # Phase 2a: the workload drifts; the feedback path sees it.
        for index, order in drive(service, traffic_stream(post_pool, occurrences, seed=4)):
            post_ledger.record(index, order)
        if adaptive:
            # Let the loop finish one full collect -> retrain -> swap
            # cycle (it runs concurrently with the traffic above).
            collector.drain(timeout=120)
            started = time.perf_counter()
            while worker.counters()["swaps_accepted"] < 1:
                if time.perf_counter() - started > 180:
                    break
                threading.Event().wait(0.05)
            swap_wait_s = time.perf_counter() - started
        # Phase 2b: drifted traffic continues (adapted weights serve it).
        for index, order in drive(service, traffic_stream(post_pool, 2 * occurrences, seed=5)):
            post_ledger.record(index, order)
        report = service.report()
        if adaptive:
            worker.stop()
            collector.stop()
    return pre_ledger, post_ledger, report, swap_wait_s


def run_poison(db, featurizer, post_pool, seed=0):
    """Adversarial phase: poisoned experience must not reach production."""
    model = MTMLFQO(MODEL)
    model.attach_featurizer(db.name, featurizer)
    JointTrainer(model).train([(db.name, item) for item in post_pool], epochs=8, batch_size=8)

    with OptimizerService(model, db.name) as service:
        live_model = service.session.model
        before = [service.optimize(item) for item in post_pool]
        buffer = ExperienceBuffer(64)
        for item in post_pool:
            poisoned = dataclasses.replace(
                item, optimal_order=worst_legal_order(db, item, seed=seed)
            )
            buffer.add(query_signature(item.query), poisoned)
        worker = AdaptationWorker(
            service, db, buffer,
            AdaptationConfig(min_new_experience=8, fine_tune_epochs=16, batch_size=8),
        )
        swapped = worker.run_once()
        unchanged = service.session.model is live_model
        after = [service.optimize(item) for item in post_pool]
        counters = worker.counters()
        worker.stop()
    return {
        "swapped": swapped,
        "model_unchanged": unchanged,
        "orders_unchanged": after == before,
        "swaps_rejected": counters["swaps_rejected"],
        "gate": worker.last_gate,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI mode: shorter streams, same assertions (the scored "
        "quantity is deterministic simulated latency, so the thresholds "
        "do not flake on noisy shared runners)",
    )
    args = parser.parse_args(argv)
    occurrences = 2 if args.smoke else 4

    print(f"Online adaptation under workload drift ({CONCURRENCY} clients)")
    print("-" * 64)
    started = time.perf_counter()
    db, featurizer, pre_pool, post_pool = build_fixture()
    with tempfile.TemporaryDirectory(prefix="repro-bench-adapt-") as tmp:
        checkpoint = train_initial(db, featurizer, pre_pool, f"{tmp}/initial")
        print(f"fixture: db {db.name!r}, {len(pre_pool)} pre-drift / "
              f"{len(post_pool)} drifted queries  ({time.perf_counter() - started:.1f}s)")

        frozen = run_drift(db, featurizer, checkpoint, pre_pool, post_pool,
                           adaptive=False, occurrences=occurrences)
        adaptive = run_drift(db, featurizer, checkpoint, pre_pool, post_pool,
                             adaptive=True, occurrences=occurrences)

    failed = False
    rows = []
    for name, (pre_ledger, post_ledger, report, swap_wait) in (
        ("frozen", frozen), ("adaptive", adaptive),
    ):
        rows.append((name, pre_ledger, post_ledger, report, swap_wait))
    print(f"\n[drift phase]  total simulated latency of served orders")
    for name, pre_ledger, post_ledger, report, swap_wait in rows:
        print(f"  {name:<10}{'pre-drift':<12}{pre_ledger.total_ms:>10.1f} ms"
              f"   ({pre_ledger.responses} responses)")
        print(f"  {'':<10}{'drifted':<12}{post_ledger.total_ms:>10.1f} ms"
              f"   ({post_ledger.responses} responses)")
    frozen_ms = frozen[1].total_ms
    adaptive_ms = adaptive[1].total_ms
    improvement = (frozen_ms - adaptive_ms) / frozen_ms if frozen_ms else 0.0
    print(f"  {'win':<10}{'drifted':<12}{100 * improvement:>9.1f} %   (must be > 0)")
    report = adaptive[2]
    print()
    print(format_serving_report(report, title="Adaptive service report"))

    if frozen[0].total_ms != adaptive[0].total_ms:
        print("FAIL: pre-drift phases diverge (identical weights must serve "
              "identical orders)", file=sys.stderr)
        failed = True
    if report.swaps_accepted < 1:
        print("FAIL: no adaptation cycle completed (no accepted swap)", file=sys.stderr)
        failed = True
    if adaptive_ms >= frozen_ms:
        print(f"FAIL: adaptive {adaptive_ms:.1f} ms not strictly below "
              f"frozen {frozen_ms:.1f} ms", file=sys.stderr)
        failed = True

    print("\n[poison phase]  deliberately-poisoned retrain vs the gate")
    poison = run_poison(db, featurizer, post_pool)
    gate = poison["gate"]
    print(f"  swaps_rejected {poison['swaps_rejected']}   live model unchanged "
          f"{poison['model_unchanged']}   orders unchanged {poison['orders_unchanged']}")
    print(f"  gate: candidate {gate.candidate_ms:.2f} ms vs live {gate.live_ms:.2f} ms "
          f"on {gate.validation_count} held-out queries")
    if poison["swapped"] or poison["swaps_rejected"] < 1:
        print("FAIL: the gate accepted a poisoned retrain", file=sys.stderr)
        failed = True
    if not (poison["model_unchanged"] and poison["orders_unchanged"]):
        print("FAIL: poisoned retrain disturbed the live model", file=sys.stderr)
        failed = True

    print(f"\ntotal wall clock {time.perf_counter() - started:.1f}s")
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
