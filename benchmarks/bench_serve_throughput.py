"""Benchmark: micro-batched serving vs sequential single-query calls.

The serving layer (``repro.serve``, DESIGN.md "Serving architecture")
coalesces concurrent ``optimize`` requests into batched
``predict_join_orders`` calls and answers repeated queries from a
bounded LRU plan cache.  This load generator drives the same request
stream two ways:

1. **sequential** — one ``predict_join_orders(db, [item])`` call at a
   time, the only option a caller had before the service existed;
2. **served** — 16 client threads each submitting single queries to an
   :class:`OptimizerService`.

Three phases are measured:

- **coalescing only** — every request distinct, plan cache *disabled*:
  isolates the batching win (the batched decode path's speedup at
  batch size 16).  Full run asserts >= 1.5x.
- **serving stack** — a production-shaped stream where queries repeat
  (each distinct query appears twice, shuffled), plan cache enabled:
  measures the service as deployed.  Full run asserts >= 2x.
- **replica scaling** — 64 client threads, distinct queries, plan cache
  off, served by ``num_replicas=1`` vs ``num_replicas=4``: measures how
  the replica pool breaks the single inference lock.  The pool's
  parallelism is real threads decoding on independent models, so the
  speedup is bounded by the machine — the >= 2x assertion is enforced
  only when the host has at least 4 usable cores (on fewer cores the
  phase still runs, checks parity, asserts no regression, and reports
  the scaling as informational).

Parity is checked before any timing is trusted: every served order must
be identical to the direct call's.

Every run (including ``--smoke``) writes a ``BENCH_serve_throughput.json``
snapshot — qps, p50/p95 latency, replica count, mean batch size per
phase — the start of the serving-perf trajectory; CI uploads it as an
artifact.

Run:
    PYTHONPATH=src python benchmarks/bench_serve_throughput.py           # full: asserts 1.5x / 2x
    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --smoke   # CI: parity + report

This file is a standalone script (not collected by the tier-1 pytest
run) so the CI serve-throughput job can run it directly.
"""

from __future__ import annotations

import os

# Pin BLAS to one thread per op *before* numpy loads: replica scaling
# must measure pool parallelism, not BLAS-internal threading (which
# would oversubscribe cores and add run-to-run noise to every phase).
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")

import argparse
import json
import random
import sys
import threading
import time

from repro.core import DatabaseFeaturizer, ModelConfig, MTMLFQO
from repro.datagen import generate_database
from repro.eval import format_serving_report
from repro.serve import OptimizerService, ServeConfig
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator

CONCURRENCY = 16
SCALING_CONCURRENCY = 64
SCALING_REPLICAS = 4
SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_serve_throughput.json")


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_fixture(num_queries: int, seed: int = 5):
    config = ModelConfig(d_model=48, num_heads=4, encoder_layers=1, shared_layers=2, decoder_layers=2)
    db = generate_database(seed=seed, num_tables=8, row_range=(80, 300), attr_range=(2, 3))
    featurizer = DatabaseFeaturizer(db, config)
    featurizer.train_encoders(queries_per_table=3, epochs=1)
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=3, max_tables=5, seed=3))
    items = QueryLabeler(db).label_many(generator.generate(num_queries), with_optimal_order=False)
    model = MTMLFQO(config)
    model.attach_featurizer(db.name, featurizer)
    return model, db, items


def repeated_stream(items, occurrences: int = 2, seed: int = 11):
    """A production-shaped request stream: each query seen ``occurrences`` times."""
    stream = [item for item in items for _ in range(occurrences)]
    random.Random(seed).shuffle(stream)
    return stream


def run_sequential(model, db, requests) -> tuple[list[list[str]], float]:
    model.clear_cache()
    start = time.perf_counter()
    orders = [model.predict_join_orders(db.name, [item])[0] for item in requests]
    return orders, time.perf_counter() - start


def run_served(model, db, requests, plan_cache_size: int, concurrency: int = CONCURRENCY,
               num_replicas: int = 1):
    """Drive ``requests`` through the service from ``concurrency`` client threads."""
    model.clear_cache()
    service = OptimizerService(
        model,
        db.name,
        ServeConfig(
            num_replicas=num_replicas,
            max_batch_size=CONCURRENCY,
            max_wait_ms=4.0,
            plan_cache_size=plan_cache_size,
        ),
    )
    work = list(enumerate(requests))
    results: dict[int, list[str]] = {}
    lock = threading.Lock()

    def client():
        while True:
            with lock:
                if not work:
                    return
                index, item = work.pop()
            order = service.optimize(item)
            with lock:
                results[index] = order

    with service:
        start = time.perf_counter()
        threads = [threading.Thread(target=client) for _ in range(concurrency)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        report = service.report()
    orders = [results[index] for index in range(len(requests))]
    return orders, elapsed, report


def measure_phase(model, db, requests, plan_cache_size: int, repeats: int) -> dict:
    """min-of-``repeats`` wall clock for both paths, with parity checking."""
    sequential_s = float("inf")
    served_s = float("inf")
    mismatches = 0
    report = None
    for _ in range(repeats):
        sequential_orders, elapsed = run_sequential(model, db, requests)
        sequential_s = min(sequential_s, elapsed)
        served_orders, elapsed, run_report = run_served(model, db, requests, plan_cache_size)
        if elapsed < served_s:
            served_s, report = elapsed, run_report
        mismatches += sum(a != b for a, b in zip(sequential_orders, served_orders))
    return {
        "requests": len(requests),
        "mismatches": mismatches,
        "sequential_s": sequential_s,
        "served_s": served_s,
        "speedup": sequential_s / served_s if served_s > 0 else float("inf"),
        "report": report,
    }


def measure_scaling(model, db, requests, repeats: int) -> dict:
    """64-client served throughput at 1 vs ``SCALING_REPLICAS`` replicas.

    Distinct queries, plan cache off — every request exercises a model
    decode, so the phase isolates what the pool is for: concurrent
    batched forwards on independent replicas instead of convoying on
    one model's inference lock.
    """
    sequential_orders, _ = run_sequential(model, db, requests)
    mismatches = 0
    best: dict[int, dict] = {}
    for replicas in (1, SCALING_REPLICAS):
        best_s, report = float("inf"), None
        for _ in range(repeats):
            orders, elapsed, run_report = run_served(
                model,
                db,
                requests,
                plan_cache_size=0,
                concurrency=SCALING_CONCURRENCY,
                num_replicas=replicas,
            )
            mismatches += sum(a != b for a, b in zip(sequential_orders, orders))
            if elapsed < best_s:
                best_s, report = elapsed, run_report
        best[replicas] = {"served_s": best_s, "report": report}
    return {
        "requests": len(requests),
        "mismatches": mismatches,
        "single_s": best[1]["served_s"],
        "pooled_s": best[SCALING_REPLICAS]["served_s"],
        "scaling": best[1]["served_s"] / best[SCALING_REPLICAS]["served_s"],
        "single_report": best[1]["report"],
        "pooled_report": best[SCALING_REPLICAS]["report"],
    }


def report_snapshot(report) -> dict:
    """The JSON view of one phase's ServingReport (perf-trajectory row)."""
    latency = report.latency
    return {
        "qps": round(report.throughput_qps, 2),
        "p50_latency_ms": round(1000 * latency.p50, 3) if latency else None,
        "p95_latency_ms": round(1000 * latency.p95, 3) if latency else None,
        "num_replicas": report.num_replicas,
        "mean_batch_size": round(report.mean_batch_size, 3),
        "completed": report.completed,
        "replica_utilization": [round(u, 4) for u in report.replica_utilization],
    }


def write_snapshot(path: str, payload: dict) -> str:
    path = os.path.abspath(path)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def print_phase(name: str, phase: dict, required: "float | None") -> None:
    qps_seq = phase["requests"] / phase["sequential_s"]
    qps_srv = phase["requests"] / phase["served_s"]
    threshold = f"(required >= {required:.1f}x)" if required else "(informational)"
    print(f"[{name}]  {phase['requests']} requests, concurrency {CONCURRENCY}")
    print(f"  {'sequential':<12}{1000 * phase['sequential_s']:>10.1f} ms   {qps_seq:>8.1f} q/s")
    print(f"  {'served':<12}{1000 * phase['served_s']:>10.1f} ms   {qps_srv:>8.1f} q/s")
    print(f"  {'speedup':<12}{phase['speedup']:>10.2f} x   {threshold}")
    print(f"  {'parity':<12}{'identical' if phase['mismatches'] == 0 else 'MISMATCH':>10}")


def print_scaling(phase: dict, required: "float | None") -> None:
    qps_single = phase["requests"] / phase["single_s"]
    qps_pooled = phase["requests"] / phase["pooled_s"]
    threshold = (
        f"(required >= {required:.1f}x)"
        if required
        else f"(informational: {usable_cores()} usable core(s))"
    )
    print(
        f"[replica scaling — {SCALING_CONCURRENCY} clients, distinct queries, cache off]  "
        f"{phase['requests']} requests"
    )
    print(f"  {'1 replica':<12}{1000 * phase['single_s']:>10.1f} ms   {qps_single:>8.1f} q/s")
    print(
        f"  {f'{SCALING_REPLICAS} replicas':<12}{1000 * phase['pooled_s']:>10.1f} ms   "
        f"{qps_pooled:>8.1f} q/s"
    )
    print(f"  {'scaling':<12}{phase['scaling']:>10.2f} x   {threshold}")
    print(f"  {'parity':<12}{'identical' if phase['mismatches'] == 0 else 'MISMATCH':>10}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: asserts serve-vs-direct parity only and reports "
        "the speedups (timing thresholds are left to the full run to avoid "
        "flaking on noisy shared runners)",
    )
    parser.add_argument(
        "--output",
        default=SNAPSHOT_PATH,
        help="where to write the BENCH_serve_throughput.json snapshot",
    )
    args = parser.parse_args(argv)

    cores = usable_cores()
    if args.smoke:
        num_queries, repeats = 16, 1
        coalesce_floor = stack_floor = scaling_floor = None
    else:
        num_queries, repeats = 48, 3
        coalesce_floor, stack_floor = 1.5, 2.0
        # The pool's speedup is thread parallelism across independent
        # replicas: it physically cannot exceed the host's core budget.
        # Enforce the 2x bar only where the hardware can host it; on
        # smaller machines the phase still runs, checks parity, and
        # reports the scaling as informational.
        scaling_floor = 2.0 if cores >= SCALING_REPLICAS else None

    model, db, items = build_fixture(num_queries)
    model.predict_join_orders(db.name, items[:4])  # warm BLAS + code paths

    print(f"Micro-batched serving vs sequential calls ({CONCURRENCY} clients)")
    print("-" * 64)
    coalesce = measure_phase(model, db, items, plan_cache_size=0, repeats=repeats)
    print_phase("coalescing only — distinct queries, plan cache off", coalesce, coalesce_floor)
    stream = repeated_stream(items, occurrences=2)
    stack = measure_phase(model, db, stream, plan_cache_size=1024, repeats=repeats)
    print_phase("serving stack — repeated queries, plan cache on", stack, stack_floor)
    scaling = measure_scaling(model, db, items, repeats=repeats)
    print_scaling(scaling, scaling_floor)
    print()
    print(format_serving_report(stack["report"]))

    snapshot_file = write_snapshot(
        args.output,
        {
            "benchmark": "serve_throughput",
            "smoke": args.smoke,
            "usable_cores": cores,
            "client_concurrency": CONCURRENCY,
            "scaling_concurrency": SCALING_CONCURRENCY,
            "phases": {
                "coalescing": report_snapshot(coalesce["report"]),
                "serving_stack": report_snapshot(stack["report"]),
                "scaling_1_replica": report_snapshot(scaling["single_report"]),
                f"scaling_{SCALING_REPLICAS}_replicas": report_snapshot(
                    scaling["pooled_report"]
                ),
            },
            "speedups": {
                "coalescing_vs_sequential": round(coalesce["speedup"], 3),
                "serving_stack_vs_sequential": round(stack["speedup"], 3),
                "replica_pool_vs_single": round(scaling["scaling"], 3),
            },
        },
    )
    print(f"snapshot: {snapshot_file}")

    failed = False
    for name, phase, floor in (
        ("coalescing", coalesce, coalesce_floor),
        ("serving stack", stack, stack_floor),
        ("replica scaling", scaling, scaling_floor),
    ):
        if phase["mismatches"]:
            print(f"FAIL: {phase['mismatches']} order mismatches in {name} phase", file=sys.stderr)
            failed = True
        ratio = phase.get("speedup", phase.get("scaling"))
        if floor is not None and ratio < floor:
            print(
                f"FAIL: {name} speedup {ratio:.2f}x below required {floor:.1f}x",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
