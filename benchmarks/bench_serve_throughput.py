"""Benchmark: micro-batched serving vs sequential single-query calls.

The serving layer (``repro.serve``, DESIGN.md "Serving architecture")
coalesces concurrent ``optimize`` requests into batched
``predict_join_orders`` calls and answers repeated queries from a
bounded LRU plan cache.  This load generator drives the same request
stream two ways:

1. **sequential** — one ``predict_join_orders(db, [item])`` call at a
   time, the only option a caller had before the service existed;
2. **served** — 16 client threads each submitting single queries to an
   :class:`OptimizerService`.

Two phases are measured:

- **coalescing only** — every request distinct, plan cache *disabled*:
  isolates the batching win (the batched decode path's speedup at
  batch size 16).  Full run asserts >= 1.5x.
- **serving stack** — a production-shaped stream where queries repeat
  (each distinct query appears twice, shuffled), plan cache enabled:
  measures the service as deployed.  Full run asserts >= 2x.

Parity is checked before any timing is trusted: every served order must
be identical to the direct call's.

Run:
    PYTHONPATH=src python benchmarks/bench_serve_throughput.py           # full: asserts 1.5x / 2x
    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --smoke   # CI: parity + report

This file is a standalone script (not collected by the tier-1 pytest
run) so the CI serve-throughput job can run it directly.
"""

from __future__ import annotations

import argparse
import random
import sys
import threading
import time

from repro.core import DatabaseFeaturizer, ModelConfig, MTMLFQO
from repro.datagen import generate_database
from repro.eval import format_serving_report
from repro.serve import OptimizerService, ServeConfig
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator

CONCURRENCY = 16


def build_fixture(num_queries: int, seed: int = 5):
    config = ModelConfig(d_model=48, num_heads=4, encoder_layers=1, shared_layers=2, decoder_layers=2)
    db = generate_database(seed=seed, num_tables=8, row_range=(80, 300), attr_range=(2, 3))
    featurizer = DatabaseFeaturizer(db, config)
    featurizer.train_encoders(queries_per_table=3, epochs=1)
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=3, max_tables=5, seed=3))
    items = QueryLabeler(db).label_many(generator.generate(num_queries), with_optimal_order=False)
    model = MTMLFQO(config)
    model.attach_featurizer(db.name, featurizer)
    return model, db, items


def repeated_stream(items, occurrences: int = 2, seed: int = 11):
    """A production-shaped request stream: each query seen ``occurrences`` times."""
    stream = [item for item in items for _ in range(occurrences)]
    random.Random(seed).shuffle(stream)
    return stream


def run_sequential(model, db, requests) -> tuple[list[list[str]], float]:
    model.clear_cache()
    start = time.perf_counter()
    orders = [model.predict_join_orders(db.name, [item])[0] for item in requests]
    return orders, time.perf_counter() - start


def run_served(model, db, requests, plan_cache_size: int):
    """Drive ``requests`` through the service from CONCURRENCY client threads."""
    model.clear_cache()
    service = OptimizerService(
        model,
        db.name,
        ServeConfig(max_batch_size=CONCURRENCY, max_wait_ms=4.0, plan_cache_size=plan_cache_size),
    )
    work = list(enumerate(requests))
    results: dict[int, list[str]] = {}
    lock = threading.Lock()

    def client():
        while True:
            with lock:
                if not work:
                    return
                index, item = work.pop()
            order = service.optimize(item)
            with lock:
                results[index] = order

    with service:
        start = time.perf_counter()
        threads = [threading.Thread(target=client) for _ in range(CONCURRENCY)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        report = service.report()
    orders = [results[index] for index in range(len(requests))]
    return orders, elapsed, report


def measure_phase(model, db, requests, plan_cache_size: int, repeats: int) -> dict:
    """min-of-``repeats`` wall clock for both paths, with parity checking."""
    sequential_s = float("inf")
    served_s = float("inf")
    mismatches = 0
    report = None
    for _ in range(repeats):
        sequential_orders, elapsed = run_sequential(model, db, requests)
        sequential_s = min(sequential_s, elapsed)
        served_orders, elapsed, run_report = run_served(model, db, requests, plan_cache_size)
        if elapsed < served_s:
            served_s, report = elapsed, run_report
        mismatches += sum(a != b for a, b in zip(sequential_orders, served_orders))
    return {
        "requests": len(requests),
        "mismatches": mismatches,
        "sequential_s": sequential_s,
        "served_s": served_s,
        "speedup": sequential_s / served_s if served_s > 0 else float("inf"),
        "report": report,
    }


def print_phase(name: str, phase: dict, required: "float | None") -> None:
    qps_seq = phase["requests"] / phase["sequential_s"]
    qps_srv = phase["requests"] / phase["served_s"]
    threshold = f"(required >= {required:.1f}x)" if required else "(informational)"
    print(f"[{name}]  {phase['requests']} requests, concurrency {CONCURRENCY}")
    print(f"  {'sequential':<12}{1000 * phase['sequential_s']:>10.1f} ms   {qps_seq:>8.1f} q/s")
    print(f"  {'served':<12}{1000 * phase['served_s']:>10.1f} ms   {qps_srv:>8.1f} q/s")
    print(f"  {'speedup':<12}{phase['speedup']:>10.2f} x   {threshold}")
    print(f"  {'parity':<12}{'identical' if phase['mismatches'] == 0 else 'MISMATCH':>10}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: asserts serve-vs-direct parity only and reports "
        "the speedups (timing thresholds are left to the full run to avoid "
        "flaking on noisy shared runners)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        num_queries, repeats = 16, 1
        coalesce_floor = stack_floor = None
    else:
        num_queries, repeats = 48, 3
        coalesce_floor, stack_floor = 1.5, 2.0

    model, db, items = build_fixture(num_queries)
    model.predict_join_orders(db.name, items[:4])  # warm BLAS + code paths

    print(f"Micro-batched serving vs sequential calls ({CONCURRENCY} clients)")
    print("-" * 64)
    coalesce = measure_phase(model, db, items, plan_cache_size=0, repeats=repeats)
    print_phase("coalescing only — distinct queries, plan cache off", coalesce, coalesce_floor)
    stream = repeated_stream(items, occurrences=2)
    stack = measure_phase(model, db, stream, plan_cache_size=1024, repeats=repeats)
    print_phase("serving stack — repeated queries, plan cache on", stack, stack_floor)
    print()
    print(format_serving_report(stack["report"]))

    failed = False
    for name, phase, floor in (
        ("coalescing", coalesce, coalesce_floor),
        ("serving stack", stack, stack_floor),
    ):
        if phase["mismatches"]:
            print(f"FAIL: {phase['mismatches']} order mismatches in {name} phase", file=sys.stderr)
            failed = True
        if floor is not None and phase["speedup"] < floor:
            print(
                f"FAIL: {name} speedup {phase['speedup']:.2f}x below required {floor:.1f}x",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
