"""Ablation A4: left-deep vs bushy plan spaces (Figure 3 / Section 4.1).

The paper focuses on left-deep orders but its tree codec and beam
search extend to bushy plans.  This bench quantifies what the larger
plan space buys on this workload: it runs the exact DP over true
cardinalities in both spaces and reports the cost improvement bushy
plans achieve over the best left-deep plan.

Run:  pytest benchmarks/bench_ablation_bushy.py --benchmark-only -s
"""

import numpy as np

from repro.optimizer import TrueCardinalityOracle, optimal_plan


def test_left_deep_vs_bushy(benchmark, study):
    db = study.db
    items = [item for item in study.test if item.optimal_order is not None][:15]
    assert items

    def run():
        improvements = []
        for item in items:
            oracle = TrueCardinalityOracle(db, max_intermediate_rows=5_000_000)
            try:
                left_deep = optimal_plan(item.query, db, left_deep_only=True, oracle=oracle)
                bushy = optimal_plan(item.query, db, left_deep_only=False, oracle=oracle)
            except Exception:
                continue
            improvements.append(left_deep.cost / max(bushy.cost, 1e-12))
        return improvements

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ratios
    ratios = np.asarray(ratios)
    print()
    print("Ablation: optimal left-deep vs optimal bushy plan cost")
    print("-" * 58)
    print(f"queries evaluated: {len(ratios)}")
    print(f"left-deep/bushy cost ratio: median {np.median(ratios):.3f} "
          f"mean {ratios.mean():.3f} max {ratios.max():.3f}")
    better = int((ratios > 1.0 + 1e-9).sum())
    print(f"bushy strictly better on {better}/{len(ratios)} queries")

    # Bushy space contains left-deep: it can never cost more.
    assert (ratios >= 1.0 - 1e-9).all()
