"""Tests for the batched decoding subsystem and the structural feature cache.

Covers the PR's acceptance criteria: batched beam decoding is
bit-identical to the sequential reference across beam widths 1-8,
``predict_join_orders`` matches per-query ``predict_join_order``,
disconnected queries fail fast with a clear error, structurally
identical plans share one cache entry, and the cache respects its
size bound.
"""

import copy

import numpy as np
import pytest

import repro.nn as nn
from repro.core import (
    BeamSearchState,
    JointTrainer,
    ModelConfig,
    MTMLFQO,
    TransJO,
    beam_search_join_order,
    beam_search_join_order_sequential,
    connected_components,
    drive_beam_states,
    plan_signature,
)
from repro.core.encoders import DatabaseFeaturizer
from repro.datagen import generate_database
from repro.engine.plan import scan_node
from repro.sql import Query
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator
from repro.workload.labeler import LabeledQuery


SMALL = ModelConfig(d_model=32, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1)


def chain_adjacency(m: int) -> np.ndarray:
    adj = np.zeros((m, m), dtype=bool)
    for i in range(m - 1):
        adj[i, i + 1] = adj[i + 1, i] = True
    return adj


def star_adjacency(m: int) -> np.ndarray:
    adj = np.zeros((m, m), dtype=bool)
    for i in range(1, m):
        adj[0, i] = adj[i, 0] = True
    return adj


def random_connected_adjacency(m: int, rng: np.random.Generator) -> np.ndarray:
    adj = np.zeros((m, m), dtype=bool)
    order = rng.permutation(m)
    for i in range(1, m):
        a, b = order[i], order[rng.integers(0, i)]
        adj[a, b] = adj[b, a] = True
    return adj


@pytest.fixture(scope="module")
def trans_jo():
    config = ModelConfig(d_model=16, num_heads=2, decoder_layers=1)
    return TransJO(config, np.random.default_rng(0))


def random_memory(m: int, d: int = 16, seed: int = 0) -> nn.Tensor:
    return nn.Tensor(np.random.default_rng(seed).normal(size=(1, m, d)))


def assert_candidates_identical(fast, slow):
    assert len(fast) == len(slow)
    for a, b in zip(fast, slow):
        assert a.positions == b.positions
        assert a.log_prob == b.log_prob  # bit-identical, not approx
        assert a.legal == b.legal


class TestBatchedBeamParity:
    @pytest.mark.parametrize("beam_width", list(range(1, 9)))
    def test_parity_across_beam_widths(self, trans_jo, beam_width):
        for m, build in ((4, chain_adjacency), (5, star_adjacency), (8, chain_adjacency)):
            memory = random_memory(m, seed=m + beam_width)
            adjacency = build(m)
            fast = beam_search_join_order(trans_jo, memory, adjacency, beam_width=beam_width)
            slow = beam_search_join_order_sequential(
                trans_jo, memory, adjacency, beam_width=beam_width
            )
            assert_candidates_identical(fast, slow)

    @pytest.mark.parametrize("beam_width", [1, 3, 8])
    def test_parity_without_legality(self, trans_jo, beam_width):
        memory = random_memory(4, seed=17)
        adjacency = chain_adjacency(4)
        fast = beam_search_join_order(
            trans_jo, memory, adjacency, beam_width=beam_width,
            enforce_legality=False, max_candidates=32,
        )
        slow = beam_search_join_order_sequential(
            trans_jo, memory, adjacency, beam_width=beam_width,
            enforce_legality=False, max_candidates=32,
        )
        assert_candidates_identical(fast, slow)

    def test_parity_on_random_graphs(self, trans_jo):
        rng = np.random.default_rng(3)
        for m in (3, 5, 7):
            adjacency = random_connected_adjacency(m, rng)
            memory = random_memory(m, seed=40 + m)
            fast = beam_search_join_order(trans_jo, memory, adjacency, beam_width=4)
            slow = beam_search_join_order_sequential(trans_jo, memory, adjacency, beam_width=4)
            assert_candidates_identical(fast, slow)

    def test_step_logits_batch_matches_step_logits_exactly(self, trans_jo):
        """Uniform-length prefixes (the beam-search case) are bit-identical."""
        memory = random_memory(5, seed=9)
        prefixes = [[2, 1], [0, 3], [4, 2], [1, 0]]
        batch_memory = nn.Tensor(np.broadcast_to(memory.data, (len(prefixes),) + memory.shape[1:]).copy())
        with nn.no_grad():
            batched = trans_jo.step_logits_batch(batch_memory, prefixes)
            for row, prefix in enumerate(prefixes):
                single = trans_jo.step_logits(memory, prefix)
                np.testing.assert_array_equal(batched.data[row], single.data.reshape(-1))

    def test_step_logits_batch_ragged_prefixes(self, trans_jo):
        """Ragged prefixes are padded; results match to float tolerance.

        (Padding changes gemm shapes, which may pick different BLAS
        kernels — last-ulp differences are expected and acceptable here;
        the lockstep driver only ever batches uniform-length prefixes.)
        """
        memory = random_memory(5, seed=9)
        prefixes = [[], [2], [2, 1], [0, 1, 2, 3]]
        batch_memory = nn.Tensor(np.broadcast_to(memory.data, (len(prefixes),) + memory.shape[1:]).copy())
        with nn.no_grad():
            batched = trans_jo.step_logits_batch(batch_memory, prefixes)
            for row, prefix in enumerate(prefixes):
                single = trans_jo.step_logits(memory, prefix)
                np.testing.assert_allclose(
                    batched.data[row], single.data.reshape(-1), rtol=1e-12, atol=1e-12
                )

    def test_step_logits_batch_memory_padding(self, trans_jo):
        """Mixed table counts in one call: padded slots masked to -1e9,
        real slots matching an unpadded call to float tolerance."""
        small = random_memory(3, seed=21)
        large = random_memory(5, seed=22)
        m_max = 5
        batch = np.zeros((2, m_max, 16))
        batch[0, :3] = small.data[0]
        batch[1] = large.data[0]
        padding = np.zeros((2, m_max), dtype=bool)
        padding[0, 3:] = True
        prefixes = [[1], [4]]
        with nn.no_grad():
            logits = trans_jo.step_logits_batch(
                nn.Tensor(batch), prefixes, memory_padding_mask=padding
            )
            solo_small = trans_jo.step_logits(small, [1])
            solo_large = trans_jo.step_logits(large, [4])
        assert (logits.data[0, 3:] == -1e9).all()
        np.testing.assert_allclose(logits.data[0, :3], solo_small.data.reshape(-1), rtol=1e-9)
        np.testing.assert_allclose(logits.data[1], solo_large.data.reshape(-1), rtol=1e-9)

    def test_drive_beam_states_mixed_sizes(self, trans_jo):
        """Lockstep decode of queries with different table counts."""
        specs = [(3, star_adjacency), (6, chain_adjacency), (4, chain_adjacency)]
        memories = [random_memory(m, seed=60 + m) for m, _ in specs]
        states = [
            BeamSearchState(build(m), beam_width=3, enforce_legality=True)
            for m, build in specs
        ]
        drive_beam_states(trans_jo, memories, states)
        for (m, build), memory, state in zip(specs, memories, states):
            solo = beam_search_join_order_sequential(trans_jo, memory, build(m), beam_width=3)
            assert_candidates_identical(state.candidates(), solo)


class TestFastVsTapeParity:
    """The no-tape fast path must yield bit-identical decodes to the
    tape path (``nn.force_tape()`` reproduces the pre-fast-path per-op
    implementation exactly)."""

    @pytest.mark.parametrize("beam_width", list(range(1, 9)))
    def test_e2e_beam_parity_across_widths(self, trans_jo, beam_width):
        for m, build in ((4, chain_adjacency), (5, star_adjacency), (8, chain_adjacency)):
            memory = random_memory(m, seed=100 + m + beam_width)
            adjacency = build(m)
            with nn.force_tape():
                tape = beam_search_join_order(trans_jo, memory, adjacency, beam_width=beam_width)
            fast = beam_search_join_order(trans_jo, memory, adjacency, beam_width=beam_width)
            assert_candidates_identical(fast, tape)

    def test_parity_with_session_scratch_arena(self, trans_jo):
        memory = random_memory(6, seed=77)
        adjacency = chain_adjacency(6)
        with nn.force_tape():
            tape = beam_search_join_order(trans_jo, memory, adjacency, beam_width=4)
        scratch = nn.ScratchArena()
        for _ in range(3):  # reused buffers must not leak state across decodes
            fast = beam_search_join_order(
                trans_jo, memory, adjacency, beam_width=4, scratch=scratch
            )
            assert_candidates_identical(fast, tape)

    def test_sequential_parity_fast_vs_tape(self, trans_jo):
        memory = random_memory(5, seed=78)
        adjacency = star_adjacency(5)
        with nn.force_tape():
            tape = beam_search_join_order_sequential(trans_jo, memory, adjacency, beam_width=4)
        fast = beam_search_join_order_sequential(trans_jo, memory, adjacency, beam_width=4)
        assert_candidates_identical(fast, tape)


class TestKVCache:
    def test_cache_projects_once_and_reuses(self, trans_jo):
        memory = random_memory(5, seed=80)
        cache = nn.KVCache(memory)
        with nn.no_grad():
            first = trans_jo.infer_memory_kv(memory, cache)
            second = trans_jo.infer_memory_kv(memory, cache)
        assert len(cache) == 1
        assert first is second  # same projection object, not a recompute
        memory_kv, pointer_keys = first
        assert len(memory_kv) == len(trans_jo.decoder.layers)
        with nn.no_grad():
            fresh_kv, fresh_keys = trans_jo.infer_memory_kv(memory)
        np.testing.assert_array_equal(pointer_keys, fresh_keys)
        for (k, v), (fk, fv) in zip(memory_kv, fresh_kv):
            np.testing.assert_array_equal(k, fk)
            np.testing.assert_array_equal(v, fv)

    def test_cache_bound_to_other_memory_is_rejected(self, trans_jo):
        memory = random_memory(5, seed=81)
        other = random_memory(5, seed=82)
        stale = nn.KVCache(other)
        with nn.no_grad(), pytest.raises(ValueError, match="bound to a different encoder memory"):
            trans_jo.infer_memory_kv(memory, stale)

    def test_equal_values_different_object_still_rejected(self, trans_jo):
        # Binding is by object identity, not value: a hot-swapped replica
        # re-encodes and produces a new memory object, so its decode can
        # never be served projections computed under the old weights.
        memory = random_memory(5, seed=83)
        clone = nn.Tensor(memory.data.copy())
        cache = nn.KVCache(memory)
        assert cache.bound_to(memory) and not cache.bound_to(clone)
        with nn.no_grad(), pytest.raises(ValueError, match="bound to a different encoder memory"):
            trans_jo.infer_memory_kv(clone, cache)

    def test_invalidate_forces_reprojection(self, trans_jo):
        memory = random_memory(4, seed=84)
        cache = nn.KVCache(memory)
        with nn.no_grad():
            first = trans_jo.infer_memory_kv(memory, cache)
            cache.invalidate()
            assert len(cache) == 0
            second = trans_jo.infer_memory_kv(memory, cache)
        assert first is not second  # recomputed after invalidation
        np.testing.assert_array_equal(first[1], second[1])


class TestDisconnectedDetection:
    def test_beam_search_raises_with_components(self, trans_jo):
        adjacency = np.zeros((4, 4), dtype=bool)
        adjacency[0, 1] = adjacency[1, 0] = True
        adjacency[2, 3] = adjacency[3, 2] = True
        with pytest.raises(ValueError, match="disconnected"):
            beam_search_join_order(trans_jo, random_memory(4), adjacency)
        with pytest.raises(ValueError, match="disconnected"):
            beam_search_join_order_sequential(trans_jo, random_memory(4), adjacency)

    def test_unconstrained_mode_does_not_raise(self, trans_jo):
        adjacency = np.zeros((3, 3), dtype=bool)
        adjacency[0, 1] = adjacency[1, 0] = True
        candidates = beam_search_join_order(
            trans_jo, random_memory(3, seed=2), adjacency, enforce_legality=False
        )
        assert candidates
        assert all(not c.legal for c in candidates)

    def test_connected_components(self):
        adjacency = np.zeros((5, 5), dtype=bool)
        adjacency[0, 1] = adjacency[1, 0] = True
        adjacency[3, 4] = adjacency[4, 3] = True
        assert connected_components(adjacency) == [[0, 1], [2], [3, 4]]

    def test_model_names_components(self):
        """predict_join_order on a disconnected query names the tables."""
        model = MTMLFQO(SMALL)
        query = Query(tables=["alpha", "beta"], joins=[], filters={})
        labeled = LabeledQuery(
            query=query,
            plan=scan_node("alpha"),
            node_cardinalities=[1],
            node_costs=[1.0],
            total_time_ms=0.0,
        )
        with pytest.raises(ValueError, match="alpha") as excinfo:
            model.predict_join_order("anydb", labeled)
        assert "beta" in str(excinfo.value)
        assert "disconnected" in str(excinfo.value)

    def test_beam_candidates_with_legality_raises(self):
        """Legality-enforcing candidate collection rejects disconnection too."""
        model = MTMLFQO(SMALL)
        query = Query(tables=["alpha", "beta"], joins=[], filters={})
        labeled = LabeledQuery(
            query=query,
            plan=scan_node("alpha"),
            node_cardinalities=[1],
            node_costs=[1.0],
            total_time_ms=0.0,
        )
        with pytest.raises(ValueError, match="disconnected"):
            model.beam_candidates("anydb", labeled, enforce_legality=True)


@pytest.fixture(scope="module")
def db():
    return generate_database(seed=2, num_tables=5, row_range=(60, 200), attr_range=(2, 3))


@pytest.fixture(scope="module")
def featurizer(db):
    feat = DatabaseFeaturizer(db, SMALL)
    feat.train_encoders(queries_per_table=4, epochs=2)
    return feat


@pytest.fixture(scope="module")
def labeled(db):
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=4, seed=1))
    items = QueryLabeler(db).label_many(generator.generate(24), with_optimal_order=True)
    assert len(items) >= 6
    return items


class TestPredictJoinOrdersBatch:
    def test_matches_per_query_path(self, db, labeled, featurizer):
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        items = labeled[:6]
        batched = model.predict_join_orders(db.name, items)
        single = [model.predict_join_order(db.name, item) for item in items]
        assert batched == single

    def test_chunked_encoding_matches(self, db, labeled, featurizer, monkeypatch):
        """Chunk boundaries in the batched pipeline don't change results."""
        import repro.core.model as model_module

        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        items = labeled[:5]
        whole = model.predict_join_orders(db.name, items)
        monkeypatch.setattr(model_module, "_INFERENCE_CHUNK", 2)
        chunked = model.predict_join_orders(db.name, items)
        assert chunked == whole

    def test_empty_batch(self, db, featurizer):
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        assert model.predict_join_orders(db.name, []) == []

    def test_orders_are_legal(self, db, labeled, featurizer):
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        for item, order in zip(labeled[:6], model.predict_join_orders(db.name, labeled[:6])):
            assert sorted(order) == sorted(item.query.tables)
            joined = {order[0]}
            for table in order[1:]:
                assert item.query.joins_between(joined, {table})
                joined.add(table)


class TestStructuralFeatureCache:
    def test_structurally_identical_queries_share_entry(self, db, labeled, featurizer):
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        item = labeled[0]
        twin = copy.deepcopy(item)  # distinct objects, identical structure
        assert twin is not item and twin.plan is not item.plan
        a = model.encode_query(db.name, item)
        b = model.encode_query(db.name, twin)
        assert a is b
        assert len(model._cache) == 1

    def test_signature_distinguishes_structure(self, labeled):
        signatures = {plan_signature(item.plan) for item in labeled}
        assert len(signatures) == len(labeled)

    def test_cache_respects_size_bound(self, db, labeled, featurizer):
        config = ModelConfig(**{**SMALL.__dict__, "feature_cache_size": 3})
        model = MTMLFQO(config)
        model.attach_featurizer(db.name, featurizer)
        for item in labeled[:5]:
            model.encode_query(db.name, item)
        assert len(model._cache) == 3
        # Oldest entries were evicted: re-encoding returns a new object.
        evicted = model.encode_query(db.name, labeled[0])
        again = model.encode_query(db.name, labeled[0])
        assert evicted is again  # now cached once more

    def test_rerank_probes_do_not_grow_cache_unboundedly(self, db, labeled, featurizer):
        config = ModelConfig(**{**SMALL.__dict__, "feature_cache_size": 8})
        model = MTMLFQO(config)
        model.attach_featurizer(db.name, featurizer)
        for item in labeled[:6]:
            model.predict_join_order(db.name, item)
        assert len(model._cache) <= 8

    def test_attach_featurizer_invalidates_cache(self, db, labeled, featurizer):
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        model.encode_query(db.name, labeled[0])
        assert len(model._cache) == 1
        model.attach_featurizer(db.name, featurizer)
        assert len(model._cache) == 0


class TestRerankFavouriteTracking:
    def _candidates(self, model, db, item):
        return model.beam_candidates_batch(
            db.name, [item], beam_width=4, enforce_legality=False
        )[0]

    def test_unplannable_favourite_falls_back_to_best_cost(self, db, labeled, featurizer):
        """When the beam favourite cannot plan, the margin protects nobody."""
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        item = next(i for i in labeled if i.query.num_tables >= 3)
        candidates = [c for c in self._candidates(model, db, item) if c.legal]
        assert len(candidates) >= 2
        # Make the favourite illegal (unplannable) by swapping in an
        # order that breaks connectivity if possible; otherwise fabricate
        # one from a reversed non-adjacent arrangement.
        from repro.core import BeamCandidate, is_legal_order

        adjacency = item.query.adjacency_matrix()
        m = item.query.num_tables
        bad = None
        import itertools

        for perm in itertools.permutations(range(m)):
            if not is_legal_order(list(perm), adjacency):
                bad = list(perm)
                break
        if bad is None:
            pytest.skip("query graph is complete; every order is plannable")
        rigged = [BeamCandidate(positions=bad, log_prob=0.0, legal=False)] + candidates
        result = model._rerank_by_cost(db.name, item, rigged)
        # The result must be one of the plannable candidates, specifically
        # the one the cost head scores lowest (no margin shield applies).
        orders = [c.tables(item.query.tables) for c in candidates]
        assert result in orders

    def test_plannable_favourite_keeps_margin_protection(self, db, labeled, featurizer):
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        item = next(i for i in labeled if i.query.num_tables >= 3)
        candidates = [c for c in self._candidates(model, db, item) if c.legal]
        assert candidates
        result = model._rerank_by_cost(db.name, item, candidates, margin=1e9)
        # With an enormous margin no challenger can win: favourite stays.
        assert result == candidates[0].tables(item.query.tables)


class TestWeightedEpochLoss:
    def test_epoch_loss_weighted_by_batch_size(self):
        """Ragged batches (database-boundary splits) weight by example count."""
        model = MTMLFQO(SMALL)
        trainer = JointTrainer(model)
        seen: list[tuple[str, int]] = []

        def fake_step(db_name, batch):
            seen.append((db_name, len(batch)))
            return float(len(batch))  # loss == batch size, easy to audit

        trainer._step = fake_step
        # 5 "a" + 1 "b" examples with batch_size 4 produce ragged batches.
        examples = [("a", object()) for _ in range(5)] + [("b", object())]
        result = trainer.train(examples, epochs=1, batch_size=4, seed=0)
        sizes = [size for _, size in seen]
        assert sum(sizes) == 6
        expected = sum(s * s for s in sizes) / sum(sizes)
        assert result.epoch_losses[0] == pytest.approx(expected)
        # The old equal-weight mean would differ whenever batches are ragged.
        unweighted = sum(sizes) / len(sizes)
        assert result.epoch_losses[0] != pytest.approx(unweighted)
